#include "analyzer/pca.hh"

#include <algorithm>
#include <cmath>

#include "core/logging.hh"

namespace tpupoint {

FeatureVector
PcaModel::project(const FeatureVector &point) const
{
    FeatureVector centered = point;
    for (std::size_t i = 0; i < centered.size(); ++i)
        centered[i] -= mean[i];
    FeatureVector out(components.size(), 0.0);
    for (std::size_t c = 0; c < components.size(); ++c)
        out[c] = dot(components[c], centered);
    return out;
}

std::vector<FeatureVector>
PcaModel::projectAll(const std::vector<FeatureVector> &points) const
{
    std::vector<FeatureVector> out;
    out.reserve(points.size());
    for (const auto &p : points)
        out.push_back(project(p));
    return out;
}

Matrix
PcaModel::projectAll(const Matrix &points) const
{
    Matrix out(points.rows(), components.size());
    FeatureVector centered(mean.size(), 0.0);
    for (std::size_t r = 0; r < points.rows(); ++r) {
        const double *row = points.rowPtr(r);
        for (std::size_t i = 0; i < mean.size(); ++i)
            centered[i] = row[i] - mean[i];
        double *dst = out.rowPtr(r);
        for (std::size_t c = 0; c < components.size(); ++c) {
            dst[c] = dotN(components[c].data(), centered.data(),
                          centered.size());
        }
    }
    return out;
}

PcaModel
fitPca(const Matrix &points, std::size_t num_components, Rng &rng,
       int iterations)
{
    if (points.rows() == 0)
        fatal("fitPca: empty data set");
    const std::size_t dim = points.cols();
    num_components = std::min(num_components, dim);

    PcaModel model;
    // Same accumulation order as meanVector(): row-order adds, one
    // final scale.
    model.mean.assign(dim, 0.0);
    for (std::size_t r = 0; r < points.rows(); ++r)
        addN(model.mean.data(), points.rowPtr(r), dim);
    scaleInPlace(model.mean,
                 1.0 / static_cast<double>(points.rows()));

    Matrix cov = Matrix::covariance(points);

    for (std::size_t c = 0; c < num_components; ++c) {
        // Power iteration for the current dominant eigenvector.
        FeatureVector v(dim);
        for (auto &x : v)
            x = rng.uniform(-1.0, 1.0);
        normalizeInPlace(v);

        double eigenvalue = 0.0;
        for (int it = 0; it < iterations; ++it) {
            FeatureVector next = cov.multiply(v);
            const double norm = l2Norm(next);
            if (norm < 1e-12) {
                eigenvalue = 0.0;
                break;
            }
            scaleInPlace(next, 1.0 / norm);
            eigenvalue = norm;
            v = std::move(next);
        }
        if (eigenvalue <= 1e-12)
            break; // remaining variance is numerically zero

        // Deflate: cov -= lambda * v v^T.
        for (std::size_t i = 0; i < dim; ++i) {
            for (std::size_t j = 0; j < dim; ++j) {
                cov.at(i, j) -= eigenvalue * v[i] * v[j];
            }
        }
        model.components.push_back(std::move(v));
        model.eigenvalues.push_back(eigenvalue);
    }
    return model;
}

PcaModel
fitPca(const std::vector<FeatureVector> &points,
       std::size_t num_components, Rng &rng, int iterations)
{
    if (points.empty())
        fatal("fitPca: empty data set");
    return fitPca(Matrix::fromRows(points), num_components, rng,
                  iterations);
}

} // namespace tpupoint

/**
 * @file
 * TPUPoint-Analyzer output files (Section IV-B): a JSON trace
 * compatible with Chrome's chrome://tracing viewer — showing the
 * Profile Breakdown and Phase Breakdown tracks of Figure 3 — plus a
 * CSV with the formatted description of each phase and the
 * TPU/host operations executed during training steps.
 */

#ifndef TPUPOINT_ANALYZER_VISUALIZATION_HH
#define TPUPOINT_ANALYZER_VISUALIZATION_HH

#include <ostream>
#include <vector>

#include "analyzer/analyzer.hh"

namespace tpupoint {

/**
 * The slice of a ProfileRecord the trace viewer needs. Collected
 * by streaming consumers so records themselves don't have to stay
 * resident just to draw the Profile Breakdown track.
 */
struct ProfileWindowInfo
{
    std::uint64_t sequence = 0;
    SimTime window_begin = 0;
    SimTime window_end = 0;
    bool truncated = false;

    ProfileWindowInfo() = default;

    explicit ProfileWindowInfo(const ProfileRecord &record)
        : sequence(record.sequence),
          window_begin(record.window_begin),
          window_end(record.window_end),
          truncated(record.truncated)
    {
    }

    explicit ProfileWindowInfo(const ColumnarRecord &record)
        : sequence(record.sequence),
          window_begin(record.window_begin),
          window_end(record.window_end),
          truncated(record.truncated)
    {
    }
};

/**
 * Write a chrome://tracing JSON file with one track of profile
 * windows and one track of detected phases.
 */
void writeChromeTrace(const AnalysisResult &analysis,
                      const std::vector<ProfileWindowInfo> &windows,
                      std::ostream &out);

/** Convenience overload over fully-materialized records. */
void writeChromeTrace(const AnalysisResult &analysis,
                      const std::vector<ProfileRecord> &records,
                      std::ostream &out);

/**
 * Write the companion CSV: one row per phase with timing, step
 * range and its top host/TPU operators.
 */
void writePhaseCsv(const AnalysisResult &analysis,
                   std::ostream &out);

/**
 * Write a machine-readable JSON summary of the analysis (phases,
 * coverage, per-phase top operators, checkpoint association).
 */
void writeAnalysisJson(const AnalysisResult &analysis,
                       std::ostream &out, bool pretty = true);

} // namespace tpupoint

#endif // TPUPOINT_ANALYZER_VISUALIZATION_HH

/**
 * @file
 * DBSCAN (Ester et al., 1996) as TPUPoint-Analyzer's second phase
 * detector: sweep the minimum-samples requirement from 5 to 200,
 * measure the ratio of noise (unclustered) points, and pick the
 * elbow that minimizes noise while maximizing the requirement
 * (Section IV-A).
 */

#ifndef TPUPOINT_ANALYZER_DBSCAN_HH
#define TPUPOINT_ANALYZER_DBSCAN_HH

#include <cstddef>
#include <vector>

#include "core/math.hh"

namespace tpupoint {

class ThreadPool;

/** Label assigned to noise points. */
inline constexpr int kDbscanNoise = -1;

/** One DBSCAN clustering. */
struct DbscanResult
{
    std::vector<int> labels;   ///< Cluster id or kDbscanNoise.
    int clusters = 0;          ///< Clusters formed.
    std::size_t noise_points = 0;
    double noise_ratio = 0.0;  ///< noise / total.
    double eps = 0.0;
    std::size_t min_samples = 0;
};

/**
 * Classic DBSCAN with Euclidean eps-neighbourhoods.
 */
DbscanResult dbscanCluster(const std::vector<FeatureVector> &points,
                           double eps, std::size_t min_samples);

/**
 * Row-major overload (the hot path: neighbourhood queries stride
 * contiguous rows). The vector-of-rows entry point packs its data
 * and delegates here, so both are bit-identical.
 */
DbscanResult dbscanCluster(const Matrix &points, double eps,
                           std::size_t min_samples);

/**
 * Suggest an eps from the data: 1.5x the 90th percentile of each
 * point's 24th-nearest-neighbour distance — dense step clusters
 * sit well inside it, stragglers outside.
 */
double suggestEps(const std::vector<FeatureVector> &points);

/** Row-major overload (see dbscanCluster). */
double suggestEps(const Matrix &points);

/** The min-samples sweep plus elbow choice (Figure 5). */
struct DbscanSweep
{
    std::vector<std::size_t> min_samples_values;
    std::vector<double> noise_curve;  ///< Noise ratio per setting.
    std::vector<int> cluster_counts;
    std::size_t elbow_min_samples = 0;
    DbscanResult best; ///< Clustering at the elbow.
};

/**
 * Sweep min_samples over [lo, hi] in the given stride (the paper
 * uses 5..180 step 25) at a fixed eps (0 = suggestEps()).
 *
 * eps is resolved once before the sweep and every min-samples
 * setting is clustered independently into a preassigned slot, so
 * when @p pool is given the settings fan out across its workers
 * with output bit-identical to the serial path.
 */
DbscanSweep dbscanSweep(const std::vector<FeatureVector> &points,
                        double eps = 0.0, std::size_t lo = 5,
                        std::size_t hi = 180,
                        std::size_t stride = 25,
                        ThreadPool *pool = nullptr);

/** Row-major overload of the sweep (see dbscanCluster). */
DbscanSweep dbscanSweep(const Matrix &points, double eps = 0.0,
                        std::size_t lo = 5, std::size_t hi = 180,
                        std::size_t stride = 25,
                        ThreadPool *pool = nullptr);

} // namespace tpupoint

#endif // TPUPOINT_ANALYZER_DBSCAN_HH

/**
 * @file
 * Incremental phase detection: the streaming twin of the
 * PhaseDetector registry (analyzer/detector.hh). Where a batch
 * detector sees the finished step table once, a StreamingDetector
 * consumes settled step rows as they are aggregated and can be
 * asked for a phase snapshot at any moment, at a per-step cost
 * bounded independent of trace length.
 *
 * Determinism contract: a streaming detector's snapshot must be a
 * pure function of (options, the settled row prefix it observed) —
 * never of how that prefix was chunked across observeSteps() calls
 * or of wall-clock time. Any sampling draws per-row randomness from
 * SplitMix64(seed ^ row-index) so arrival pattern cannot leak in.
 * reset() returns the detector to its freshly-constructed state;
 * AnalysisSession invokes it when the builder's touch floor shows
 * history was rewritten (out-of-order window, attempt stitch) and
 * then re-feeds from row 0.
 *
 * finalize() must agree with the batch registry: for OLS the
 * streaming scan *is* the batch scan, finished once, so spans,
 * groups and phases are bit-identical; k-means and DBSCAN finalize
 * by delegating to their batch detectors over the full table, so
 * batch-mode outputs stay byte-identical whether or not the
 * session streamed.
 */

#ifndef TPUPOINT_ANALYZER_STREAMING_HH
#define TPUPOINT_ANALYZER_STREAMING_HH

#include <functional>
#include <memory>
#include <vector>

#include "analyzer/analyzer.hh"

namespace tpupoint {

class ThreadPool;

/**
 * One settled step row, in ascending row order. The op spans
 * borrow the builder's storage and are valid only for the duration
 * of the observeSteps() call — a detector that samples rows must
 * copy the entries it keeps.
 */
struct StepDelta
{
    StepId step = 0;
    SimTime span = 0;      ///< Wall span of the step's events.
    OpStatsSpan host;      ///< Host op entries, id-sorted.
    OpStatsSpan tpu;       ///< TPU op entries, id-sorted.
};

/** One incremental phase-detection algorithm. */
class StreamingDetector
{
  public:
    virtual ~StreamingDetector() = default;

    /** The algorithm this detector implements. */
    virtual PhaseAlgorithm algorithm() const = 0;

    /** Printable name (matches phaseAlgorithmName()). */
    virtual const char *name() const = 0;

    /**
     * Consume the next batch of settled rows. Rows arrive in
     * ascending row order with no gaps or repeats between calls;
     * the batch boundary carries no meaning (see the determinism
     * contract above).
     */
    virtual void observeSteps(
        const std::vector<StepDelta> &deltas) = 0;

    /** Discard all observed state (history was rewritten). */
    virtual void reset() = 0;

    /**
     * The phases over every row observed so far. Non-destructive
     * and repeatable; cost must be bounded by detector state (OLS:
     * O(groups); sampled k-means: O(reservoir)), never by the
     * number of observed steps.
     */
    virtual StreamingSnapshot snapshot() const = 0;

    /**
     * Produce the detector's final batch-grade result. Called once
     * after every row (including the last, normally-unsettled one)
     * has been observed; @p table is the built table those rows
     * flattened into, and @p features / @p pool follow the batch
     * PhaseDetector::detect() contract (features non-null whenever
     * the batch detector for this algorithm needs them).
     */
    virtual DetectorResult finalize(const StepTable &table,
                                    const FeatureMatrix *features,
                                    const AnalyzerOptions &options,
                                    ThreadPool *pool) = 0;
};

/** Factory for a fresh streaming detector bound to @p options. */
using StreamingDetectorFactory =
    std::function<std::unique_ptr<StreamingDetector>(
        const AnalyzerOptions &)>;

/**
 * Override the streaming detector for @p algorithm (tests use this
 * to interpose instrumented detectors). A null factory removes the
 * override, restoring the builtin.
 */
void registerStreamingDetector(PhaseAlgorithm algorithm,
                               StreamingDetectorFactory factory);

/**
 * A fresh streaming detector for @p algorithm: the registered
 * override if any, else the builtin — truly-online OLS for
 * OnlineLinearScan, reservoir-sampled mini-batch k-means for
 * KMeans, and a batch-fallback adapter (empty snapshots, batch
 * finalize) for DBSCAN, whose neighbourhood queries resist
 * incrementalization.
 */
std::unique_ptr<StreamingDetector> makeStreamingDetector(
    PhaseAlgorithm algorithm, const AnalyzerOptions &options);

} // namespace tpupoint

#endif // TPUPOINT_ANALYZER_STREAMING_HH

#include "analyzer/analyzer.hh"

#include <algorithm>

#include "core/logging.hh"
#include "obs/span.hh"

namespace tpupoint {

const char *
phaseAlgorithmName(PhaseAlgorithm algorithm)
{
    switch (algorithm) {
      case PhaseAlgorithm::KMeans: return "k-means";
      case PhaseAlgorithm::Dbscan: return "DBSCAN";
      case PhaseAlgorithm::OnlineLinearScan: return "OLS";
    }
    panic("phaseAlgorithmName: unknown algorithm");
}

TpuPointAnalyzer::TpuPointAnalyzer(const AnalyzerOptions &options)
    : opts(options)
{
}

AnalysisSession::AnalysisSession(const AnalyzerOptions &options)
    : opts(options)
{
}

void
AnalysisSession::ingest(const ProfileRecord &record)
{
    if (finalized)
        panic("AnalysisSession::ingest after finalize");
    if (record.attempt + 1 > attempts_seen)
        attempts_seen = record.attempt + 1;
    dropped_events += record.events_dropped;
    if (record.attempt_boundary) {
        // Stitch: the dead attempt's windows may extend past the
        // restart point — completed steps the new attempt re-runs
        // (they come back marked replayed, counted once) and
        // prefetch activity on steps that never finished. Drop
        // them and register the replay range.
        SimTime span = 0;
        discarded_steps +=
            builder.dropAfter(record.resume_step, &span);
        discarded_time += span;
        builder.markReplayed(record.resume_step,
                             record.preempted_at_step);
        return; // boundary markers carry no step data
    }
    builder.ingest(record);
}

AnalysisResult
AnalysisSession::finalize(
    const std::vector<CheckpointInfo> &checkpoints)
{
    if (finalized)
        panic("AnalysisSession::finalize called twice");
    finalized = true;

    AnalysisResult result;
    result.algorithm = opts.algorithm;
    result.table = std::move(builder).build();
    result.attempts = attempts_seen;
    result.discarded_steps = discarded_steps;
    result.discarded_time = discarded_time;
    result.dropped_events = dropped_events;
    for (const auto &row : result.table.steps()) {
        if (row.replayed)
            ++result.replayed_steps;
    }
    if (result.table.size() == 0)
        return result;

    obs::TraceSpan detect_span(
        std::string("analyze.") +
        phaseAlgorithmName(opts.algorithm));
    detect_span.arg("steps",
                    static_cast<std::uint64_t>(
                        result.table.size()));

    switch (opts.algorithm) {
      case PhaseAlgorithm::KMeans: {
        const FeatureMatrix features =
            FeatureMatrix::build(result.table, opts.features);
        if (opts.kmeans_fixed_k > 0) {
            Rng rng(opts.seed);
            result.kmeans.best = kMeansCluster(
                features.rows(), opts.kmeans_fixed_k, rng);
            result.kmeans.elbow_k = opts.kmeans_fixed_k;
            result.kmeans.k_values = {opts.kmeans_fixed_k};
            result.kmeans.ssd_curve = {result.kmeans.best.ssd};
        } else {
            result.kmeans = kMeansSweep(
                features.rows(), opts.kmeans_k_min,
                opts.kmeans_k_max, opts.seed);
        }
        result.phases = phasesFromLabels(
            result.table, result.kmeans.best.labels);
        break;
      }
      case PhaseAlgorithm::Dbscan: {
        const FeatureMatrix features =
            FeatureMatrix::build(result.table, opts.features);
        if (opts.dbscan_fixed_min_samples > 0) {
            const double eps = opts.dbscan_eps > 0
                ? opts.dbscan_eps
                : suggestEps(features.rows());
            result.dbscan.best = dbscanCluster(
                features.rows(), eps,
                opts.dbscan_fixed_min_samples);
            result.dbscan.elbow_min_samples =
                opts.dbscan_fixed_min_samples;
            result.dbscan.min_samples_values = {
                opts.dbscan_fixed_min_samples};
            result.dbscan.noise_curve = {
                result.dbscan.best.noise_ratio};
            result.dbscan.cluster_counts = {
                result.dbscan.best.clusters};
        } else {
            result.dbscan =
                dbscanSweep(features.rows(), opts.dbscan_eps);
        }
        result.phases = phasesFromLabels(
            result.table, result.dbscan.best.labels);
        break;
      }
      case PhaseAlgorithm::OnlineLinearScan: {
        OnlineLinearScan ols(OlsOptions{opts.ols_threshold});
        for (const auto &step : result.table.steps())
            ols.addStep(step);
        ols.finish();
        result.ols_spans = ols.spans();
        result.ols_groups = ols.phases();
        result.phases =
            phasesFromGroups(result.table, result.ols_groups);
        break;
      }
    }
    detect_span.arg("phases",
                    static_cast<std::uint64_t>(
                        result.phases.size()));
    detect_span.finish();

    result.top3_coverage = topPhaseCoverage(result.phases, 3);

    // Section IV-C: find the checkpoint with the smallest distance
    // to each phase's steps.
    if (!checkpoints.empty()) {
        for (const auto &phase : result.phases) {
            PhaseCheckpoint assoc;
            assoc.phase_id = phase.id;
            StepId best_distance = kNoStep;
            for (const auto &info : checkpoints) {
                // Distance from the checkpoint to the phase's step
                // interval.
                StepId distance = 0;
                if (info.step < phase.first_step)
                    distance = phase.first_step - info.step;
                else if (info.step > phase.last_step)
                    distance = info.step - phase.last_step;
                if (distance < best_distance) {
                    best_distance = distance;
                    assoc.checkpoint_step = info.step;
                    assoc.saved_at = info.saved_at;
                    assoc.distance = distance;
                }
            }
            result.checkpoints.push_back(assoc);
        }
    }
    return result;
}

AnalysisResult
TpuPointAnalyzer::analyze(
    const std::vector<ProfileRecord> &records,
    const std::vector<CheckpointInfo> &checkpoints) const
{
    AnalysisSession session(opts);
    {
        obs::TraceSpan ingest_span("analyze.ingest");
        ingest_span.arg("records",
                        static_cast<std::uint64_t>(
                            records.size()));
        for (const auto &record : records)
            session.ingest(record);
    }
    return session.finalize(checkpoints);
}

} // namespace tpupoint

#include "analyzer/analyzer.hh"

#include <algorithm>
#include <chrono>
#include <memory>

#include "analyzer/detector.hh"
#include "analyzer/streaming.hh"
#include "core/logging.hh"
#include "core/thread_pool.hh"
#include "obs/metrics.hh"
#include "obs/pool_metrics.hh"
#include "obs/span.hh"

namespace tpupoint {

namespace {

/** Primary algorithm first, then deduplicated extras in order. */
std::vector<PhaseAlgorithm>
requestedAlgorithms(const AnalyzerOptions &opts)
{
    std::vector<PhaseAlgorithm> algorithms{opts.algorithm};
    for (const PhaseAlgorithm extra : opts.extra_algorithms) {
        if (std::find(algorithms.begin(), algorithms.end(),
                      extra) == algorithms.end())
            algorithms.push_back(extra);
    }
    return algorithms;
}

} // namespace

const char *
phaseAlgorithmName(PhaseAlgorithm algorithm)
{
    switch (algorithm) {
      case PhaseAlgorithm::KMeans: return "k-means";
      case PhaseAlgorithm::Dbscan: return "DBSCAN";
      case PhaseAlgorithm::OnlineLinearScan: return "OLS";
    }
    panic("phaseAlgorithmName: unknown algorithm");
}

TpuPointAnalyzer::TpuPointAnalyzer(const AnalyzerOptions &options)
    : opts(options)
{
}

AnalysisSession::AnalysisSession(const AnalyzerOptions &options)
    : opts(options)
{
}

// Out of line: Stream holds a unique_ptr to the incomplete
// StreamingDetector at the point of declaration.
AnalysisSession::~AnalysisSession() = default;
AnalysisSession::AnalysisSession(AnalysisSession &&) noexcept =
    default;
AnalysisSession &
AnalysisSession::operator=(AnalysisSession &&) noexcept = default;

void
AnalysisSession::feedStreams(bool settle_all)
{
    if (!opts.streaming)
        return;
    if (!streams_ready) {
        for (const PhaseAlgorithm algorithm :
             requestedAlgorithms(opts)) {
            Stream stream;
            stream.detector =
                makeStreamingDetector(algorithm, opts);
            stream.step_us = &obs::MetricsRegistry::global()
                                  .histogram(
                                      std::string(
                                          "analyzer.stream_step_"
                                          "us{detector=") +
                                      stream.detector->name() +
                                      "}");
            streams.push_back(std::move(stream));
        }
        streams_ready = true;
    }

    // History rewritten below what the detectors already saw (an
    // out-of-order window, an attempt stitch, or a window overlap
    // deeper than the current margin): start over. The detectors
    // are pure functions of the settled prefix, so the re-feed
    // reconverges to the state a clean arrival would have
    // produced. Widening the margin to the observed depth makes
    // the next same-depth overlap land above the watermark, so
    // resets stop once the stream's overlap depth has been seen —
    // without that, overlapping profiler windows would trigger a
    // full re-feed per record and per-step cost would grow with
    // trace length.
    const std::size_t rows = builder.stepsAggregated();
    if (builder.touchedFloor() < observed_rows) {
        settle_margin = std::max(settle_margin,
                                 rows - builder.touchedFloor());
        for (Stream &stream : streams)
            stream.detector->reset();
        observed_rows = 0;
    }
    builder.clearTouchedFloor();

    // A row is settled once no later window is expected to fold
    // into it; hold back the trailing margin until finalize
    // (settle_all) flushes it.
    const std::size_t settled = settle_all
        ? rows
        : (rows > settle_margin ? rows - settle_margin : 0);
    if (settled <= observed_rows)
        return;

    std::vector<StepDelta> deltas;
    deltas.reserve(settled - observed_rows);
    for (std::size_t i = observed_rows; i < settled; ++i) {
        deltas.push_back(StepDelta{
            builder.rowStepId(i), builder.rowSpan(i),
            builder.rowHostOps(i), builder.rowTpuOps(i)});
    }
    for (Stream &stream : streams) {
        const auto begin = std::chrono::steady_clock::now();
        stream.detector->observeSteps(deltas);
        const auto micros =
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - begin)
                .count();
        // Amortized per-step cost of this feed.
        stream.step_us->observe(static_cast<std::uint64_t>(
            micros / static_cast<long long>(deltas.size())));
    }
    observed_rows = settled;
}

PartialResult
AnalysisSession::partialResult() const
{
    PartialResult out;
    // The builder is consumed by finalize(); the detectors keep
    // the authoritative count from then on.
    out.steps_aggregated = finalized
        ? observed_rows
        : builder.stepsAggregated();
    out.steps_observed = observed_rows;
    out.steps_behind = out.steps_aggregated > out.steps_observed
        ? out.steps_aggregated - out.steps_observed
        : 0;
    out.snapshots.reserve(streams.size());
    for (const Stream &stream : streams)
        out.snapshots.push_back(stream.detector->snapshot());
    return out;
}

void
AnalysisSession::ingest(const ProfileRecord &record)
{
    if (finalized)
        panic("AnalysisSession::ingest after finalize");
    if (record.attempt + 1 > attempts_seen)
        attempts_seen = record.attempt + 1;
    dropped_events += record.events_dropped;
    if (record.attempt_boundary) {
        // Stitch: the dead attempt's windows may extend past the
        // restart point — completed steps the new attempt re-runs
        // (they come back marked replayed, counted once) and
        // prefetch activity on steps that never finished. Drop
        // them and register the replay range.
        SimTime span = 0;
        discarded_steps +=
            builder.dropAfter(record.resume_step, &span);
        discarded_time += span;
        builder.markReplayed(record.resume_step,
                             record.preempted_at_step);
        // The drop lowered the touch floor; re-sync the streaming
        // detectors now so partialResult() never reports phases
        // over discarded steps.
        feedStreams(/*settle_all=*/false);
        return; // boundary markers carry no step data
    }
    builder.ingest(record);
    feedStreams(/*settle_all=*/false);
}

void
AnalysisSession::ingest(const ColumnarRecord &record)
{
    if (finalized)
        panic("AnalysisSession::ingest after finalize");
    if (record.attempt + 1 > attempts_seen)
        attempts_seen = record.attempt + 1;
    dropped_events += record.events_dropped;
    if (record.attempt_boundary) {
        SimTime span = 0;
        discarded_steps +=
            builder.dropAfter(record.resume_step, &span);
        discarded_time += span;
        builder.markReplayed(record.resume_step,
                             record.preempted_at_step);
        feedStreams(/*settle_all=*/false);
        return; // boundary markers carry no step data
    }
    builder.ingest(record);
    feedStreams(/*settle_all=*/false);
}

AnalysisResult
AnalysisSession::finalize(
    const std::vector<CheckpointInfo> &checkpoints)
{
    ThreadPoolOptions pool_opts;
    pool_opts.workers = opts.threads;
    pool_opts.hooks = obs::instrumentedPoolHooks("analysis");
    ThreadPool pool(pool_opts);
    return finalize(checkpoints, pool);
}

AnalysisResult
AnalysisSession::finalize(
    const std::vector<CheckpointInfo> &checkpoints,
    ThreadPool &pool)
{
    if (finalized)
        panic("AnalysisSession::finalize called twice");
    // Flush the held-back newest row into the streaming detectors
    // before the builder is consumed; no-op for batch sessions.
    feedStreams(/*settle_all=*/true);
    finalized = true;

    AnalysisResult result;
    result.algorithm = opts.algorithm;
    result.table = std::move(builder).build();
    result.attempts = attempts_seen;
    result.discarded_steps = discarded_steps;
    result.discarded_time = discarded_time;
    result.dropped_events = dropped_events;
    for (std::size_t i = 0; i < result.table.size(); ++i) {
        if (result.table.replayed(i))
            ++result.replayed_steps;
    }
    if (result.table.size() == 0)
        return result;

    const std::vector<PhaseAlgorithm> algorithms =
        requestedAlgorithms(opts);

    // One shared feature pass: build the matrix once iff any
    // requested detector reads it, instead of each algorithm
    // re-deriving its own copy.
    std::unique_ptr<FeatureMatrix> features;
    bool need_features = false;
    for (const PhaseAlgorithm algorithm : algorithms)
        need_features |= detectorFor(algorithm).needsFeatures();
    if (need_features) {
        obs::TraceSpan feature_span("analyze.features");
        feature_span.arg("steps",
                         static_cast<std::uint64_t>(
                             result.table.size()));
        features = std::make_unique<FeatureMatrix>(
            FeatureMatrix::build(result.table, opts.features));
    }

    // Detectors only read the table/features and write their own
    // detections slot, so they run concurrently when the pool has
    // workers; each also receives the pool for its internal
    // sweeps (nested fan-out is safe — waiters help).
    result.detections.resize(algorithms.size());
    auto run_detector = [&](std::size_t i) {
        const PhaseDetector &detector =
            detectorFor(algorithms[i]);
        obs::TraceSpan detect_span(std::string("analyze.") +
                                   detector.name());
        detect_span.arg("steps",
                        static_cast<std::uint64_t>(
                            result.table.size()));
        // Streaming sessions finish through the incremental
        // detectors (streams[i] is aligned with algorithms[i]):
        // OLS completes its live scan, the sampled/fallback
        // detectors delegate to the batch path — so finalize
        // output is byte-identical either way.
        result.detections[i] = opts.streaming
            ? streams[i].detector->finalize(
                  result.table, features.get(), opts, &pool)
            : detector.detect(result.table, features.get(), opts,
                              &pool);
        detect_span.arg("phases",
                        static_cast<std::uint64_t>(
                            result.detections[i].phases.size()));
    };
    if (algorithms.size() == 1)
        run_detector(0);
    else
        pool.forEach(algorithms.size(), run_detector,
                     "analyze.detector");

    // The flat fields mirror the primary detector for backward
    // compatibility with single-algorithm consumers.
    const DetectorResult &primary = result.detections.front();
    result.phases = primary.phases;
    result.top3_coverage = primary.top3_coverage;
    result.kmeans = primary.kmeans;
    result.dbscan = primary.dbscan;
    result.ols_spans = primary.ols_spans;
    result.ols_groups = primary.ols_groups;

    // Section IV-C: find the checkpoint with the smallest distance
    // to each phase's steps.
    if (!checkpoints.empty()) {
        for (const auto &phase : result.phases) {
            PhaseCheckpoint assoc;
            assoc.phase_id = phase.id;
            StepId best_distance = kNoStep;
            for (const auto &info : checkpoints) {
                // Distance from the checkpoint to the phase's step
                // interval.
                StepId distance = 0;
                if (info.step < phase.first_step)
                    distance = phase.first_step - info.step;
                else if (info.step > phase.last_step)
                    distance = info.step - phase.last_step;
                if (distance < best_distance) {
                    best_distance = distance;
                    assoc.checkpoint_step = info.step;
                    assoc.saved_at = info.saved_at;
                    assoc.distance = distance;
                }
            }
            result.checkpoints.push_back(assoc);
        }
    }
    return result;
}

namespace {

AnalysisSession
ingestAll(const AnalyzerOptions &opts,
          const std::vector<ProfileRecord> &records)
{
    AnalysisSession session(opts);
    obs::TraceSpan ingest_span("analyze.ingest");
    ingest_span.arg("records",
                    static_cast<std::uint64_t>(records.size()));
    for (const auto &record : records)
        session.ingest(record);
    return session;
}

} // namespace

AnalysisResult
TpuPointAnalyzer::analyze(
    const std::vector<ProfileRecord> &records,
    const std::vector<CheckpointInfo> &checkpoints) const
{
    AnalysisSession session = ingestAll(opts, records);
    return session.finalize(checkpoints);
}

AnalysisResult
TpuPointAnalyzer::analyze(
    const std::vector<ProfileRecord> &records,
    const std::vector<CheckpointInfo> &checkpoints,
    ThreadPool &pool) const
{
    AnalysisSession session = ingestAll(opts, records);
    return session.finalize(checkpoints, pool);
}

} // namespace tpupoint

#include "analyzer/visualization.hh"

#include <algorithm>
#include <string>

#include "core/csv.hh"
#include "core/json.hh"
#include "core/strings.hh"

namespace tpupoint {

namespace {

/** First/last event timestamps of a phase's member steps. */
std::pair<SimTime, SimTime>
phaseExtent(const Phase &phase, const StepTable &table)
{
    SimTime begin = kTimeForever;
    SimTime end = 0;
    for (const std::size_t index : phase.members) {
        begin = std::min(begin, table.beginTime(index));
        end = std::max(end, table.endTime(index));
    }
    if (begin == kTimeForever)
        begin = 0;
    return {begin, end};
}

std::string
phaseLabel(const Phase &phase)
{
    if (phase.is_noise)
        return "noise";
    return "phase " + std::to_string(phase.id) + " [steps " +
        std::to_string(phase.first_step) + ".." +
        std::to_string(phase.last_step) + "]";
}

void
traceEvent(JsonWriter &w, const std::string &name, int pid,
           int tid, SimTime start, SimTime duration)
{
    w.beginObject();
    w.field("name", name);
    w.field("ph", "X");
    w.field("pid", pid);
    w.field("tid", tid);
    // chrome://tracing expects microseconds.
    w.field("ts", static_cast<double>(start) / 1e3);
    w.field("dur", static_cast<double>(duration) / 1e3);
    w.endObject();
}

} // namespace

void
writeChromeTrace(const AnalysisResult &analysis,
                 const std::vector<ProfileRecord> &records,
                 std::ostream &out)
{
    std::vector<ProfileWindowInfo> windows;
    windows.reserve(records.size());
    for (const auto &record : records)
        windows.emplace_back(record);
    writeChromeTrace(analysis, windows, out);
}

void
writeChromeTrace(const AnalysisResult &analysis,
                 const std::vector<ProfileWindowInfo> &windows,
                 std::ostream &out)
{
    JsonWriter w(out);
    w.beginObject();
    w.key("traceEvents");
    w.beginArray();

    // Track metadata.
    for (const auto &[tid, label] :
         {std::pair<int, const char *>{1, "Profile Breakdown"},
          std::pair<int, const char *>{2, "Phase Breakdown"}}) {
        w.beginObject();
        w.field("name", "thread_name");
        w.field("ph", "M");
        w.field("pid", 1);
        w.field("tid", tid);
        w.key("args");
        w.beginObject();
        w.field("name", label);
        w.endObject();
        w.endObject();
    }

    // Profile Breakdown: one slice per profile window.
    for (const auto &window : windows) {
        const SimTime span =
            window.window_end > window.window_begin
                ? window.window_end - window.window_begin
                : 0;
        traceEvent(w,
                   "profile " + std::to_string(window.sequence) +
                       (window.truncated ? " (truncated)" : ""),
                   1, 1, window.window_begin, span);
    }

    // Phase Breakdown: one slice per phase.
    for (const auto &phase : analysis.phases) {
        const auto [begin, end] =
            phaseExtent(phase, analysis.table);
        traceEvent(w, phaseLabel(phase), 1, 2, begin,
                   end > begin ? end - begin : 0);
    }

    w.endArray();
    w.field("displayTimeUnit", "ms");
    w.endObject();
}

void
writePhaseCsv(const AnalysisResult &analysis, std::ostream &out)
{
    CsvWriter csv(out);
    csv.header({"phase", "first_step", "last_step", "steps",
                "duration_ms", "share", "top_tpu_ops",
                "top_host_ops"});
    SimTime total = 0;
    for (const auto &phase : analysis.phases)
        total += phase.total_duration;

    auto join_ops = [](const std::vector<RankedOp> &ops) {
        std::vector<std::string> names;
        names.reserve(ops.size());
        for (const auto &op : ops) {
            names.push_back(op.name + " (" +
                            formatDouble(100.0 * op.share, 1) +
                            "%)");
        }
        return join(names, "; ");
    };

    for (const auto &phase : analysis.phases) {
        csv.field(phaseLabel(phase))
            .field(static_cast<std::uint64_t>(phase.first_step))
            .field(static_cast<std::uint64_t>(phase.last_step))
            .field(static_cast<std::uint64_t>(phase.size()))
            .field(toMillis(phase.total_duration), 3)
            .field(total ? static_cast<double>(
                phase.total_duration) /
                static_cast<double>(total) : 0.0, 4)
            .field(join_ops(topOps(phase.tpu_ops, 5)))
            .field(join_ops(topOps(phase.host_ops, 5)));
        csv.endRow();
    }
}

void
writeAnalysisJson(const AnalysisResult &analysis, std::ostream &out,
                  bool pretty)
{
    JsonWriter w(out, pretty);
    w.beginObject();
    w.field("algorithm", phaseAlgorithmName(analysis.algorithm));
    w.field("steps", static_cast<std::uint64_t>(
        analysis.table.size()));
    w.field("phases", static_cast<std::uint64_t>(
        analysis.phases.size()));
    w.field("top3_coverage", analysis.top3_coverage);
    w.field("attempts",
            static_cast<std::uint64_t>(analysis.attempts));
    w.field("replayed_steps", analysis.replayed_steps);
    w.field("discarded_steps", analysis.discarded_steps);
    w.field("discarded_time_ns", analysis.discarded_time);
    w.field("dropped_events", analysis.dropped_events);

    w.key("phase_list");
    w.beginArray();
    for (const auto &phase : analysis.phases) {
        w.beginObject();
        w.field("id", phase.id);
        w.field("is_noise", phase.is_noise);
        w.field("first_step", static_cast<std::uint64_t>(
            phase.first_step));
        w.field("last_step", static_cast<std::uint64_t>(
            phase.last_step));
        w.field("steps", static_cast<std::uint64_t>(phase.size()));
        w.field("duration_ns", phase.total_duration);
        auto ranked_ops = [&w](const char *key,
                               const std::vector<RankedOp> &ops) {
            w.key(key);
            w.beginArray();
            for (const auto &op : ops) {
                w.beginObject();
                w.field("name", op.name);
                w.field("duration_ns", op.total_duration);
                w.field("count", op.count);
                w.field("share", op.share);
                w.endObject();
            }
            w.endArray();
        };
        ranked_ops("top_tpu_ops", topOps(phase.tpu_ops, 5));
        ranked_ops("top_host_ops", topOps(phase.host_ops, 5));
        w.endObject();
    }
    w.endArray();

    w.key("checkpoints");
    w.beginArray();
    for (const auto &assoc : analysis.checkpoints) {
        w.beginObject();
        w.field("phase_id", assoc.phase_id);
        w.field("checkpoint_step", static_cast<std::uint64_t>(
            assoc.checkpoint_step));
        w.field("distance_steps", static_cast<std::uint64_t>(
            assoc.distance));
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

} // namespace tpupoint

/**
 * @file
 * The analyzer's working set: all profile records of a run merged
 * into one per-step table (TPUPoint-Analyzer "extracts the records
 * from all statistical profiles and aggregates records together
 * using the TPU step numbers" — Section IV-A, stage 1).
 *
 * Storage is columnar: parallel per-step arrays for the scalar
 * columns (step id, timing, device counters, replay flag) and a
 * CSR layout — offset columns into flat, id-sorted operator-entry
 * arrays — for the per-step operator statistics, with operator
 * names interned to dense u32 ids (core/interner). Detectors walk
 * contiguous memory and compare integer ids; the row-oriented
 * `StepStats` view is materialized on demand (`at()`, `steps()`)
 * for consumers that still want maps of names.
 */

#ifndef TPUPOINT_ANALYZER_STEP_TABLE_HH
#define TPUPOINT_ANALYZER_STEP_TABLE_HH

#include <string>
#include <utility>
#include <vector>

#include "proto/columnar.hh"
#include "proto/record.hh"

namespace tpupoint {

class StepTable;

/**
 * Incremental step aggregation: records are folded in one at a
 * time as they arrive from the streaming reader, so the table can
 * be built while the profile is still being read (or recorded)
 * without materializing the record list. Rows are kept sorted by
 * step id throughout (ingest is effectively append-only for
 * in-order profiles), so build() is a flatten, not a sort.
 */
class StepTableBuilder
{
  public:
    /** Fold one profile record into the aggregation. */
    void ingest(const ProfileRecord &record);

    /** Fold one step summary into the aggregation. */
    void ingest(const StepStats &step);

    /**
     * Columnar fast path: fold a decoded ColumnarRecord without
     * ever materializing per-step string maps — entries merge
     * id-to-id by linear merge of the sorted runs.
     */
    void ingest(const ColumnarRecord &record);

    /** Records folded in so far. */
    std::uint64_t recordsIngested() const { return records_seen; }

    /** Steps aggregated so far. */
    std::size_t stepsAggregated() const { return ids.size(); }

    /**
     * Read-only peek at row @p i of the in-progress aggregation
     * (rows are sorted by step id, same order build() flattens
     * them in). The incremental detectors consume settled rows
     * through these without waiting for the table; a later ingest
     * may still fold into the row (see touchedFloor()).
     */
    StepId rowStepId(std::size_t i) const { return ids[i]; }

    /** Wall span of in-progress row @p i. */
    SimTime
    rowSpan(std::size_t i) const
    {
        return ends[i] > begins[i] ? ends[i] - begins[i] : 0;
    }

    /** In-progress row @p i's host op entries, id-sorted. */
    OpStatsSpan
    rowHostOps(std::size_t i) const
    {
        return OpStatsSpan(host_rows[i]);
    }

    /** In-progress row @p i's TPU op entries, id-sorted. */
    OpStatsSpan
    rowTpuOps(std::size_t i) const
    {
        return OpStatsSpan(tpu_rows[i]);
    }

    /**
     * Rewind detection for incremental consumers: the lowest row
     * index any fold has touched since the last clear (SIZE_MAX
     * when nothing folded). A consumer that has observed rows
     * [0, n) re-observes from scratch when the floor dips below n
     * — an out-of-order window or attempt stitch changed history.
     */
    std::size_t touchedFloor() const { return touched_floor; }

    /** Reset the touch floor after the consumer caught up. */
    void
    clearTouchedFloor()
    {
        touched_floor = static_cast<std::size_t>(-1);
    }

    /**
     * Attempt stitching, part 1: erase every aggregated step with
     * id > @p after. A preempted attempt's final windows carry
     * steps past the resume point — completed steps the restart
     * will re-run (which must not double-count) and prefetch
     * activity attributed to steps that never finished. Rows are
     * sorted by step id, so this is one binary search plus a
     * truncation of each column: O(log n + tail).
     * @param dropped_span When non-null, accumulates the wall span
     *     of the dropped rows (the discarded work).
     * @return Rows erased.
     */
    std::size_t dropAfter(StepId after,
                          SimTime *dropped_span = nullptr);

    /**
     * Attempt stitching, part 2: steps in (@p after, @p through]
     * ingested from now on are marked replayed — the checkpoint ->
     * preemption gap the restarted attempt runs again.
     */
    void markReplayed(StepId after, StepId through);

    /** Finish aggregation; the builder is consumed. */
    StepTable build() &&;

  private:
    /** Row index for @p step, inserting a fresh row if absent. */
    std::size_t rowFor(StepId step, SimTime begin, SimTime end);

    /** Fold one step's scalar columns + sorted op runs. */
    void foldStep(StepId step, SimTime begin, SimTime end,
                  SimTime busy, SimTime idle, SimTime mxu,
                  OpStatsSpan host, OpStatsSpan tpu,
                  bool replayed_flag);

    /** Parallel columns, sorted ascending by step id. */
    std::vector<StepId> ids;
    std::vector<SimTime> begins, ends, busys, idles, mxus;
    std::vector<std::uint8_t> replays;

    /** Per-row op entries, id-sorted (flattened to CSR on build). */
    std::vector<std::vector<ColumnarOpStats>> host_rows;
    std::vector<std::vector<ColumnarOpStats>> tpu_rows;

    /** Reused merge/convert scratch (capacity retained). */
    std::vector<ColumnarOpStats> scratch;

    std::uint64_t records_seen = 0;

    /** Lowest row index folded since clearTouchedFloor(). */
    std::size_t touched_floor = static_cast<std::size_t>(-1);

    /** (after, through] ranges whose re-ingested steps are
     * replays. */
    std::vector<std::pair<StepId, StepId>> replay_ranges;
};

/**
 * Per-step statistics aggregated across every profile window,
 * ascending by step number. Columnar accessors index by row
 * position (0..size()), not by step id.
 */
class StepTable
{
  public:
    /** Merge all records into a table (one-shot builder). */
    static StepTable fromRecords(
        const std::vector<ProfileRecord> &records);

    /** Number of steps observed. */
    std::size_t size() const { return ids.size(); }

    /** Columnar accessors (unchecked; index < size()). */
    StepId stepId(std::size_t i) const { return ids[i]; }
    SimTime beginTime(std::size_t i) const { return begins[i]; }
    SimTime endTime(std::size_t i) const { return ends[i]; }
    SimTime tpuBusy(std::size_t i) const { return busys[i]; }
    SimTime tpuIdle(std::size_t i) const { return idles[i]; }
    SimTime mxuActive(std::size_t i) const { return mxus[i]; }
    bool replayed(std::size_t i) const { return replays[i] != 0; }

    /** Wall-clock span covered by step @p i's events. */
    SimTime
    span(std::size_t i) const
    {
        return ends[i] > begins[i] ? ends[i] - begins[i] : 0;
    }

    /** Step @p i's operator entries, sorted by interned id. */
    OpStatsSpan
    hostOps(std::size_t i) const
    {
        return OpStatsSpan(host_entries.data() + host_offsets[i],
                           host_offsets[i + 1] - host_offsets[i]);
    }

    OpStatsSpan
    tpuOps(std::size_t i) const
    {
        return OpStatsSpan(tpu_entries.data() + tpu_offsets[i],
                           tpu_offsets[i + 1] - tpu_offsets[i]);
    }

    /**
     * Row-oriented compatibility view of one step (by index, not
     * step id): materializes the op maps through the interner.
     * Panics on an out-of-range index.
     */
    StepStats at(std::size_t index) const;

    /** All steps, ascending, materialized (compatibility view). */
    std::vector<StepStats> steps() const;

    /** Sum of all step spans (the execution time phases divide). */
    SimTime totalDuration() const;

    /**
     * Every distinct operator label, "host:"/"tpu:"-prefixed,
     * sorted. These are the raw feature dimensions.
     */
    std::vector<std::string> opUniverse() const;

  private:
    friend class StepTableBuilder;

    std::vector<StepId> ids;
    std::vector<SimTime> begins, ends, busys, idles, mxus;
    std::vector<std::uint8_t> replays;

    /** CSR: row i's entries are *_entries[*_offsets[i] ..
     * *_offsets[i+1]), id-sorted. Offsets have size()+1 elements
     * (or are empty for an empty table). */
    std::vector<std::uint32_t> host_offsets, tpu_offsets;
    std::vector<ColumnarOpStats> host_entries, tpu_entries;
};

} // namespace tpupoint

#endif // TPUPOINT_ANALYZER_STEP_TABLE_HH

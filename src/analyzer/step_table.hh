/**
 * @file
 * The analyzer's working set: all profile records of a run merged
 * into one per-step table (TPUPoint-Analyzer "extracts the records
 * from all statistical profiles and aggregates records together
 * using the TPU step numbers" — Section IV-A, stage 1).
 */

#ifndef TPUPOINT_ANALYZER_STEP_TABLE_HH
#define TPUPOINT_ANALYZER_STEP_TABLE_HH

#include <string>
#include <vector>

#include "proto/record.hh"

namespace tpupoint {

/**
 * Per-step statistics aggregated across every profile window,
 * ascending by step number.
 */
class StepTable
{
  public:
    /** Merge all records into a table. */
    static StepTable fromRecords(
        const std::vector<ProfileRecord> &records);

    /** All steps, ascending. */
    const std::vector<StepStats> &steps() const { return rows; }

    /** Number of steps observed. */
    std::size_t size() const { return rows.size(); }

    /** One step by index (not by step id). */
    const StepStats &at(std::size_t index) const;

    /** Sum of all step spans (the execution time phases divide). */
    SimTime totalDuration() const;

    /**
     * Every distinct operator label, "host:"/"tpu:"-prefixed,
     * sorted. These are the raw feature dimensions.
     */
    std::vector<std::string> opUniverse() const;

  private:
    std::vector<StepStats> rows;
};

} // namespace tpupoint

#endif // TPUPOINT_ANALYZER_STEP_TABLE_HH

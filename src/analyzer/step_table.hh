/**
 * @file
 * The analyzer's working set: all profile records of a run merged
 * into one per-step table (TPUPoint-Analyzer "extracts the records
 * from all statistical profiles and aggregates records together
 * using the TPU step numbers" — Section IV-A, stage 1).
 */

#ifndef TPUPOINT_ANALYZER_STEP_TABLE_HH
#define TPUPOINT_ANALYZER_STEP_TABLE_HH

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "proto/record.hh"

namespace tpupoint {

class StepTable;

/**
 * Incremental step aggregation: records are folded in one at a
 * time as they arrive from the streaming reader, so the table can
 * be built while the profile is still being read (or recorded)
 * without materializing the record list.
 */
class StepTableBuilder
{
  public:
    /** Fold one profile record into the aggregation. */
    void ingest(const ProfileRecord &record);

    /** Fold one step summary into the aggregation. */
    void ingest(const StepStats &step);

    /** Records folded in so far. */
    std::uint64_t recordsIngested() const { return records_seen; }

    /** Steps aggregated so far. */
    std::size_t stepsAggregated() const { return merged.size(); }

    /**
     * Attempt stitching, part 1: erase every aggregated step with
     * id > @p after. A preempted attempt's final windows carry
     * steps past the resume point — completed steps the restart
     * will re-run (which must not double-count) and prefetch
     * activity attributed to steps that never finished.
     * @param dropped_span When non-null, accumulates the wall span
     *     of the dropped rows (the discarded work).
     * @return Rows erased.
     */
    std::size_t dropAfter(StepId after,
                          SimTime *dropped_span = nullptr);

    /**
     * Attempt stitching, part 2: steps in (@p after, @p through]
     * ingested from now on are marked replayed — the checkpoint ->
     * preemption gap the restarted attempt runs again.
     */
    void markReplayed(StepId after, StepId through);

    /** Finish aggregation; the builder is consumed. */
    StepTable build() &&;

  private:
    std::map<StepId, StepStats> merged;
    std::uint64_t records_seen = 0;

    /** (after, through] ranges whose re-ingested steps are
     * replays. */
    std::vector<std::pair<StepId, StepId>> replay_ranges;
};

/**
 * Per-step statistics aggregated across every profile window,
 * ascending by step number.
 */
class StepTable
{
  public:
    /** Merge all records into a table (one-shot builder). */
    static StepTable fromRecords(
        const std::vector<ProfileRecord> &records);

    /** All steps, ascending. */
    const std::vector<StepStats> &steps() const { return rows; }

    /** Number of steps observed. */
    std::size_t size() const { return rows.size(); }

    /** One step by index (not by step id). */
    const StepStats &at(std::size_t index) const;

    /** Sum of all step spans (the execution time phases divide). */
    SimTime totalDuration() const;

    /**
     * Every distinct operator label, "host:"/"tpu:"-prefixed,
     * sorted. These are the raw feature dimensions.
     */
    std::vector<std::string> opUniverse() const;

  private:
    friend class StepTableBuilder;

    std::vector<StepStats> rows;
};

} // namespace tpupoint

#endif // TPUPOINT_ANALYZER_STEP_TABLE_HH

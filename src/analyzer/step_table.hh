/**
 * @file
 * The analyzer's working set: all profile records of a run merged
 * into one per-step table (TPUPoint-Analyzer "extracts the records
 * from all statistical profiles and aggregates records together
 * using the TPU step numbers" — Section IV-A, stage 1).
 */

#ifndef TPUPOINT_ANALYZER_STEP_TABLE_HH
#define TPUPOINT_ANALYZER_STEP_TABLE_HH

#include <map>
#include <string>
#include <vector>

#include "proto/record.hh"

namespace tpupoint {

class StepTable;

/**
 * Incremental step aggregation: records are folded in one at a
 * time as they arrive from the streaming reader, so the table can
 * be built while the profile is still being read (or recorded)
 * without materializing the record list.
 */
class StepTableBuilder
{
  public:
    /** Fold one profile record into the aggregation. */
    void ingest(const ProfileRecord &record);

    /** Fold one step summary into the aggregation. */
    void ingest(const StepStats &step);

    /** Records folded in so far. */
    std::uint64_t recordsIngested() const { return records_seen; }

    /** Steps aggregated so far. */
    std::size_t stepsAggregated() const { return merged.size(); }

    /** Finish aggregation; the builder is consumed. */
    StepTable build() &&;

  private:
    std::map<StepId, StepStats> merged;
    std::uint64_t records_seen = 0;
};

/**
 * Per-step statistics aggregated across every profile window,
 * ascending by step number.
 */
class StepTable
{
  public:
    /** Merge all records into a table (one-shot builder). */
    static StepTable fromRecords(
        const std::vector<ProfileRecord> &records);

    /** All steps, ascending. */
    const std::vector<StepStats> &steps() const { return rows; }

    /** Number of steps observed. */
    std::size_t size() const { return rows.size(); }

    /** One step by index (not by step id). */
    const StepStats &at(std::size_t index) const;

    /** Sum of all step spans (the execution time phases divide). */
    SimTime totalDuration() const;

    /**
     * Every distinct operator label, "host:"/"tpu:"-prefixed,
     * sorted. These are the raw feature dimensions.
     */
    std::vector<std::string> opUniverse() const;

  private:
    friend class StepTableBuilder;

    std::vector<StepStats> rows;
};

} // namespace tpupoint

#endif // TPUPOINT_ANALYZER_STEP_TABLE_HH

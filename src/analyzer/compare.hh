/**
 * @file
 * Cross-run analysis comparison. The paper repeats its analysis
 * with the same workloads on TPUv2 and TPUv3 and compares the top
 * operators and utilization (Table II, Observation 5); this module
 * packages that comparison: operator-share deltas of the longest
 * phases and the headline utilization changes between two profiled
 * runs.
 */

#ifndef TPUPOINT_ANALYZER_COMPARE_HH
#define TPUPOINT_ANALYZER_COMPARE_HH

#include <ostream>
#include <string>
#include <vector>

#include "analyzer/analyzer.hh"

namespace tpupoint {

/** One operator's share in both runs. */
struct OpShareDelta
{
    std::string name;
    double share_a = 0.0;   ///< Fraction of run A's phase time.
    double share_b = 0.0;   ///< Fraction of run B's phase time.

    double delta() const { return share_b - share_a; }
};

/** The comparison of two analyses. */
struct AnalysisComparison
{
    std::string label_a;
    std::string label_b;

    /** Longest-phase TPU operators present in either run. */
    std::vector<OpShareDelta> tpu_ops;

    /** Longest-phase host operators present in either run. */
    std::vector<OpShareDelta> host_ops;

    /** Phase counts. */
    std::size_t phases_a = 0;
    std::size_t phases_b = 0;

    /** Whether both runs' longest phases share their top operator
     * (the paper: "the top five operators generally remain
     * consistent for TPUv2 and TPUv3"). */
    bool same_top_tpu_op = false;

    /** Operators whose share moved by at least @p threshold. */
    std::vector<OpShareDelta> movers(double threshold) const;
};

/**
 * Compare two analyses (e.g. the same workload on TPUv2 and
 * TPUv3). Shares are taken over each run's longest phase.
 */
AnalysisComparison compareAnalyses(const AnalysisResult &a,
                                   const AnalysisResult &b,
                                   std::string label_a = "A",
                                   std::string label_b = "B");

/** Human-readable report of a comparison. */
void writeComparison(const AnalysisComparison &comparison,
                     std::ostream &out, std::size_t top_n = 8);

} // namespace tpupoint

#endif // TPUPOINT_ANALYZER_COMPARE_HH

#include "analyzer/kmeans.hh"

#include <algorithm>
#include <limits>

#include "analyzer/elbow.hh"
#include "core/logging.hh"
#include "core/thread_pool.hh"
#include "runtime/pool_map.hh"

namespace tpupoint {

namespace {

/** k-means++ initial centroid selection over row-major data. */
std::vector<FeatureVector>
seedCentroids(const Matrix &points, int k, Rng &rng)
{
    const std::size_t rows = points.rows();
    const std::size_t dim = points.cols();
    std::vector<FeatureVector> centroids;
    centroids.reserve(static_cast<std::size_t>(k));
    centroids.push_back(points.row(rng.nextBounded(rows)));

    std::vector<double> dist2(rows,
                              std::numeric_limits<double>::max());
    while (centroids.size() < static_cast<std::size_t>(k)) {
        double total = 0.0;
        for (std::size_t i = 0; i < rows; ++i) {
            dist2[i] = std::min(
                dist2[i],
                squaredDistanceN(points.rowPtr(i),
                                 centroids.back().data(), dim));
            total += dist2[i];
        }
        if (total == 0.0) {
            // All remaining points coincide with centroids.
            centroids.push_back(points.row(rng.nextBounded(rows)));
            continue;
        }
        double target = rng.nextDouble() * total;
        std::size_t chosen = rows - 1;
        for (std::size_t i = 0; i < rows; ++i) {
            target -= dist2[i];
            if (target <= 0) {
                chosen = i;
                break;
            }
        }
        centroids.push_back(points.row(chosen));
    }
    return centroids;
}

} // namespace

KMeansResult
kMeansCluster(const Matrix &points, int k, Rng &rng,
              int max_iterations)
{
    const std::size_t rows = points.rows();
    if (rows == 0)
        fatal("kMeansCluster: empty data set");
    k = std::max(1,
                 std::min<int>(k, static_cast<int>(rows)));

    KMeansResult result;
    result.k = k;
    result.centroids = seedCentroids(points, k, rng);
    result.labels.assign(rows, 0);

    const std::size_t dim = points.cols();
    for (int iter = 0; iter < max_iterations; ++iter) {
        bool changed = false;
        // Assignment step.
        for (std::size_t i = 0; i < rows; ++i) {
            const double *point = points.rowPtr(i);
            int best = 0;
            double best_d = squaredDistanceN(
                point, result.centroids[0].data(), dim);
            for (int c = 1; c < k; ++c) {
                const double d = squaredDistanceN(
                    point,
                    result.centroids[static_cast<std::size_t>(c)]
                        .data(),
                    dim);
                if (d < best_d) {
                    best_d = d;
                    best = c;
                }
            }
            if (result.labels[i] != best) {
                result.labels[i] = best;
                changed = true;
            }
        }
        result.iterations = iter + 1;
        if (!changed && iter > 0)
            break;

        // Update step.
        std::vector<FeatureVector> sums(
            static_cast<std::size_t>(k), FeatureVector(dim, 0.0));
        std::vector<std::size_t> counts(
            static_cast<std::size_t>(k), 0);
        for (std::size_t i = 0; i < rows; ++i) {
            const auto label =
                static_cast<std::size_t>(result.labels[i]);
            addN(sums[label].data(), points.rowPtr(i), dim);
            ++counts[label];
        }
        for (int c = 0; c < k; ++c) {
            const auto uc = static_cast<std::size_t>(c);
            if (counts[uc] == 0)
                continue; // keep the stale centroid
            scaleInPlace(sums[uc],
                         1.0 / static_cast<double>(counts[uc]));
            result.centroids[uc] = std::move(sums[uc]);
        }
    }

    result.ssd = 0.0;
    for (std::size_t i = 0; i < rows; ++i) {
        result.ssd += squaredDistanceN(
            points.rowPtr(i),
            result.centroids[static_cast<std::size_t>(
                result.labels[i])].data(),
            dim);
    }
    return result;
}

KMeansResult
kMeansCluster(const std::vector<FeatureVector> &points, int k,
              Rng &rng, int max_iterations)
{
    if (points.empty())
        fatal("kMeansCluster: empty data set");
    return kMeansCluster(Matrix::fromRows(points), k, rng,
                         max_iterations);
}

KMeansSweep
kMeansSweep(const Matrix &points, int k_min, int k_max,
            std::uint64_t seed, ThreadPool *pool)
{
    if (k_min < 1 || k_max < k_min)
        fatal("kMeansSweep: invalid k range");
    const std::size_t count =
        static_cast<std::size_t>(k_max - k_min + 1);
    KMeansSweep sweep;
    sweep.k_values.resize(count);
    sweep.ssd_curve.resize(count);
    std::vector<KMeansResult> all(count);
    std::vector<double> ks(count);

    // Each k is fully independent: its own Rng(seed + k) stream and
    // a preassigned slot keyed by k, so scheduling order cannot
    // change the result — parallel and serial sweeps are
    // bit-identical.
    auto run_k = [&](int k) {
        const std::size_t slot =
            static_cast<std::size_t>(k - k_min);
        Rng rng(seed + static_cast<std::uint64_t>(k));
        all[slot] = kMeansCluster(points, k, rng);
        sweep.k_values[slot] = k;
        sweep.ssd_curve[slot] = all[slot].ssd;
        ks[slot] = static_cast<double>(k);
    };
    // Largest k first: Lloyd iterations at k = k_max dominate the
    // sweep, so scheduling them first shortens the makespan when
    // the pool fans out (slots are preassigned, so the visit order
    // never shows in the result).
    runtime::poolMap(
        pool, count,
        [&](std::size_t i) { run_k(k_max - static_cast<int>(i)); },
        "analyze.kmeans.k");

    const std::size_t idx = elbowIndex(ks, sweep.ssd_curve);
    sweep.elbow_k = sweep.k_values[idx];
    sweep.best = all[idx];
    return sweep;
}

KMeansSweep
kMeansSweep(const std::vector<FeatureVector> &points, int k_min,
            int k_max, std::uint64_t seed, ThreadPool *pool)
{
    return kMeansSweep(Matrix::fromRows(points), k_min, k_max, seed,
                       pool);
}

} // namespace tpupoint

#include "analyzer/kmeans.hh"

#include <algorithm>
#include <limits>

#include "analyzer/elbow.hh"
#include "core/logging.hh"
#include "core/thread_pool.hh"

namespace tpupoint {

namespace {

/** k-means++ initial centroid selection. */
std::vector<FeatureVector>
seedCentroids(const std::vector<FeatureVector> &points, int k,
              Rng &rng)
{
    std::vector<FeatureVector> centroids;
    centroids.reserve(static_cast<std::size_t>(k));
    centroids.push_back(
        points[rng.nextBounded(points.size())]);

    std::vector<double> dist2(points.size(),
                              std::numeric_limits<double>::max());
    while (centroids.size() < static_cast<std::size_t>(k)) {
        double total = 0.0;
        for (std::size_t i = 0; i < points.size(); ++i) {
            dist2[i] = std::min(
                dist2[i],
                squaredDistance(points[i], centroids.back()));
            total += dist2[i];
        }
        if (total == 0.0) {
            // All remaining points coincide with centroids.
            centroids.push_back(
                points[rng.nextBounded(points.size())]);
            continue;
        }
        double target = rng.nextDouble() * total;
        std::size_t chosen = points.size() - 1;
        for (std::size_t i = 0; i < points.size(); ++i) {
            target -= dist2[i];
            if (target <= 0) {
                chosen = i;
                break;
            }
        }
        centroids.push_back(points[chosen]);
    }
    return centroids;
}

} // namespace

KMeansResult
kMeansCluster(const std::vector<FeatureVector> &points, int k,
              Rng &rng, int max_iterations)
{
    if (points.empty())
        fatal("kMeansCluster: empty data set");
    k = std::max(1, std::min<int>(
        k, static_cast<int>(points.size())));

    KMeansResult result;
    result.k = k;
    result.centroids = seedCentroids(points, k, rng);
    result.labels.assign(points.size(), 0);

    const std::size_t dim = points.front().size();
    for (int iter = 0; iter < max_iterations; ++iter) {
        bool changed = false;
        // Assignment step.
        for (std::size_t i = 0; i < points.size(); ++i) {
            int best = 0;
            double best_d =
                squaredDistance(points[i], result.centroids[0]);
            for (int c = 1; c < k; ++c) {
                const double d = squaredDistance(
                    points[i],
                    result.centroids[static_cast<std::size_t>(c)]);
                if (d < best_d) {
                    best_d = d;
                    best = c;
                }
            }
            if (result.labels[i] != best) {
                result.labels[i] = best;
                changed = true;
            }
        }
        result.iterations = iter + 1;
        if (!changed && iter > 0)
            break;

        // Update step.
        std::vector<FeatureVector> sums(
            static_cast<std::size_t>(k), FeatureVector(dim, 0.0));
        std::vector<std::size_t> counts(
            static_cast<std::size_t>(k), 0);
        for (std::size_t i = 0; i < points.size(); ++i) {
            addInPlace(sums[static_cast<std::size_t>(
                result.labels[i])], points[i]);
            ++counts[static_cast<std::size_t>(result.labels[i])];
        }
        for (int c = 0; c < k; ++c) {
            const auto uc = static_cast<std::size_t>(c);
            if (counts[uc] == 0)
                continue; // keep the stale centroid
            scaleInPlace(sums[uc],
                         1.0 / static_cast<double>(counts[uc]));
            result.centroids[uc] = std::move(sums[uc]);
        }
    }

    result.ssd = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
        result.ssd += squaredDistance(
            points[i], result.centroids[static_cast<std::size_t>(
                result.labels[i])]);
    }
    return result;
}

KMeansSweep
kMeansSweep(const std::vector<FeatureVector> &points, int k_min,
            int k_max, std::uint64_t seed, ThreadPool *pool)
{
    if (k_min < 1 || k_max < k_min)
        fatal("kMeansSweep: invalid k range");
    const std::size_t count =
        static_cast<std::size_t>(k_max - k_min + 1);
    KMeansSweep sweep;
    sweep.k_values.resize(count);
    sweep.ssd_curve.resize(count);
    std::vector<KMeansResult> all(count);
    std::vector<double> ks(count);

    // Each k is fully independent: its own Rng(seed + k) stream and
    // a preassigned slot keyed by k, so scheduling order cannot
    // change the result — parallel and serial sweeps are
    // bit-identical.
    auto run_k = [&](int k) {
        const std::size_t slot =
            static_cast<std::size_t>(k - k_min);
        Rng rng(seed + static_cast<std::uint64_t>(k));
        all[slot] = kMeansCluster(points, k, rng);
        sweep.k_values[slot] = k;
        sweep.ssd_curve[slot] = all[slot].ssd;
        ks[slot] = static_cast<double>(k);
    };
    if (pool != nullptr && !pool->inlineMode() && count > 1) {
        // Largest k first: Lloyd iterations at k = k_max dominate
        // the sweep, so scheduling them first shortens the
        // makespan.
        pool->forEach(
            count,
            [&](std::size_t i) {
                run_k(k_max - static_cast<int>(i));
            },
            "analyze.kmeans.k");
    } else {
        for (int k = k_min; k <= k_max; ++k)
            run_k(k);
    }

    const std::size_t idx = elbowIndex(ks, sweep.ssd_curve);
    sweep.elbow_k = sweep.k_values[idx];
    sweep.best = all[idx];
    return sweep;
}

} // namespace tpupoint

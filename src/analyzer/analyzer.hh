/**
 * @file
 * TPUPoint-Analyzer (Section IV): the post-execution analysis
 * facade. Walks the statistical profiles, summarizes them into
 * program phases with one of the three algorithms (k-means, DBSCAN,
 * OLS), measures coverage, ranks operators, and associates each
 * phase with the nearest model checkpoint for fast-forwarding.
 */

#ifndef TPUPOINT_ANALYZER_ANALYZER_HH
#define TPUPOINT_ANALYZER_ANALYZER_HH

#include <cstdint>
#include <vector>

#include "analyzer/dbscan.hh"
#include "analyzer/features.hh"
#include "analyzer/kmeans.hh"
#include "analyzer/ols.hh"
#include "analyzer/phases.hh"
#include "analyzer/step_table.hh"
#include "host/checkpoint.hh"

namespace tpupoint {

class ThreadPool;

/** Phase-detection algorithms offered by TPUPoint-Analyzer. */
enum class PhaseAlgorithm { KMeans, Dbscan, OnlineLinearScan };

/** Printable algorithm name. */
const char *phaseAlgorithmName(PhaseAlgorithm algorithm);

/** Analyzer configuration. */
struct AnalyzerOptions
{
    PhaseAlgorithm algorithm = PhaseAlgorithm::OnlineLinearScan;

    /**
     * Detectors to run in addition to `algorithm` over the same
     * aggregated table and shared feature pass. Each produces one
     * AnalysisResult::detections entry; the flat result fields
     * always mirror the primary `algorithm`. Duplicates of the
     * primary (or of each other) are ignored.
     */
    std::vector<PhaseAlgorithm> extra_algorithms;

    /**
     * Worker threads for finalize(): detectors run concurrently
     * and the k-means / DBSCAN sweeps fan out per setting. The
     * default 1 executes inline on the calling thread — the
     * historical serial path — and any thread count produces
     * bit-identical results (see DESIGN.md section 10).
     */
    unsigned threads = 1;

    /** OLS similarity threshold (Equation 1; default 70%). */
    double ols_threshold = 0.70;

    /** k-means sweep range (Section IV-A: 1..15). */
    int kmeans_k_min = 1;
    int kmeans_k_max = 15;

    /** Fixed k (0 = pick with the elbow method). */
    int kmeans_fixed_k = 0;

    /** DBSCAN eps (0 = derive from the data). */
    double dbscan_eps = 0.0;

    /** Fixed min-samples (0 = sweep 5..180 step 25 + elbow). */
    std::size_t dbscan_fixed_min_samples = 0;

    FeatureOptions features;
    std::uint64_t seed = 0x414e4c5aULL; // "ANLZ"
};

/**
 * One phase detector's complete output. finalize() produces one
 * DetectorResult per requested algorithm; only the fields relevant
 * to that algorithm are populated (kmeans for k-means, dbscan for
 * DBSCAN, ols_* for OLS — phases and top3_coverage always).
 */
struct DetectorResult
{
    PhaseAlgorithm algorithm = PhaseAlgorithm::OnlineLinearScan;
    std::vector<Phase> phases;
    double top3_coverage = 0.0;
    KMeansSweep kmeans;
    DbscanSweep dbscan;
    std::vector<OnlineLinearScan::Span> ols_spans;
    std::vector<OnlineLinearScan::Group> ols_groups;
};

/** A phase's associated restart checkpoint (Section IV-C). */
struct PhaseCheckpoint
{
    int phase_id = 0;
    StepId checkpoint_step = 0;
    SimTime saved_at = 0;
    StepId distance = 0; ///< |checkpoint - nearest phase step|.
};

/** Everything TPUPoint-Analyzer derives from a profiled run. */
struct AnalysisResult
{
    PhaseAlgorithm algorithm = PhaseAlgorithm::OnlineLinearScan;
    StepTable table;
    std::vector<Phase> phases;

    /** Coverage of execution by the 3 longest phases. */
    double top3_coverage = 0.0;

    /** k-means sweep curve (Figure 4) when that algorithm ran. */
    KMeansSweep kmeans;

    /** DBSCAN sweep curve (Figure 5) when that algorithm ran. */
    DbscanSweep dbscan;

    /** OLS raw segments and aggregated phase groups. */
    std::vector<OnlineLinearScan::Span> ols_spans;
    std::vector<OnlineLinearScan::Group> ols_groups;

    /**
     * Every requested detector's output, primary algorithm first,
     * then extra_algorithms in request order. The flat fields
     * above (phases, top3_coverage, kmeans, dbscan, ols_*) mirror
     * detections.front() so single-algorithm consumers need not
     * care that others ran.
     */
    std::vector<DetectorResult> detections;

    /** Nearest checkpoint per phase, when checkpoints were given. */
    std::vector<PhaseCheckpoint> checkpoints;

    /**
     * Attempt continuity (container v4). A single-attempt profile
     * reports attempts = 1 and zero replay/discard; a stitched
     * multi-attempt profile counts each preemption boundary, the
     * steps the restarts re-ran (marked in the table, counted once
     * in aggregates), and the work discarded at each boundary.
     */
    std::uint32_t attempts = 1;
    std::uint64_t replayed_steps = 0;  ///< Table rows marked replayed.
    std::uint64_t discarded_steps = 0; ///< Rows dropped at boundaries.
    SimTime discarded_time = 0;        ///< Span of dropped rows.

    /**
     * Events the profiler rejected at transport caps, summed over
     * every ingested record (container v5; 0 for older profiles).
     * Non-zero means the phase statistics undercount the capped
     * windows.
     */
    std::uint64_t dropped_events = 0;

    /** The longest phase, or nullptr when no phases. */
    const Phase *longest() const { return longestPhase(phases); }
};

/**
 * One incremental analysis: records are ingested as they arrive
 * from the streaming profile reader (or straight off the live
 * profiler), so step aggregation overlaps record arrival and the
 * record list never has to be materialized. finalize() runs the
 * phase detector over the aggregated table.
 */
class AnalysisSession
{
  public:
    explicit AnalysisSession(const AnalyzerOptions &options = {});

    /**
     * Fold one profile record into the session. Attempt-boundary
     * records (container v4) stitch instead of aggregate: steps
     * the dead attempt ran past the restart's resume point are
     * dropped, and the replayed range is marked so re-ingested
     * steps count once with a replay flag.
     */
    void ingest(const ProfileRecord &record);

    /**
     * Columnar fast path: fold a reusable ColumnarRecord (see
     * ProfileReader::read(ColumnarRecord&)) with identical
     * semantics — same stitching, same aggregates — but no
     * per-record map materialization.
     */
    void ingest(const ColumnarRecord &record);

    /** Records ingested so far. */
    std::uint64_t recordsIngested() const
    {
        return builder.recordsIngested();
    }

    /**
     * Run phase detection over everything ingested. The session
     * is consumed; a fresh one is needed for another analysis.
     * @param checkpoints The run's checkpoint registry, used for
     *     phase/checkpoint association (may be empty).
     */
    AnalysisResult finalize(
        const std::vector<CheckpointInfo> &checkpoints = {});

    /**
     * finalize() on a caller-provided pool instead of one built
     * from options().threads — lets a process share a single pool
     * (and a single --threads knob) across sessions, sweeps, and
     * jobs. The pool only schedules; it never feeds randomness or
     * simulated time into detection, so results are bit-identical
     * for any worker count.
     */
    AnalysisResult finalize(
        const std::vector<CheckpointInfo> &checkpoints,
        ThreadPool &pool);

    const AnalyzerOptions &options() const { return opts; }

  private:
    AnalyzerOptions opts;
    StepTableBuilder builder;
    bool finalized = false;

    std::uint32_t attempts_seen = 1;
    std::uint64_t discarded_steps = 0;
    SimTime discarded_time = 0;
    std::uint64_t dropped_events = 0;
};

/**
 * The analyzer. Stateless across runs; analyze() is const apart
 * from seeding.
 */
class TpuPointAnalyzer
{
  public:
    explicit TpuPointAnalyzer(const AnalyzerOptions &options = {});

    /**
     * Full post-execution analysis of @p records: a thin wrapper
     * that feeds an AnalysisSession and finalizes it.
     * @param checkpoints The run's checkpoint registry, used for
     *     phase/checkpoint association (may be empty).
     */
    AnalysisResult analyze(
        const std::vector<ProfileRecord> &records,
        const std::vector<CheckpointInfo> &checkpoints = {}) const;

    /** analyze() on a caller-provided pool (see AnalysisSession). */
    AnalysisResult analyze(
        const std::vector<ProfileRecord> &records,
        const std::vector<CheckpointInfo> &checkpoints,
        ThreadPool &pool) const;

    const AnalyzerOptions &options() const { return opts; }

  private:
    AnalyzerOptions opts;
};

} // namespace tpupoint

#endif // TPUPOINT_ANALYZER_ANALYZER_HH

/**
 * @file
 * TPUPoint-Analyzer (Section IV): the post-execution analysis
 * facade. Walks the statistical profiles, summarizes them into
 * program phases with one of the three algorithms (k-means, DBSCAN,
 * OLS), measures coverage, ranks operators, and associates each
 * phase with the nearest model checkpoint for fast-forwarding.
 */

#ifndef TPUPOINT_ANALYZER_ANALYZER_HH
#define TPUPOINT_ANALYZER_ANALYZER_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "analyzer/dbscan.hh"
#include "analyzer/features.hh"
#include "analyzer/kmeans.hh"
#include "analyzer/ols.hh"
#include "analyzer/phases.hh"
#include "analyzer/step_table.hh"
#include "host/checkpoint.hh"

namespace tpupoint {

class ThreadPool;
class StreamingDetector;

namespace obs {
class Histogram;
} // namespace obs

/** Phase-detection algorithms offered by TPUPoint-Analyzer. */
enum class PhaseAlgorithm { KMeans, Dbscan, OnlineLinearScan };

/** Printable algorithm name. */
const char *phaseAlgorithmName(PhaseAlgorithm algorithm);

/** Analyzer configuration. */
struct AnalyzerOptions
{
    PhaseAlgorithm algorithm = PhaseAlgorithm::OnlineLinearScan;

    /**
     * Detectors to run in addition to `algorithm` over the same
     * aggregated table and shared feature pass. Each produces one
     * AnalysisResult::detections entry; the flat result fields
     * always mirror the primary `algorithm`. Duplicates of the
     * primary (or of each other) are ignored.
     */
    std::vector<PhaseAlgorithm> extra_algorithms;

    /**
     * Worker threads for finalize(): detectors run concurrently
     * and the k-means / DBSCAN sweeps fan out per setting. The
     * default 1 executes inline on the calling thread — the
     * historical serial path — and any thread count produces
     * bit-identical results (see DESIGN.md section 10).
     */
    unsigned threads = 1;

    /** OLS similarity threshold (Equation 1; default 70%). */
    double ols_threshold = 0.70;

    /** k-means sweep range (Section IV-A: 1..15). */
    int kmeans_k_min = 1;
    int kmeans_k_max = 15;

    /** Fixed k (0 = pick with the elbow method). */
    int kmeans_fixed_k = 0;

    /** DBSCAN eps (0 = derive from the data). */
    double dbscan_eps = 0.0;

    /** Fixed min-samples (0 = sweep 5..180 step 25 + elbow). */
    std::size_t dbscan_fixed_min_samples = 0;

    FeatureOptions features;
    std::uint64_t seed = 0x414e4c5aULL; // "ANLZ"

    /**
     * Maintain incremental detectors during ingest so
     * partialResult() answers phase queries mid-stream at bounded
     * per-step cost. Off (the default), ingest is aggregation only
     * and finalize() is the historical batch path; on, finalize()
     * is still bit-identical for batch detectors (k-means/DBSCAN
     * re-detect over the full table) while OLS completes from its
     * streaming state — the same fold, finished once.
     */
    bool streaming = false;

    /**
     * Capacity of the streaming mini-batch k-means reservoir: the
     * deterministic sample of feature rows mid-stream snapshots
     * cluster. Bounds snapshot cost regardless of trace length.
     */
    std::size_t streaming_reservoir = 256;
};

/** Compact phase summary a streaming snapshot reports. */
struct StreamingPhase
{
    int id = 0;
    StepId first_step = 0;
    StepId last_step = 0;
    std::uint64_t steps = 0;  ///< Sampled steps when `sampled`.
    SimTime duration = 0;     ///< Sum of (sampled) member spans.
    bool noise = false;
};

/**
 * One incremental detector's answer mid-stream: the phases over
 * every step observed so far, without finalizing anything.
 */
struct StreamingSnapshot
{
    PhaseAlgorithm algorithm = PhaseAlgorithm::OnlineLinearScan;
    std::vector<StreamingPhase> phases;
    double top3_coverage = 0.0;

    /** Steps the detector has consumed. */
    std::uint64_t steps_observed = 0;

    /**
     * The snapshot equals what the batch detector would produce
     * over the observed steps (true for streaming OLS; false for
     * sampled estimates and the batch-fallback adapter).
     */
    bool exact = false;

    /** Phases are estimated from a reservoir sample. */
    bool sampled = false;
};

/**
 * AnalysisSession::partialResult(): the streaming detectors'
 * answers plus how far they trail the aggregation. Available any
 * number of times without consuming the session.
 */
struct PartialResult
{
    /** Step rows aggregated so far. */
    std::uint64_t steps_aggregated = 0;

    /**
     * Settled rows the streaming detectors consumed. The newest
     * row stays unsettled (a later window may still fold into it),
     * so this trails steps_aggregated by at least one mid-stream.
     */
    std::uint64_t steps_observed = 0;

    /** steps_aggregated - steps_observed: the staleness figure. */
    std::uint64_t steps_behind = 0;

    /** One snapshot per requested algorithm, primary first. */
    std::vector<StreamingSnapshot> snapshots;
};

/**
 * One phase detector's complete output. finalize() produces one
 * DetectorResult per requested algorithm; only the fields relevant
 * to that algorithm are populated (kmeans for k-means, dbscan for
 * DBSCAN, ols_* for OLS — phases and top3_coverage always).
 */
struct DetectorResult
{
    PhaseAlgorithm algorithm = PhaseAlgorithm::OnlineLinearScan;
    std::vector<Phase> phases;
    double top3_coverage = 0.0;
    KMeansSweep kmeans;
    DbscanSweep dbscan;
    std::vector<OnlineLinearScan::Span> ols_spans;
    std::vector<OnlineLinearScan::Group> ols_groups;
};

/** A phase's associated restart checkpoint (Section IV-C). */
struct PhaseCheckpoint
{
    int phase_id = 0;
    StepId checkpoint_step = 0;
    SimTime saved_at = 0;
    StepId distance = 0; ///< |checkpoint - nearest phase step|.
};

/** Everything TPUPoint-Analyzer derives from a profiled run. */
struct AnalysisResult
{
    PhaseAlgorithm algorithm = PhaseAlgorithm::OnlineLinearScan;
    StepTable table;
    std::vector<Phase> phases;

    /** Coverage of execution by the 3 longest phases. */
    double top3_coverage = 0.0;

    /** k-means sweep curve (Figure 4) when that algorithm ran. */
    KMeansSweep kmeans;

    /** DBSCAN sweep curve (Figure 5) when that algorithm ran. */
    DbscanSweep dbscan;

    /** OLS raw segments and aggregated phase groups. */
    std::vector<OnlineLinearScan::Span> ols_spans;
    std::vector<OnlineLinearScan::Group> ols_groups;

    /**
     * Every requested detector's output, primary algorithm first,
     * then extra_algorithms in request order. The flat fields
     * above (phases, top3_coverage, kmeans, dbscan, ols_*) mirror
     * detections.front() so single-algorithm consumers need not
     * care that others ran.
     */
    std::vector<DetectorResult> detections;

    /** Nearest checkpoint per phase, when checkpoints were given. */
    std::vector<PhaseCheckpoint> checkpoints;

    /**
     * Attempt continuity (container v4). A single-attempt profile
     * reports attempts = 1 and zero replay/discard; a stitched
     * multi-attempt profile counts each preemption boundary, the
     * steps the restarts re-ran (marked in the table, counted once
     * in aggregates), and the work discarded at each boundary.
     */
    std::uint32_t attempts = 1;
    std::uint64_t replayed_steps = 0;  ///< Table rows marked replayed.
    std::uint64_t discarded_steps = 0; ///< Rows dropped at boundaries.
    SimTime discarded_time = 0;        ///< Span of dropped rows.

    /**
     * Events the profiler rejected at transport caps, summed over
     * every ingested record (container v5; 0 for older profiles).
     * Non-zero means the phase statistics undercount the capped
     * windows.
     */
    std::uint64_t dropped_events = 0;

    /** The longest phase, or nullptr when no phases. */
    const Phase *longest() const { return longestPhase(phases); }
};

/**
 * One incremental analysis: records are ingested as they arrive
 * from the streaming profile reader (or straight off the live
 * profiler), so step aggregation overlaps record arrival and the
 * record list never has to be materialized. finalize() runs the
 * phase detector over the aggregated table.
 */
class AnalysisSession
{
  public:
    explicit AnalysisSession(const AnalyzerOptions &options = {});
    ~AnalysisSession();

    AnalysisSession(AnalysisSession &&) noexcept;
    AnalysisSession &operator=(AnalysisSession &&) noexcept;

    /**
     * Fold one profile record into the session. Attempt-boundary
     * records (container v4) stitch instead of aggregate: steps
     * the dead attempt ran past the restart's resume point are
     * dropped, and the replayed range is marked so re-ingested
     * steps count once with a replay flag.
     */
    void ingest(const ProfileRecord &record);

    /**
     * Columnar fast path: fold a reusable ColumnarRecord (see
     * ProfileReader::read(ColumnarRecord&)) with identical
     * semantics — same stitching, same aggregates — but no
     * per-record map materialization.
     */
    void ingest(const ColumnarRecord &record);

    /** Records ingested so far. */
    std::uint64_t recordsIngested() const
    {
        return builder.recordsIngested();
    }

    /**
     * Run phase detection over everything ingested. The session
     * is consumed; a fresh one is needed for another analysis.
     * @param checkpoints The run's checkpoint registry, used for
     *     phase/checkpoint association (may be empty).
     */
    AnalysisResult finalize(
        const std::vector<CheckpointInfo> &checkpoints = {});

    /**
     * finalize() on a caller-provided pool instead of one built
     * from options().threads — lets a process share a single pool
     * (and a single --threads knob) across sessions, sweeps, and
     * jobs. The pool only schedules; it never feeds randomness or
     * simulated time into detection, so results are bit-identical
     * for any worker count.
     */
    AnalysisResult finalize(
        const std::vector<CheckpointInfo> &checkpoints,
        ThreadPool &pool);

    /**
     * Streaming read-out (options().streaming only; otherwise the
     * snapshot list is empty and only the aggregation counters are
     * filled). Does not consume or mutate the session beyond the
     * detectors' own incremental state; callable any number of
     * times, including after finalize() — where steps_behind is 0
     * and each snapshot reflects every step (exact detectors
     * report their final phases, sampled ones their last
     * estimate).
     */
    PartialResult partialResult() const;

    const AnalyzerOptions &options() const { return opts; }

  private:
    /**
     * Feed the streaming detectors every settled row the builder
     * has beyond what they observed. A row is settled once a
     * higher step id exists (windows of one step arrive before the
     * next step starts), so the newest row is withheld until
     * either a later step lands or finalize(). When the builder's
     * touch floor dips below the observed count — an out-of-order
     * window or attempt stitch rewrote history — the detectors
     * reset and re-observe from row 0.
     */
    void feedStreams(bool settle_all);

    AnalyzerOptions opts;
    StepTableBuilder builder;
    bool finalized = false;

    std::uint32_t attempts_seen = 1;
    std::uint64_t discarded_steps = 0;
    SimTime discarded_time = 0;
    std::uint64_t dropped_events = 0;

    /** One incremental detector per requested algorithm (primary
     * first), plus its per-step latency histogram — populated
     * lazily on first ingest when opts.streaming. */
    struct Stream
    {
        std::unique_ptr<StreamingDetector> detector;
        obs::Histogram *step_us = nullptr;
    };
    std::vector<Stream> streams;
    bool streams_ready = false;

    /** Builder rows the streaming detectors have consumed. */
    std::size_t observed_rows = 0;

    /**
     * How far the settle watermark trails the newest row. Profiler
     * windows overlap, so trailing rows keep accumulating after
     * they first appear; the margin grows to the deepest re-touch
     * seen so far, after which resets stop and per-step cost is
     * O(1) amortized.
     */
    std::size_t settle_margin = 1;
};

/**
 * The analyzer. Stateless across runs; analyze() is const apart
 * from seeding.
 */
class TpuPointAnalyzer
{
  public:
    explicit TpuPointAnalyzer(const AnalyzerOptions &options = {});

    /**
     * Full post-execution analysis of @p records: a thin wrapper
     * that feeds an AnalysisSession and finalizes it.
     * @param checkpoints The run's checkpoint registry, used for
     *     phase/checkpoint association (may be empty).
     */
    AnalysisResult analyze(
        const std::vector<ProfileRecord> &records,
        const std::vector<CheckpointInfo> &checkpoints = {}) const;

    /** analyze() on a caller-provided pool (see AnalysisSession). */
    AnalysisResult analyze(
        const std::vector<ProfileRecord> &records,
        const std::vector<CheckpointInfo> &checkpoints,
        ThreadPool &pool) const;

    const AnalyzerOptions &options() const { return opts; }

  private:
    AnalyzerOptions opts;
};

} // namespace tpupoint

#endif // TPUPOINT_ANALYZER_ANALYZER_HH

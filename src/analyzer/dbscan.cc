#include "analyzer/dbscan.hh"

#include <algorithm>
#include <cmath>
#include <deque>

#include "analyzer/elbow.hh"
#include "core/logging.hh"
#include "core/thread_pool.hh"
#include "runtime/pool_map.hh"

namespace tpupoint {

namespace {

/** Indices of all points within eps of @p center (inclusive). */
std::vector<std::size_t>
regionQuery(const Matrix &points, std::size_t center, double eps2)
{
    const double *c = points.rowPtr(center);
    const std::size_t dim = points.cols();
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < points.rows(); ++i) {
        if (squaredDistanceN(c, points.rowPtr(i), dim) <= eps2)
            out.push_back(i);
    }
    return out;
}

} // namespace

double
suggestEps(const Matrix &points)
{
    const std::size_t rows = points.rows();
    if (rows < 2)
        return 1.0;
    const std::size_t dim = points.cols();
    // Use a 24-NN radius: wide enough that steady-state training
    // steps (which dominate every run) form a dense core across
    // the whole min-samples sweep, as in the paper's Figure 5.
    constexpr std::size_t kth = 24;
    std::vector<double> kth_distances;
    kth_distances.reserve(rows);
    std::vector<double> dists;
    for (std::size_t i = 0; i < rows; ++i) {
        dists.clear();
        const double *pi = points.rowPtr(i);
        for (std::size_t j = 0; j < rows; ++j) {
            if (j != i) {
                dists.push_back(std::sqrt(squaredDistanceN(
                    pi, points.rowPtr(j), dim)));
            }
        }
        const std::size_t k = std::min(kth, dists.size()) - 1;
        std::nth_element(dists.begin(), dists.begin() +
                         static_cast<std::ptrdiff_t>(k),
                         dists.end());
        kth_distances.push_back(dists[k]);
    }
    std::sort(kth_distances.begin(), kth_distances.end());
    const std::size_t p90 = (kth_distances.size() * 9) / 10;
    const double eps = 1.5 *
        kth_distances[std::min(p90, kth_distances.size() - 1)];
    return eps > 0 ? eps : 1.0;
}

double
suggestEps(const std::vector<FeatureVector> &points)
{
    return suggestEps(Matrix::fromRows(points));
}

DbscanResult
dbscanCluster(const Matrix &points, double eps,
              std::size_t min_samples)
{
    if (eps <= 0)
        fatal("dbscanCluster: eps must be positive");
    if (min_samples == 0)
        fatal("dbscanCluster: min_samples must be positive");

    const std::size_t rows = points.rows();
    DbscanResult result;
    result.eps = eps;
    result.min_samples = min_samples;
    const double eps2 = eps * eps;

    constexpr int kUnvisited = -2;
    result.labels.assign(rows, kUnvisited);
    int next_cluster = 0;

    for (std::size_t i = 0; i < rows; ++i) {
        if (result.labels[i] != kUnvisited)
            continue;
        std::vector<std::size_t> neighbours =
            regionQuery(points, i, eps2);
        if (neighbours.size() < min_samples) {
            result.labels[i] = kDbscanNoise;
            continue;
        }
        // Grow a new cluster from this core point.
        const int cluster = next_cluster++;
        result.labels[i] = cluster;
        std::deque<std::size_t> frontier(neighbours.begin(),
                                         neighbours.end());
        while (!frontier.empty()) {
            const std::size_t p = frontier.front();
            frontier.pop_front();
            if (result.labels[p] == kDbscanNoise)
                result.labels[p] = cluster; // border point
            if (result.labels[p] != kUnvisited)
                continue;
            result.labels[p] = cluster;
            std::vector<std::size_t> p_neighbours =
                regionQuery(points, p, eps2);
            if (p_neighbours.size() >= min_samples) {
                frontier.insert(frontier.end(),
                                p_neighbours.begin(),
                                p_neighbours.end());
            }
        }
    }

    result.clusters = next_cluster;
    for (const int label : result.labels)
        if (label == kDbscanNoise)
            ++result.noise_points;
    result.noise_ratio = rows == 0 ? 0.0
        : static_cast<double>(result.noise_points) /
            static_cast<double>(rows);
    return result;
}

DbscanResult
dbscanCluster(const std::vector<FeatureVector> &points, double eps,
              std::size_t min_samples)
{
    return dbscanCluster(Matrix::fromRows(points), eps,
                         min_samples);
}

DbscanSweep
dbscanSweep(const Matrix &points, double eps, std::size_t lo,
            std::size_t hi, std::size_t stride, ThreadPool *pool)
{
    if (stride == 0)
        fatal("dbscanSweep: stride must be positive");
    // Resolve eps once, before any fan-out, so every setting
    // clusters against the same neighbourhood radius.
    if (eps <= 0)
        eps = suggestEps(points);

    std::vector<std::size_t> settings;
    for (std::size_t m = lo; m <= hi; m += stride)
        settings.push_back(m);

    DbscanSweep sweep;
    sweep.min_samples_values.resize(settings.size());
    sweep.noise_curve.resize(settings.size());
    sweep.cluster_counts.resize(settings.size());
    std::vector<DbscanResult> all(settings.size());
    std::vector<double> xs(settings.size());

    // Settings are independent and write preassigned slots, so the
    // parallel sweep is bit-identical to the serial one.
    auto run_m = [&](std::size_t i) {
        all[i] = dbscanCluster(points, eps, settings[i]);
        sweep.min_samples_values[i] = settings[i];
        sweep.noise_curve[i] = all[i].noise_ratio;
        sweep.cluster_counts[i] = all[i].clusters;
        xs[i] = static_cast<double>(settings[i]);
    };
    runtime::poolMap(pool, settings.size(), run_m,
                     "analyze.dbscan.min_samples");

    const std::size_t idx = elbowIndex(xs, sweep.noise_curve);
    sweep.elbow_min_samples = sweep.min_samples_values[idx];
    sweep.best = all[idx];
    return sweep;
}

DbscanSweep
dbscanSweep(const std::vector<FeatureVector> &points, double eps,
            std::size_t lo, std::size_t hi, std::size_t stride,
            ThreadPool *pool)
{
    return dbscanSweep(Matrix::fromRows(points), eps, lo, hi,
                       stride, pool);
}

} // namespace tpupoint

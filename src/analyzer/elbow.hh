/**
 * @file
 * The elbow heuristic (Thorndike, 1953) TPUPoint-Analyzer uses to
 * "cut clustering off when improvement stops increasing
 * significantly" (Section IV-A) — for the k-means SSD curve and the
 * DBSCAN noise-ratio curve alike.
 */

#ifndef TPUPOINT_ANALYZER_ELBOW_HH
#define TPUPOINT_ANALYZER_ELBOW_HH

#include <cstddef>
#include <vector>

namespace tpupoint {

/**
 * Index of the elbow of a monotonically (mostly) decreasing curve:
 * the point with maximum perpendicular distance from the chord
 * between the first and last points. Returns 0 for curves with
 * fewer than three points.
 *
 * @param x Positions (e.g. k values or min-sample counts).
 * @param y Scores (e.g. SSD or noise ratio).
 */
std::size_t elbowIndex(const std::vector<double> &x,
                       const std::vector<double> &y);

} // namespace tpupoint

#endif // TPUPOINT_ANALYZER_ELBOW_HH

/**
 * @file
 * Program phases: the unit TPUPoint-Analyzer summarizes runs into.
 * Construction from cluster labels (k-means / DBSCAN) or from OLS
 * spans, plus the metrics the paper reports per phase: execution
 * coverage of the top phases (Figures 7-9) and the top-5 most
 * time-consuming operators of the longest phase (Table II).
 */

#ifndef TPUPOINT_ANALYZER_PHASES_HH
#define TPUPOINT_ANALYZER_PHASES_HH

#include <string>
#include <vector>

#include "analyzer/ols.hh"
#include "analyzer/step_table.hh"

namespace tpupoint {

/** One program phase. */
struct Phase
{
    int id = 0;
    std::vector<std::size_t> members; ///< Step-table indices.
    StepId first_step = 0;
    StepId last_step = 0;
    SimTime total_duration = 0;       ///< Sum of member spans.
    OpStatsMap host_ops;              ///< Aggregated over members.
    OpStatsMap tpu_ops;
    bool is_noise = false; ///< DBSCAN's unlabeled pseudo-cluster.

    /** Steps in the phase. */
    std::size_t size() const { return members.size(); }
};

/**
 * Build phases from per-step cluster labels. Noise points (label
 * < 0) form one pseudo-phase — the paper treats DBSCAN's unlabeled
 * samples "to be a cluster as well".
 */
std::vector<Phase> phasesFromLabels(const StepTable &table,
                                    const std::vector<int> &labels);

/** Build phases from OLS phase groups (recurring spans merged). */
std::vector<Phase> phasesFromGroups(
    const StepTable &table,
    const std::vector<OnlineLinearScan::Group> &groups);

/** Pointers to phases sorted by descending total duration. */
std::vector<const Phase *>
phasesByDuration(const std::vector<Phase> &phases);

/**
 * Fraction of total execution time covered by the @p top_n longest
 * phases (Observation 2: the 3 longest cover most of it).
 */
double topPhaseCoverage(const std::vector<Phase> &phases,
                        std::size_t top_n);

/** The longest phase, or nullptr when empty. */
const Phase *longestPhase(const std::vector<Phase> &phases);

/** One operator in a top-N ranking. */
struct RankedOp
{
    std::string name;
    SimTime total_duration = 0;
    std::uint64_t count = 0;
    double share = 0.0; ///< Fraction of the map's total duration.
};

/** The @p n most time-consuming operators of @p ops. */
std::vector<RankedOp> topOps(const OpStatsMap &ops, std::size_t n);

} // namespace tpupoint

#endif // TPUPOINT_ANALYZER_PHASES_HH

#include "analyzer/compare.hh"

#include <algorithm>
#include <cmath>
#include <map>

#include "core/strings.hh"

namespace tpupoint {

namespace {

/** Duration share of every op in @p ops. */
std::map<std::string, double>
shares(const OpStatsMap &ops)
{
    SimTime total = 0;
    for (const auto &[name, stats] : ops)
        total += stats.total_duration;
    std::map<std::string, double> out;
    if (total == 0)
        return out;
    for (const auto &[name, stats] : ops) {
        out[name] = static_cast<double>(stats.total_duration) /
            static_cast<double>(total);
    }
    return out;
}

std::vector<OpShareDelta>
mergeShares(const OpStatsMap &a, const OpStatsMap &b)
{
    const auto sa = shares(a);
    const auto sb = shares(b);
    std::map<std::string, OpShareDelta> merged;
    for (const auto &[name, share] : sa) {
        merged[name].name = name;
        merged[name].share_a = share;
    }
    for (const auto &[name, share] : sb) {
        merged[name].name = name;
        merged[name].share_b = share;
    }
    std::vector<OpShareDelta> out;
    out.reserve(merged.size());
    for (auto &[name, delta] : merged)
        out.push_back(std::move(delta));
    std::sort(out.begin(), out.end(),
              [](const OpShareDelta &x, const OpShareDelta &y) {
                  return std::max(x.share_a, x.share_b) >
                      std::max(y.share_a, y.share_b);
              });
    return out;
}

} // namespace

std::vector<OpShareDelta>
AnalysisComparison::movers(double threshold) const
{
    std::vector<OpShareDelta> out;
    for (const auto &delta : tpu_ops)
        if (std::fabs(delta.delta()) >= threshold)
            out.push_back(delta);
    for (const auto &delta : host_ops)
        if (std::fabs(delta.delta()) >= threshold)
            out.push_back(delta);
    std::sort(out.begin(), out.end(),
              [](const OpShareDelta &x, const OpShareDelta &y) {
                  return std::fabs(x.delta()) >
                      std::fabs(y.delta());
              });
    return out;
}

AnalysisComparison
compareAnalyses(const AnalysisResult &a, const AnalysisResult &b,
                std::string label_a, std::string label_b)
{
    AnalysisComparison comparison;
    comparison.label_a = std::move(label_a);
    comparison.label_b = std::move(label_b);
    comparison.phases_a = a.phases.size();
    comparison.phases_b = b.phases.size();

    const Phase *longest_a = a.longest();
    const Phase *longest_b = b.longest();
    static const OpStatsMap empty;
    const OpStatsMap &tpu_a =
        longest_a ? longest_a->tpu_ops : empty;
    const OpStatsMap &tpu_b =
        longest_b ? longest_b->tpu_ops : empty;
    const OpStatsMap &host_a =
        longest_a ? longest_a->host_ops : empty;
    const OpStatsMap &host_b =
        longest_b ? longest_b->host_ops : empty;

    comparison.tpu_ops = mergeShares(tpu_a, tpu_b);
    comparison.host_ops = mergeShares(host_a, host_b);

    const auto top_a = topOps(tpu_a, 1);
    const auto top_b = topOps(tpu_b, 1);
    comparison.same_top_tpu_op = !top_a.empty() &&
        !top_b.empty() && top_a[0].name == top_b[0].name;
    return comparison;
}

void
writeComparison(const AnalysisComparison &comparison,
                std::ostream &out, std::size_t top_n)
{
    out << "phases: " << comparison.label_a << "="
        << comparison.phases_a << "  " << comparison.label_b
        << "=" << comparison.phases_b << "\n";
    out << "top TPU operator consistent: "
        << (comparison.same_top_tpu_op ? "yes" : "no") << "\n";

    auto dump = [&](const char *title,
                    const std::vector<OpShareDelta> &deltas) {
        out << title << " (" << comparison.label_a << " -> "
            << comparison.label_b << "):\n";
        std::size_t shown = 0;
        for (const auto &delta : deltas) {
            if (shown++ >= top_n)
                break;
            out << "  " << padRight(delta.name, 30)
                << padLeft(formatDouble(100 * delta.share_a, 1),
                           7)
                << "% ->"
                << padLeft(formatDouble(100 * delta.share_b, 1),
                           7)
                << "%  ("
                << (delta.delta() >= 0 ? "+" : "")
                << formatDouble(100 * delta.delta(), 1)
                << " pp)\n";
        }
    };
    dump("TPU operators", comparison.tpu_ops);
    dump("host operators", comparison.host_ops);
}

} // namespace tpupoint

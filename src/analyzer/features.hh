/**
 * @file
 * Step feature extraction (Section IV-A, stage 1): "for each step,
 * we define dimensions in terms of TensorFlow operations, the
 * accumulated number of invocations, and total durations", with PCA
 * capping the representation at 100 dimensions.
 *
 * Features are stored as one flat row-major Matrix (one row per
 * step) rather than a vector of per-step vectors: the clustering
 * inner loops stride contiguous memory, and the fill pass maps
 * interned op ids straight to column indices without touching op
 * name strings.
 */

#ifndef TPUPOINT_ANALYZER_FEATURES_HH
#define TPUPOINT_ANALYZER_FEATURES_HH

#include <cstdint>
#include <string>
#include <vector>

#include "analyzer/step_table.hh"
#include "core/math.hh"

namespace tpupoint {

/** Feature-extraction options. */
struct FeatureOptions
{
    bool include_counts = true;     ///< Invocation-count dims.
    bool include_durations = true;  ///< Total-duration dims.
    bool normalize = true;          ///< Scale each dim to [0, 1].
    std::size_t max_dimensions = 100; ///< PCA cap (the paper's 100).
    std::uint64_t pca_seed = 0x50434121; // "PCA!"
};

/**
 * The per-step feature matrix the clustering algorithms consume.
 */
class FeatureMatrix
{
  public:
    /** Extract features for every step of @p table. */
    static FeatureMatrix build(const StepTable &table,
                               const FeatureOptions &options = {});

    /** Flat row-major storage: one row per step, table order. */
    const Matrix &matrix() const { return data; }

    /**
     * Row-oriented compatibility view (copies the matrix rows out;
     * prefer matrix() on hot paths).
     */
    std::vector<FeatureVector> rows() const;

    /** Dimension labels before any PCA reduction. */
    const std::vector<std::string> &rawDimensions() const
    {
        return labels;
    }

    /** True when PCA reduced the raw dimensions. */
    bool pcaApplied() const { return reduced; }

    /** Final dimensionality. */
    std::size_t dimensions() const
    {
        return data.rows() == 0 ? 0 : data.cols();
    }

  private:
    Matrix data;
    std::vector<std::string> labels;
    bool reduced = false;
};

} // namespace tpupoint

#endif // TPUPOINT_ANALYZER_FEATURES_HH

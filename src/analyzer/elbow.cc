#include "analyzer/elbow.hh"

#include <cmath>

#include "core/logging.hh"

namespace tpupoint {

std::size_t
elbowIndex(const std::vector<double> &x, const std::vector<double> &y)
{
    if (x.size() != y.size())
        panic("elbowIndex: mismatched curve arrays");
    const std::size_t n = x.size();
    if (n < 3)
        return 0;

    // Normalize both axes so the chord distance is scale-free.
    const double x_span = x.back() - x.front();
    double y_min = y.front(), y_max = y.front();
    for (const double v : y) {
        y_min = std::min(y_min, v);
        y_max = std::max(y_max, v);
    }
    const double y_span = y_max - y_min;
    if (x_span == 0.0)
        return 0;

    auto nx = [&](std::size_t i) {
        return (x[i] - x.front()) / x_span;
    };
    auto ny = [&](std::size_t i) {
        return y_span > 0 ? (y[i] - y_min) / y_span : 0.0;
    };

    // Chord from (nx0, ny0) to (nx_last, ny_last).
    const double x0 = nx(0), y0 = ny(0);
    const double x1 = nx(n - 1), y1 = ny(n - 1);
    const double dx = x1 - x0, dy = y1 - y0;
    const double len = std::sqrt(dx * dx + dy * dy);
    if (len == 0.0)
        return 0;

    std::size_t best = 0;
    double best_dist = -1.0;
    for (std::size_t i = 1; i + 1 < n; ++i) {
        const double d = std::fabs(dy * (nx(i) - x0) -
                                   dx * (ny(i) - y0)) / len;
        if (d > best_dist) {
            best_dist = d;
            best = i;
        }
    }
    return best;
}

} // namespace tpupoint

/**
 * @file
 * The pluggable phase-detector interface behind
 * AnalysisSession::finalize(). Each of TPUPoint-Analyzer's
 * algorithms (k-means, DBSCAN, OLS — Section IV-A) is one
 * registered PhaseDetector; finalize() builds the step table and
 * feature matrix once and hands the shared, read-only views to
 * every requested detector, instead of each algorithm re-deriving
 * its own inputs.
 *
 * Detectors must be pure functions of (table, features, options):
 * any randomness is seeded from options.seed, and the optional
 * ThreadPool only schedules — a detector must produce bit-identical
 * output whether it runs serially, on an inline pool, or fanned out
 * across workers.
 */

#ifndef TPUPOINT_ANALYZER_DETECTOR_HH
#define TPUPOINT_ANALYZER_DETECTOR_HH

#include <memory>
#include <vector>

#include "analyzer/analyzer.hh"

namespace tpupoint {

class ThreadPool;

/** One phase-detection algorithm, pluggable into finalize(). */
class PhaseDetector
{
  public:
    virtual ~PhaseDetector() = default;

    /** The algorithm this detector implements. */
    virtual PhaseAlgorithm algorithm() const = 0;

    /** Printable name (matches phaseAlgorithmName()). */
    virtual const char *name() const = 0;

    /**
     * True when detect() reads the step-feature matrix. finalize()
     * builds the matrix once iff any requested detector needs it.
     */
    virtual bool needsFeatures() const = 0;

    /**
     * Run phase detection over the aggregated table.
     *
     * @param table Aggregated per-step statistics (read-only,
     *     shared across concurrently running detectors).
     * @param features The shared feature matrix; non-null whenever
     *     needsFeatures() is true, may be null otherwise.
     * @param options Analyzer configuration (thresholds, sweep
     *     ranges, seed).
     * @param pool Optional pool for fanning out internal sweeps;
     *     never required for correctness and must not change the
     *     result.
     */
    virtual DetectorResult detect(const StepTable &table,
                                  const FeatureMatrix *features,
                                  const AnalyzerOptions &options,
                                  ThreadPool *pool) const = 0;
};

/**
 * Look up the registered detector for @p algorithm. The three
 * builtin algorithms are always registered; throws (fatal) for an
 * algorithm nothing has registered. The returned reference stays
 * valid until a replacement is registered for the same algorithm.
 */
const PhaseDetector &detectorFor(PhaseAlgorithm algorithm);

/** Every registered detector, in registration order. */
std::vector<const PhaseDetector *> registeredDetectors();

/**
 * Register @p detector, replacing any existing entry for the same
 * algorithm (tests use this to interpose instrumented detectors).
 * Registration is mutex-guarded, but replacing a detector while a
 * finalize() that uses it is in flight is the caller's race.
 */
void registerPhaseDetector(std::unique_ptr<PhaseDetector> detector);

/**
 * A fresh instance of the builtin detector for @p algorithm —
 * what the registry starts with. Lets a test that interposed a
 * replacement restore the builtin afterwards:
 * registerPhaseDetector(makeBuiltinDetector(algorithm)).
 */
std::unique_ptr<PhaseDetector> makeBuiltinDetector(
    PhaseAlgorithm algorithm);

} // namespace tpupoint

#endif // TPUPOINT_ANALYZER_DETECTOR_HH

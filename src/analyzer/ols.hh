/**
 * @file
 * The Online Linear Scan (OLS) phase detector — TPUPoint's
 * lower-overhead alternative to k-means/DBSCAN (Section IV-A). OLS
 * runs *during* recording: it only ever holds the current step, the
 * previous step, and the step before that, comparing neighbours
 * with Equation 1 and growing a segment while the similarity stays
 * above the threshold (70% by default). Recurring segments with the
 * same operator signature (e.g. every eval pass) then aggregate
 * into a single phase — the paper notes all three algorithms
 * "aggregate the same set of phases into a single phase".
 */

#ifndef TPUPOINT_ANALYZER_OLS_HH
#define TPUPOINT_ANALYZER_OLS_HH

#include <string>
#include <vector>

#include "proto/record.hh"

namespace tpupoint {

/** OLS options. */
struct OlsOptions
{
    /** Equation 1 threshold; neighbours at or above it merge. */
    double similarity_threshold = 0.70;
};

/**
 * Streaming phase detection over the per-step record stream.
 */
class OnlineLinearScan
{
  public:
    /** A run of consecutive similar steps. */
    struct Span
    {
        StepId first_step = 0;
        StepId last_step = 0;
        std::size_t steps = 0;
        SimTime duration = 0; ///< Sum of member step spans.
    };

    /** A phase: one or more recurring spans with one signature. */
    struct Group
    {
        std::vector<Span> spans;
        std::vector<std::string> signature; ///< Sorted op labels.
        std::size_t steps = 0;
        SimTime duration = 0;
    };

    explicit OnlineLinearScan(const OlsOptions &options = {});

    /** Feed the next step (ascending step order). */
    void addStep(const StepStats &step);

    /** Close the trailing segment and aggregate phases. */
    void finish();

    /** Raw consecutive segments, in execution order. */
    const std::vector<Span> &spans() const;

    /** Aggregated phases (recurring segments merged). */
    const std::vector<Group> &phases() const;

    /** Peak number of step records held at any point (the OLS
     * memory footprint — contrast with k-means/DBSCAN which hold
     * every step). */
    std::size_t peakStepsHeld() const { return peak_held; }

    /**
     * Equation 1: |events(a) ∩ events(b)| / min(|events(a)|,
     * |events(b)|), where a step's event set is its distinct
     * operator labels.
     */
    static double stepSimilarity(const StepStats &a,
                                 const StepStats &b);

    /** Equation 1 over pre-extracted sorted label sets. */
    static double setSimilarity(const std::vector<std::string> &a,
                                const std::vector<std::string> &b);

  private:
    /** Close the open segment and fold it into its phase group. */
    void closeSegment();

    OlsOptions opts;
    std::vector<Span> segments;
    std::vector<Group> groups;
    Span current;
    std::vector<std::string> current_signature;
    std::vector<std::string> previous_set;    ///< Step i-1.
    std::vector<std::string> preprevious_set; ///< Step i-2.
    bool have_current = false;
    bool finished = false;
    std::size_t peak_held = 0;
};

} // namespace tpupoint

#endif // TPUPOINT_ANALYZER_OLS_HH

/**
 * @file
 * The Online Linear Scan (OLS) phase detector — TPUPoint's
 * lower-overhead alternative to k-means/DBSCAN (Section IV-A). OLS
 * runs *during* recording: it only ever holds the current step, the
 * previous step, and the step before that, comparing neighbours
 * with Equation 1 and growing a segment while the similarity stays
 * above the threshold (70% by default). Recurring segments with the
 * same operator signature (e.g. every eval pass) then aggregate
 * into a single phase — the paper notes all three algorithms
 * "aggregate the same set of phases into a single phase".
 *
 * Internally steps compare as sorted sets of integer operator keys
 * (interned op id * 2 + device side) rather than label strings:
 * Equation 1 only depends on set cardinalities, which the
 * label <-> key bijection preserves, so results are identical while
 * the scan never touches operator names. Signature label strings
 * are materialized only when a new phase group is created.
 */

#ifndef TPUPOINT_ANALYZER_OLS_HH
#define TPUPOINT_ANALYZER_OLS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "proto/columnar.hh"
#include "proto/record.hh"

namespace tpupoint {

/** OLS options. */
struct OlsOptions
{
    /** Equation 1 threshold; neighbours at or above it merge. */
    double similarity_threshold = 0.70;
};

/**
 * Streaming phase detection over the per-step record stream.
 */
class OnlineLinearScan
{
  public:
    /** A run of consecutive similar steps. */
    struct Span
    {
        StepId first_step = 0;
        StepId last_step = 0;
        std::size_t steps = 0;
        SimTime duration = 0; ///< Sum of member step spans.
    };

    /** A phase: one or more recurring spans with one signature. */
    struct Group
    {
        std::vector<Span> spans;
        std::vector<std::string> signature; ///< Sorted op labels.
        std::size_t steps = 0;
        SimTime duration = 0;
    };

    explicit OnlineLinearScan(const OlsOptions &options = {});

    /** Feed the next step (ascending step order). */
    void addStep(const StepStats &step);

    /**
     * Columnar fast path: feed the next step as its wall span plus
     * its sorted operator-key set (see opKeys()). No strings are
     * touched until a new phase group forms.
     */
    void addStep(StepId step, SimTime span,
                 std::vector<std::uint64_t> event_keys);

    /** Close the trailing segment and aggregate phases. */
    void finish();

    /** Compact per-phase aggregates for a mid-scan snapshot. */
    struct PhasePeek
    {
        StepId first_step = 0;
        StepId last_step = 0;
        std::size_t steps = 0;
        SimTime duration = 0;
        std::size_t spans = 0; ///< Recurrences of the phase.
    };

    /**
     * Non-destructive view of the phases as they stand mid-scan:
     * the closed groups, with the open segment folded into its
     * matching group (or appended as its own phase) exactly as
     * closeSegment() would on the next boundary. O(groups), no
     * strings, usable any time before finish(); after finish() it
     * reports the final groups.
     */
    std::vector<PhasePeek> peekPhases() const;

    /** Raw consecutive segments, in execution order. */
    const std::vector<Span> &spans() const;

    /** Aggregated phases (recurring segments merged). */
    const std::vector<Group> &phases() const;

    /** Peak number of step records held at any point (the OLS
     * memory footprint — contrast with k-means/DBSCAN which hold
     * every step). */
    std::size_t peakStepsHeld() const { return peak_held; }

    /**
     * Equation 1: |events(a) ∩ events(b)| / min(|events(a)|,
     * |events(b)|), where a step's event set is its distinct
     * operator labels.
     */
    static double stepSimilarity(const StepStats &a,
                                 const StepStats &b);

    /** Equation 1 over pre-extracted sorted label sets. */
    static double setSimilarity(const std::vector<std::string> &a,
                                const std::vector<std::string> &b);

    /** Equation 1 over sorted operator-key sets. */
    static double
    keySimilarity(const std::vector<std::uint64_t> &a,
                  const std::vector<std::uint64_t> &b);

    /**
     * Build the sorted operator-key set of one columnar step row:
     * host entries map to even keys (id * 2), TPU entries to odd
     * (id * 2 + 1), linearly merged in ascending key order (both
     * input runs are id-sorted).
     */
    static std::vector<std::uint64_t> opKeys(OpStatsSpan host,
                                             OpStatsSpan tpu);

  private:
    /** Close the open segment and fold it into its phase group. */
    void closeSegment();

    OlsOptions opts;
    std::vector<Span> segments;
    std::vector<Group> groups;
    /** Per-group key signatures, parallel to groups. */
    std::vector<std::vector<std::uint64_t>> group_keys;
    Span current;
    std::vector<std::uint64_t> current_signature;
    std::vector<std::uint64_t> previous_set;    ///< Step i-1.
    std::vector<std::uint64_t> preprevious_set; ///< Step i-2.
    bool have_current = false;
    bool finished = false;
    std::size_t peak_held = 0;
};

} // namespace tpupoint

#endif // TPUPOINT_ANALYZER_OLS_HH

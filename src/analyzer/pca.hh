/**
 * @file
 * Principal component analysis for dimensional reduction of step
 * feature vectors (Section IV-A uses PCA to keep at most 100
 * distinct dimensions). Components are extracted by power iteration
 * with deflation — no external linear-algebra dependency.
 */

#ifndef TPUPOINT_ANALYZER_PCA_HH
#define TPUPOINT_ANALYZER_PCA_HH

#include <cstddef>
#include <vector>

#include "core/math.hh"
#include "core/rng.hh"

namespace tpupoint {

/** The result of fitting PCA to a data set. */
struct PcaModel
{
    FeatureVector mean;                   ///< Data mean.
    std::vector<FeatureVector> components; ///< Unit-norm, ordered.
    std::vector<double> eigenvalues;       ///< Explained variance.

    /** Project one point into component space. */
    FeatureVector project(const FeatureVector &point) const;

    /** Project every row. */
    std::vector<FeatureVector>
    projectAll(const std::vector<FeatureVector> &points) const;

    /**
     * Project every row of a row-major observation matrix (the hot
     * path: contiguous rows in, contiguous rows out). Bit-identical
     * to the vector-of-rows overload.
     */
    Matrix projectAll(const Matrix &points) const;
};

/**
 * Fit PCA and keep the top @p num_components components.
 *
 * @param points Observations (rows share one dimension).
 * @param num_components Components to extract (capped at the data
 *     dimension).
 * @param rng Seed source for power-iteration start vectors.
 * @param iterations Power iterations per component.
 */
PcaModel fitPca(const std::vector<FeatureVector> &points,
                std::size_t num_components, Rng &rng,
                int iterations = 60);

/**
 * Row-major overload; the vector-of-rows entry point packs its data
 * and delegates here, so both produce bit-identical models.
 */
PcaModel fitPca(const Matrix &points, std::size_t num_components,
                Rng &rng, int iterations = 60);

} // namespace tpupoint

#endif // TPUPOINT_ANALYZER_PCA_HH

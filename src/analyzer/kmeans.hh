/**
 * @file
 * k-means clustering, implemented the way TPUPoint-Analyzer (and
 * SimPoint before it) uses it: cluster step feature vectors for
 * k = 1..15, compute the sum of squared distances to centroids per
 * k, and pick k with the elbow method (Section IV-A).
 */

#ifndef TPUPOINT_ANALYZER_KMEANS_HH
#define TPUPOINT_ANALYZER_KMEANS_HH

#include <cstdint>
#include <vector>

#include "core/math.hh"
#include "core/rng.hh"

namespace tpupoint {

class ThreadPool;

/** One k-means clustering. */
struct KMeansResult
{
    int k = 0;
    std::vector<int> labels;              ///< Per-point cluster id.
    std::vector<FeatureVector> centroids;
    double ssd = 0.0;  ///< Sum of squared distances to centroids.
    int iterations = 0;
};

/**
 * Lloyd's algorithm with k-means++ seeding.
 *
 * @param points Observations.
 * @param k Clusters; clamped to the number of points.
 * @param rng Seeding source (deterministic given a seed).
 * @param max_iterations Lloyd iteration cap.
 */
KMeansResult kMeansCluster(const std::vector<FeatureVector> &points,
                           int k, Rng &rng,
                           int max_iterations = 100);

/**
 * Row-major overload (the hot path: assignment distances stride
 * contiguous rows). The vector-of-rows entry point packs its data
 * and delegates here, so both are bit-identical.
 */
KMeansResult kMeansCluster(const Matrix &points, int k, Rng &rng,
                           int max_iterations = 100);

/** The k = k_min..k_max sweep plus the elbow choice (Figure 4). */
struct KMeansSweep
{
    std::vector<int> k_values;
    std::vector<double> ssd_curve;
    int elbow_k = 0;
    KMeansResult best; ///< The clustering at elbow_k.
};

/**
 * Run the full sweep of Section IV-A stages 2-3.
 *
 * Every k in the sweep draws from its own Rng(seed + k) stream and
 * writes a preassigned result slot, so when @p pool is given the
 * per-k clusterings fan out across its workers and the sweep stays
 * bit-identical to the serial path (pool == nullptr or inline).
 */
KMeansSweep kMeansSweep(const std::vector<FeatureVector> &points,
                        int k_min, int k_max,
                        std::uint64_t seed = 0x6b6d65616e73ULL,
                        ThreadPool *pool = nullptr);

/** Row-major overload of the sweep (see kMeansCluster). */
KMeansSweep kMeansSweep(const Matrix &points, int k_min, int k_max,
                        std::uint64_t seed = 0x6b6d65616e73ULL,
                        ThreadPool *pool = nullptr);

} // namespace tpupoint

#endif // TPUPOINT_ANALYZER_KMEANS_HH

#include "analyzer/step_table.hh"

#include <algorithm>
#include <map>
#include <set>

#include "core/logging.hh"

namespace tpupoint {

void
StepTableBuilder::ingest(const StepStats &step)
{
    // A step can span profile windows; merge duplicates.
    auto [it, inserted] = merged.try_emplace(step.step, step);
    if (!inserted)
        it->second.merge(step);
    for (const auto &[after, through] : replay_ranges) {
        if (step.step > after && step.step <= through) {
            it->second.replayed = true;
            break;
        }
    }
}

void
StepTableBuilder::ingest(const ProfileRecord &record)
{
    for (const auto &step : record.steps)
        ingest(step);
    ++records_seen;
}

std::size_t
StepTableBuilder::dropAfter(StepId after, SimTime *dropped_span)
{
    auto first = merged.upper_bound(after);
    std::size_t dropped = 0;
    for (auto it = first; it != merged.end(); ++it) {
        ++dropped;
        if (dropped_span)
            *dropped_span += it->second.span();
    }
    merged.erase(first, merged.end());
    return dropped;
}

void
StepTableBuilder::markReplayed(StepId after, StepId through)
{
    if (through <= after)
        return; // a restart from the very preemption point
    replay_ranges.emplace_back(after, through);
}

StepTable
StepTableBuilder::build() &&
{
    StepTable table;
    table.rows.reserve(merged.size());
    for (auto &[id, stats] : merged)
        table.rows.push_back(std::move(stats));
    merged.clear();
    return table;
}

StepTable
StepTable::fromRecords(const std::vector<ProfileRecord> &records)
{
    StepTableBuilder builder;
    for (const auto &record : records)
        builder.ingest(record);
    return std::move(builder).build();
}

const StepStats &
StepTable::at(std::size_t index) const
{
    if (index >= rows.size())
        panic("StepTable::at: index out of range");
    return rows[index];
}

SimTime
StepTable::totalDuration() const
{
    SimTime total = 0;
    for (const auto &row : rows)
        total += row.span();
    return total;
}

std::vector<std::string>
StepTable::opUniverse() const
{
    std::set<std::string> labels;
    for (const auto &row : rows) {
        for (const auto &[name, stats] : row.host_ops)
            labels.insert("host:" + name);
        for (const auto &[name, stats] : row.tpu_ops)
            labels.insert("tpu:" + name);
    }
    return {labels.begin(), labels.end()};
}

} // namespace tpupoint

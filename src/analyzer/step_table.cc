#include "analyzer/step_table.hh"

#include <algorithm>
#include <set>

#include "core/logging.hh"

namespace tpupoint {

namespace {

/**
 * Merge the id-sorted run @p src into the id-sorted row @p dst,
 * accumulating stats for shared ids, via @p scratch (linear merge;
 * scratch capacity is retained across calls).
 */
void
mergeOpRuns(std::vector<ColumnarOpStats> &dst, OpStatsSpan src,
            std::vector<ColumnarOpStats> &scratch)
{
    if (src.empty())
        return;
    if (dst.empty()) {
        dst.assign(src.begin(), src.end());
        return;
    }
    scratch.clear();
    std::size_t i = 0, j = 0;
    while (i < dst.size() && j < src.size()) {
        if (dst[i].op == src[j].op) {
            ColumnarOpStats merged = dst[i];
            merged.count += src[j].count;
            merged.total_duration += src[j].total_duration;
            scratch.push_back(merged);
            ++i;
            ++j;
        } else if (dst[i].op < src[j].op) {
            scratch.push_back(dst[i]);
            ++i;
        } else {
            scratch.push_back(src[j]);
            ++j;
        }
    }
    for (; i < dst.size(); ++i)
        scratch.push_back(dst[i]);
    for (; j < src.size(); ++j)
        scratch.push_back(src[j]);
    dst.assign(scratch.begin(), scratch.end());
}

/** Intern an OpStatsMap into an id-sorted entry run. */
void
internOpMap(const OpStatsMap &ops,
            std::vector<ColumnarOpStats> &out)
{
    out.clear();
    StringInterner &interner = StringInterner::global();
    for (const auto &[name, stats] : ops)
        out.push_back(ColumnarOpStats{interner.intern(name),
                                      stats.count,
                                      stats.total_duration});
    std::sort(out.begin(), out.end(),
              [](const ColumnarOpStats &a,
                 const ColumnarOpStats &b) { return a.op < b.op; });
}

/** Materialize an id-sorted entry run back into a name map. */
OpStatsMap
materializeOpMap(OpStatsSpan entries)
{
    OpStatsMap out;
    const StringInterner &interner = StringInterner::global();
    for (const ColumnarOpStats &entry : entries) {
        OpStats stats;
        stats.count = entry.count;
        stats.total_duration = entry.total_duration;
        out.emplace(std::string(interner.view(entry.op)), stats);
    }
    return out;
}

} // namespace

std::size_t
StepTableBuilder::rowFor(StepId step, SimTime begin, SimTime end)
{
    // Profiles arrive in step order, so appending is the common
    // case; the binary-search path handles out-of-order windows
    // and re-ingested (replayed) steps.
    if (ids.empty() || step > ids.back()) {
        ids.push_back(step);
        begins.push_back(begin);
        ends.push_back(end);
        busys.push_back(0);
        idles.push_back(0);
        mxus.push_back(0);
        replays.push_back(0);
        host_rows.emplace_back();
        tpu_rows.emplace_back();
        return ids.size() - 1;
    }
    const auto it =
        std::lower_bound(ids.begin(), ids.end(), step);
    const auto row =
        static_cast<std::size_t>(it - ids.begin());
    if (it != ids.end() && *it == step) {
        // Existing row: widen the event envelope.
        begins[row] = std::min(begins[row], begin);
        ends[row] = std::max(ends[row], end);
        return row;
    }
    const auto offset = static_cast<std::ptrdiff_t>(row);
    ids.insert(ids.begin() + offset, step);
    begins.insert(begins.begin() + offset, begin);
    ends.insert(ends.begin() + offset, end);
    busys.insert(busys.begin() + offset, 0);
    idles.insert(idles.begin() + offset, 0);
    mxus.insert(mxus.begin() + offset, 0);
    replays.insert(replays.begin() + offset, 0);
    // Note: explicit empty-vector values; a braced `{}` here would
    // pick the initializer-list overload and insert nothing.
    host_rows.insert(host_rows.begin() + offset,
                     std::vector<ColumnarOpStats>());
    tpu_rows.insert(tpu_rows.begin() + offset,
                    std::vector<ColumnarOpStats>());
    return row;
}

void
StepTableBuilder::foldStep(StepId step, SimTime begin, SimTime end,
                           SimTime busy, SimTime idle, SimTime mxu,
                           OpStatsSpan host, OpStatsSpan tpu,
                           bool replayed_flag)
{
    const std::size_t row = rowFor(step, begin, end);
    touched_floor = std::min(touched_floor, row);
    busys[row] += busy;
    idles[row] += idle;
    mxus[row] += mxu;
    if (replayed_flag)
        replays[row] = 1;
    mergeOpRuns(host_rows[row], host, scratch);
    mergeOpRuns(tpu_rows[row], tpu, scratch);
    for (const auto &[after, through] : replay_ranges) {
        if (step > after && step <= through) {
            replays[row] = 1;
            break;
        }
    }
}

void
StepTableBuilder::ingest(const StepStats &step)
{
    // Convert the name maps once, then fold id-to-id like the
    // columnar path. The scratch run must not alias the merge
    // scratch, so convert into a local.
    std::vector<ColumnarOpStats> host_run, tpu_run;
    internOpMap(step.host_ops, host_run);
    internOpMap(step.tpu_ops, tpu_run);
    foldStep(step.step, step.begin, step.end, step.tpu_busy,
             step.tpu_idle, step.mxu_active,
             OpStatsSpan(host_run), OpStatsSpan(tpu_run),
             step.replayed);
}

void
StepTableBuilder::ingest(const ProfileRecord &record)
{
    for (const auto &step : record.steps)
        ingest(step);
    ++records_seen;
}

void
StepTableBuilder::ingest(const ColumnarRecord &record)
{
    for (std::size_t i = 0; i < record.stepCount(); ++i) {
        foldStep(record.step[i], record.begin[i], record.end[i],
                 record.tpu_busy[i], record.tpu_idle[i],
                 record.mxu_active[i], record.hostOps(i),
                 record.tpuOps(i), /*replayed_flag=*/false);
    }
    ++records_seen;
}

std::size_t
StepTableBuilder::dropAfter(StepId after, SimTime *dropped_span)
{
    const auto it =
        std::upper_bound(ids.begin(), ids.end(), after);
    const auto first =
        static_cast<std::size_t>(it - ids.begin());
    const std::size_t dropped = ids.size() - first;
    if (dropped > 0)
        touched_floor = std::min(touched_floor, first);
    if (dropped_span) {
        for (std::size_t row = first; row < ids.size(); ++row) {
            *dropped_span +=
                ends[row] > begins[row] ? ends[row] - begins[row]
                                        : 0;
        }
    }
    ids.resize(first);
    begins.resize(first);
    ends.resize(first);
    busys.resize(first);
    idles.resize(first);
    mxus.resize(first);
    replays.resize(first);
    host_rows.resize(first);
    tpu_rows.resize(first);
    return dropped;
}

void
StepTableBuilder::markReplayed(StepId after, StepId through)
{
    if (through <= after)
        return; // a restart from the very preemption point
    replay_ranges.emplace_back(after, through);
}

StepTable
StepTableBuilder::build() &&
{
    StepTable table;
    table.ids = std::move(ids);
    table.begins = std::move(begins);
    table.ends = std::move(ends);
    table.busys = std::move(busys);
    table.idles = std::move(idles);
    table.mxus = std::move(mxus);
    table.replays = std::move(replays);

    // Flatten the per-row op runs into CSR.
    const std::size_t rows = table.ids.size();
    std::size_t host_total = 0, tpu_total = 0;
    for (std::size_t i = 0; i < rows; ++i) {
        host_total += host_rows[i].size();
        tpu_total += tpu_rows[i].size();
    }
    table.host_offsets.reserve(rows + 1);
    table.tpu_offsets.reserve(rows + 1);
    table.host_entries.reserve(host_total);
    table.tpu_entries.reserve(tpu_total);
    table.host_offsets.push_back(0);
    table.tpu_offsets.push_back(0);
    for (std::size_t i = 0; i < rows; ++i) {
        table.host_entries.insert(table.host_entries.end(),
                                  host_rows[i].begin(),
                                  host_rows[i].end());
        table.tpu_entries.insert(table.tpu_entries.end(),
                                 tpu_rows[i].begin(),
                                 tpu_rows[i].end());
        table.host_offsets.push_back(
            static_cast<std::uint32_t>(table.host_entries.size()));
        table.tpu_offsets.push_back(
            static_cast<std::uint32_t>(table.tpu_entries.size()));
    }
    host_rows.clear();
    tpu_rows.clear();
    return table;
}

StepTable
StepTable::fromRecords(const std::vector<ProfileRecord> &records)
{
    StepTableBuilder builder;
    for (const auto &record : records)
        builder.ingest(record);
    return std::move(builder).build();
}

StepStats
StepTable::at(std::size_t index) const
{
    if (index >= ids.size())
        panic("StepTable::at: index out of range");
    StepStats step;
    step.step = ids[index];
    step.begin = begins[index];
    step.end = ends[index];
    step.tpu_busy = busys[index];
    step.tpu_idle = idles[index];
    step.mxu_active = mxus[index];
    step.replayed = replays[index] != 0;
    step.host_ops = materializeOpMap(hostOps(index));
    step.tpu_ops = materializeOpMap(tpuOps(index));
    return step;
}

std::vector<StepStats>
StepTable::steps() const
{
    std::vector<StepStats> out;
    out.reserve(ids.size());
    for (std::size_t i = 0; i < ids.size(); ++i)
        out.push_back(at(i));
    return out;
}

SimTime
StepTable::totalDuration() const
{
    SimTime total = 0;
    for (std::size_t i = 0; i < ids.size(); ++i)
        total += span(i);
    return total;
}

std::vector<std::string>
StepTable::opUniverse() const
{
    std::set<std::uint32_t> host_ids, tpu_ids;
    for (const auto &entry : host_entries)
        host_ids.insert(entry.op);
    for (const auto &entry : tpu_entries)
        tpu_ids.insert(entry.op);

    const StringInterner &interner = StringInterner::global();
    std::vector<std::string> labels;
    labels.reserve(host_ids.size() + tpu_ids.size());
    for (const std::uint32_t id : host_ids)
        labels.push_back("host:" +
                         std::string(interner.view(id)));
    for (const std::uint32_t id : tpu_ids)
        labels.push_back("tpu:" + std::string(interner.view(id)));
    std::sort(labels.begin(), labels.end());
    return labels;
}

} // namespace tpupoint

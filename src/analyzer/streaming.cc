#include "analyzer/streaming.hh"

#include <algorithm>
#include <map>
#include <mutex>
#include <utility>

#include "analyzer/detector.hh"
#include "core/logging.hh"
#include "core/rng.hh"

namespace tpupoint {

namespace {

/** Top-3 coverage over snapshot phases: 3 largest durations /
 * total duration (the streaming analogue of topPhaseCoverage). */
double
snapshotCoverage(const std::vector<StreamingPhase> &phases)
{
    SimTime total = 0;
    std::vector<SimTime> durations;
    durations.reserve(phases.size());
    for (const StreamingPhase &phase : phases) {
        total += phase.duration;
        durations.push_back(phase.duration);
    }
    if (total == 0)
        return 0.0;
    std::sort(durations.begin(), durations.end(),
              std::greater<SimTime>());
    SimTime top = 0;
    for (std::size_t i = 0; i < durations.size() && i < 3; ++i)
        top += durations[i];
    return static_cast<double>(top) / static_cast<double>(total);
}

/**
 * Truly-online OLS. The batch OlsDetector already folds one step
 * at a time, so the streaming variant simply keeps the scan alive
 * between observeSteps() calls: O(1) amortized per step (one
 * Equation 1 merge against the previous signature, one group match
 * per boundary). finalize() finishes the very same scan the batch
 * path would have run — identical fold sequence, identical spans,
 * groups and phases, bit for bit.
 */
class StreamingOls final : public StreamingDetector
{
  public:
    explicit StreamingOls(const AnalyzerOptions &options)
        : threshold(options.ols_threshold),
          ols(OlsOptions{options.ols_threshold})
    {
    }

    PhaseAlgorithm algorithm() const override
    {
        return PhaseAlgorithm::OnlineLinearScan;
    }

    const char *name() const override
    {
        return phaseAlgorithmName(
            PhaseAlgorithm::OnlineLinearScan);
    }

    void
    observeSteps(const std::vector<StepDelta> &deltas) override
    {
        for (const StepDelta &delta : deltas) {
            ols.addStep(delta.step, delta.span,
                        OnlineLinearScan::opKeys(delta.host,
                                                 delta.tpu));
            ++observed;
        }
    }

    void
    reset() override
    {
        ols = OnlineLinearScan(OlsOptions{threshold});
        observed = 0;
    }

    StreamingSnapshot
    snapshot() const override
    {
        StreamingSnapshot out;
        out.algorithm = PhaseAlgorithm::OnlineLinearScan;
        out.steps_observed = observed;
        out.exact = true;
        out.sampled = false;
        const auto peeks = ols.peekPhases();
        out.phases.reserve(peeks.size());
        int id = 0;
        for (const auto &peek : peeks) {
            StreamingPhase phase;
            phase.id = id++;
            phase.first_step = peek.first_step;
            phase.last_step = peek.last_step;
            phase.steps = peek.steps;
            phase.duration = peek.duration;
            out.phases.push_back(phase);
        }
        out.top3_coverage = snapshotCoverage(out.phases);
        return out;
    }

    DetectorResult
    finalize(const StepTable &table, const FeatureMatrix *,
             const AnalyzerOptions &, ThreadPool *) override
    {
        // Defensive top-up for standalone use: the session feeds
        // every row (settle_all) before building the table, so
        // this loop is normally empty.
        for (std::size_t i = observed; i < table.size(); ++i) {
            ols.addStep(table.stepId(i), table.span(i),
                        OnlineLinearScan::opKeys(table.hostOps(i),
                                                 table.tpuOps(i)));
            ++observed;
        }
        ols.finish();
        DetectorResult out;
        out.algorithm = PhaseAlgorithm::OnlineLinearScan;
        out.ols_spans = ols.spans();
        out.ols_groups = ols.phases();
        out.phases = phasesFromGroups(table, out.ols_groups);
        out.top3_coverage = topPhaseCoverage(out.phases, 3);
        return out;
    }

  private:
    double threshold;
    OnlineLinearScan ols;
    std::uint64_t observed = 0;
};

/**
 * Mini-batch k-means over a deterministic reservoir sample.
 * observeSteps() maintains Algorithm R with the per-index decision
 * drawn from SplitMix64(seed ^ index), so the reservoir is a pure
 * function of (seed, settled prefix length) — any chunking of the
 * same prefix lands on the same sample. snapshot() clusters the
 * sample (dense matrix over the ops present in it, normalized by
 * the per-dimension maxima over *all* observed steps, no PCA) with
 * the batch sweep machinery, so its cost is bounded by the
 * reservoir capacity, never the trace. finalize() delegates to the
 * batch detector for bit-identical final output.
 */
class StreamingKMeans final : public StreamingDetector
{
  public:
    explicit StreamingKMeans(const AnalyzerOptions &options)
        : opts(options),
          capacity(std::max<std::size_t>(
              1, options.streaming_reservoir))
    {
    }

    PhaseAlgorithm algorithm() const override
    {
        return PhaseAlgorithm::KMeans;
    }

    const char *name() const override
    {
        return phaseAlgorithmName(PhaseAlgorithm::KMeans);
    }

    void
    observeSteps(const std::vector<StepDelta> &deltas) override
    {
        for (const StepDelta &delta : deltas) {
            foldMaxima(delta.host, /*side=*/0);
            foldMaxima(delta.tpu, /*side=*/1);

            const std::uint64_t index = items_seen++;
            if (sample.size() < capacity) {
                sample.push_back(copyRow(delta));
                continue;
            }
            // Algorithm R: replace a random slot with probability
            // capacity / (index + 1). The draw depends only on
            // (seed, index), never on arrival pattern.
            SplitMix64 mixer(opts.seed ^ (index + 1));
            const std::uint64_t j = mixer.next() % (index + 1);
            if (j < capacity)
                sample[static_cast<std::size_t>(j)] =
                    copyRow(delta);
        }
    }

    void
    reset() override
    {
        sample.clear();
        maxima.clear();
        items_seen = 0;
    }

    StreamingSnapshot
    snapshot() const override
    {
        StreamingSnapshot out;
        out.algorithm = PhaseAlgorithm::KMeans;
        out.steps_observed = items_seen;
        out.exact = false;
        out.sampled = true;
        if (sample.empty())
            return out;

        // Canonical row order: the reservoir holds slots in
        // replacement order; sort by step so the matrix (and the
        // labels it yields) depend only on the sample *contents*.
        std::vector<const SampleRow *> rows;
        rows.reserve(sample.size());
        for (const SampleRow &row : sample)
            rows.push_back(&row);
        std::sort(rows.begin(), rows.end(),
                  [](const SampleRow *a, const SampleRow *b) {
                      return a->step < b->step;
                  });

        const std::vector<int> labels = clusterSample(rows);

        // Aggregate the labelled sample rows into phases, cluster
        // ids ascending (empty clusters skipped).
        std::map<int, StreamingPhase> by_label;
        for (std::size_t r = 0; r < rows.size(); ++r) {
            const int label = labels[r];
            auto [it, fresh] =
                by_label.try_emplace(label, StreamingPhase{});
            StreamingPhase &phase = it->second;
            if (fresh) {
                phase.id = label;
                phase.first_step = rows[r]->step;
            }
            phase.last_step = rows[r]->step;
            ++phase.steps;
            phase.duration += rows[r]->span;
        }
        out.phases.reserve(by_label.size());
        for (auto &[label, phase] : by_label)
            out.phases.push_back(phase);
        out.top3_coverage = snapshotCoverage(out.phases);
        return out;
    }

    DetectorResult
    finalize(const StepTable &table, const FeatureMatrix *features,
             const AnalyzerOptions &options,
             ThreadPool *pool) override
    {
        // The final answer is the batch answer: full table, full
        // feature pass (PCA and all), same seed — byte-identical
        // to a session that never streamed.
        return detectorFor(PhaseAlgorithm::KMeans)
            .detect(table, features, options, pool);
    }

  private:
    /** One sampled step, op entries copied out of the delta. */
    struct SampleRow
    {
        StepId step = 0;
        SimTime span = 0;
        std::vector<ColumnarOpStats> host, tpu;
    };

    /** Per-dimension normalization state, over all observed rows. */
    struct MaxVals
    {
        std::uint64_t count = 0;
        SimTime duration = 0;
    };

    static SampleRow
    copyRow(const StepDelta &delta)
    {
        SampleRow row;
        row.step = delta.step;
        row.span = delta.span;
        row.host.assign(delta.host.begin(), delta.host.end());
        row.tpu.assign(delta.tpu.begin(), delta.tpu.end());
        return row;
    }

    void
    foldMaxima(OpStatsSpan entries, std::uint64_t side)
    {
        for (const ColumnarOpStats &entry : entries) {
            const std::uint64_t key =
                (static_cast<std::uint64_t>(entry.op) << 1) | side;
            MaxVals &vals = maxima[key];
            vals.count = std::max(vals.count, entry.count);
            vals.duration =
                std::max(vals.duration, entry.total_duration);
        }
    }

    /** Cluster the sorted sample; one label per row. */
    std::vector<int>
    clusterSample(const std::vector<const SampleRow *> &rows) const
    {
        // Feature dimensions: the ops present in the sample, key
        // order (global maxima normalize them so snapshots don't
        // jump when an op's biggest step leaves the reservoir).
        std::vector<std::uint64_t> keys;
        for (const SampleRow *row : rows) {
            for (const ColumnarOpStats &entry : row->host)
                keys.push_back(
                    static_cast<std::uint64_t>(entry.op) << 1);
            for (const ColumnarOpStats &entry : row->tpu)
                keys.push_back(
                    (static_cast<std::uint64_t>(entry.op) << 1) |
                    1);
        }
        std::sort(keys.begin(), keys.end());
        keys.erase(std::unique(keys.begin(), keys.end()),
                   keys.end());

        const std::size_t dims_per_op =
            (opts.features.include_counts ? 1 : 0) +
            (opts.features.include_durations ? 1 : 0);
        if (keys.empty() || dims_per_op == 0)
            return std::vector<int>(rows.size(), 0);

        Matrix matrix(rows.size(), keys.size() * dims_per_op);
        for (std::size_t r = 0; r < rows.size(); ++r) {
            fillRow(matrix, r, *rows[r], keys, dims_per_op);
        }

        if (opts.kmeans_fixed_k > 0) {
            Rng rng(opts.seed);
            return kMeansCluster(matrix, opts.kmeans_fixed_k, rng)
                .labels;
        }
        // Snapshots run inline (pool nullptr): bounded work, and
        // the serve poll loop must not stall its ingest pool.
        return kMeansSweep(matrix, opts.kmeans_k_min,
                           opts.kmeans_k_max, opts.seed, nullptr)
            .best.labels;
    }

    void
    fillRow(Matrix &matrix, std::size_t r, const SampleRow &row,
            const std::vector<std::uint64_t> &keys,
            std::size_t dims_per_op) const
    {
        const auto fold = [&](OpStatsSpan entries,
                              std::uint64_t side) {
            for (const ColumnarOpStats &entry : entries) {
                const std::uint64_t key =
                    (static_cast<std::uint64_t>(entry.op) << 1) |
                    side;
                const auto it = std::lower_bound(keys.begin(),
                                                 keys.end(), key);
                const std::size_t col =
                    static_cast<std::size_t>(it - keys.begin()) *
                    dims_per_op;
                const auto max_it = maxima.find(key);
                const MaxVals vals = max_it == maxima.end()
                    ? MaxVals{}
                    : max_it->second;
                std::size_t d = col;
                if (opts.features.include_counts) {
                    double v = static_cast<double>(entry.count);
                    if (opts.features.normalize && vals.count > 0)
                        v /= static_cast<double>(vals.count);
                    matrix.at(r, d++) = v;
                }
                if (opts.features.include_durations) {
                    double v = static_cast<double>(
                        entry.total_duration);
                    if (opts.features.normalize &&
                        vals.duration > 0)
                        v /= static_cast<double>(vals.duration);
                    matrix.at(r, d) = v;
                }
            }
        };
        fold(row.host, 0);
        fold(row.tpu, 1);
    }

    AnalyzerOptions opts;
    std::size_t capacity;
    std::vector<SampleRow> sample;
    std::map<std::uint64_t, MaxVals> maxima;
    std::uint64_t items_seen = 0;
};

/**
 * Adapter for algorithms without an incremental form (DBSCAN's
 * neighbourhood queries want the whole matrix): observes nothing
 * but the step count, reports empty snapshots, and finalizes via
 * the batch registry — so streaming sessions can still request the
 * algorithm and `analyze`/`compare` behavior is unchanged.
 */
class BatchFallbackStreamingDetector final : public StreamingDetector
{
  public:
    explicit BatchFallbackStreamingDetector(PhaseAlgorithm alg)
        : alg(alg)
    {
    }

    PhaseAlgorithm algorithm() const override { return alg; }

    const char *name() const override
    {
        return phaseAlgorithmName(alg);
    }

    void
    observeSteps(const std::vector<StepDelta> &deltas) override
    {
        observed += deltas.size();
    }

    void reset() override { observed = 0; }

    StreamingSnapshot
    snapshot() const override
    {
        StreamingSnapshot out;
        out.algorithm = alg;
        out.steps_observed = observed;
        out.exact = false;
        out.sampled = false;
        return out;
    }

    DetectorResult
    finalize(const StepTable &table, const FeatureMatrix *features,
             const AnalyzerOptions &options,
             ThreadPool *pool) override
    {
        return detectorFor(alg).detect(table, features, options,
                                       pool);
    }

  private:
    PhaseAlgorithm alg;
    std::uint64_t observed = 0;
};

struct StreamingRegistry
{
    std::mutex guard;
    std::map<PhaseAlgorithm, StreamingDetectorFactory> overrides;
};

StreamingRegistry &
streamingRegistry()
{
    // Leaked deliberately, like the batch detector registry.
    static StreamingRegistry *instance = new StreamingRegistry;
    return *instance;
}

} // namespace

void
registerStreamingDetector(PhaseAlgorithm algorithm,
                          StreamingDetectorFactory factory)
{
    StreamingRegistry &reg = streamingRegistry();
    std::lock_guard<std::mutex> lock(reg.guard);
    if (factory)
        reg.overrides[algorithm] = std::move(factory);
    else
        reg.overrides.erase(algorithm);
}

std::unique_ptr<StreamingDetector>
makeStreamingDetector(PhaseAlgorithm algorithm,
                      const AnalyzerOptions &options)
{
    StreamingDetectorFactory factory;
    {
        StreamingRegistry &reg = streamingRegistry();
        std::lock_guard<std::mutex> lock(reg.guard);
        const auto it = reg.overrides.find(algorithm);
        if (it != reg.overrides.end())
            factory = it->second;
    }
    if (factory)
        return factory(options);

    switch (algorithm) {
      case PhaseAlgorithm::KMeans:
        return std::make_unique<StreamingKMeans>(options);
      case PhaseAlgorithm::Dbscan:
        return std::make_unique<BatchFallbackStreamingDetector>(
            PhaseAlgorithm::Dbscan);
      case PhaseAlgorithm::OnlineLinearScan:
        return std::make_unique<StreamingOls>(options);
    }
    panic("makeStreamingDetector: unknown algorithm");
}

} // namespace tpupoint

#include "analyzer/ols.hh"

#include <algorithm>

#include "core/interner.hh"
#include "core/logging.hh"

namespace tpupoint {

namespace {

/**
 * Sorted operator-key set of a row-oriented step: intern each
 * label's name, tag the device side in the low bit, sort. Produces
 * the same set (up to the label <-> key bijection) as
 * StepStats::opSet().
 */
std::vector<std::uint64_t>
keysFromMaps(const StepStats &step)
{
    StringInterner &interner = StringInterner::global();
    std::vector<std::uint64_t> keys;
    keys.reserve(step.host_ops.size() + step.tpu_ops.size());
    for (const auto &[name, stats] : step.host_ops)
        keys.push_back(static_cast<std::uint64_t>(
                           interner.intern(name)) << 1);
    for (const auto &[name, stats] : step.tpu_ops)
        keys.push_back((static_cast<std::uint64_t>(
                            interner.intern(name)) << 1) | 1);
    std::sort(keys.begin(), keys.end());
    return keys;
}

/**
 * Materialize a key signature back into the sorted label strings
 * StepStats::opSet() would have produced ("host:" labels sort
 * before "tpu:" labels, names sorted within each side).
 */
std::vector<std::string>
labelsFromKeys(const std::vector<std::uint64_t> &keys)
{
    const StringInterner &interner = StringInterner::global();
    std::vector<std::string> labels;
    labels.reserve(keys.size());
    for (const std::uint64_t key : keys) {
        const auto id = static_cast<std::uint32_t>(key >> 1);
        labels.push_back(((key & 1) ? "tpu:" : "host:") +
                         std::string(interner.view(id)));
    }
    std::sort(labels.begin(), labels.end());
    return labels;
}

} // namespace

OnlineLinearScan::OnlineLinearScan(const OlsOptions &options)
    : opts(options)
{
    if (opts.similarity_threshold < 0.0 ||
        opts.similarity_threshold > 1.0)
        fatal("OnlineLinearScan: threshold must be in [0, 1]");
}

double
OnlineLinearScan::setSimilarity(const std::vector<std::string> &a,
                                const std::vector<std::string> &b)
{
    if (a.empty() || b.empty())
        return a.empty() && b.empty() ? 1.0 : 0.0;
    // Both sets are sorted (map iteration order); linear merge.
    std::size_t i = 0, j = 0, common = 0;
    while (i < a.size() && j < b.size()) {
        if (a[i] == b[j]) {
            ++common;
            ++i;
            ++j;
        } else if (a[i] < b[j]) {
            ++i;
        } else {
            ++j;
        }
    }
    const std::size_t smaller = std::min(a.size(), b.size());
    return static_cast<double>(common) /
        static_cast<double>(smaller);
}

double
OnlineLinearScan::keySimilarity(const std::vector<std::uint64_t> &a,
                                const std::vector<std::uint64_t> &b)
{
    if (a.empty() || b.empty())
        return a.empty() && b.empty() ? 1.0 : 0.0;
    std::size_t i = 0, j = 0, common = 0;
    while (i < a.size() && j < b.size()) {
        if (a[i] == b[j]) {
            ++common;
            ++i;
            ++j;
        } else if (a[i] < b[j]) {
            ++i;
        } else {
            ++j;
        }
    }
    const std::size_t smaller = std::min(a.size(), b.size());
    return static_cast<double>(common) /
        static_cast<double>(smaller);
}

double
OnlineLinearScan::stepSimilarity(const StepStats &a,
                                 const StepStats &b)
{
    return setSimilarity(a.opSet(), b.opSet());
}

std::vector<std::uint64_t>
OnlineLinearScan::opKeys(OpStatsSpan host, OpStatsSpan tpu)
{
    // Both runs are id-sorted, so the key runs (id * 2 for host,
    // id * 2 + 1 for TPU) are each ascending: one linear merge.
    std::vector<std::uint64_t> keys;
    keys.reserve(host.size() + tpu.size());
    std::size_t i = 0, j = 0;
    while (i < host.size() && j < tpu.size()) {
        const std::uint64_t hk =
            static_cast<std::uint64_t>(host[i].op) << 1;
        const std::uint64_t tk =
            (static_cast<std::uint64_t>(tpu[j].op) << 1) | 1;
        if (hk < tk) {
            keys.push_back(hk);
            ++i;
        } else {
            keys.push_back(tk);
            ++j;
        }
    }
    for (; i < host.size(); ++i)
        keys.push_back(static_cast<std::uint64_t>(host[i].op)
                       << 1);
    for (; j < tpu.size(); ++j)
        keys.push_back(
            (static_cast<std::uint64_t>(tpu[j].op) << 1) | 1);
    return keys;
}

void
OnlineLinearScan::addStep(const StepStats &step)
{
    addStep(step.step, step.span(), keysFromMaps(step));
}

void
OnlineLinearScan::addStep(StepId step, SimTime span,
                          std::vector<std::uint64_t> event_keys)
{
    if (finished)
        panic("OnlineLinearScan::addStep after finish");

    if (!have_current) {
        current = Span{step, step, 1, span};
        current_signature = event_keys;
        have_current = true;
    } else {
        const double similarity =
            keySimilarity(previous_set, event_keys);
        if (similarity >= opts.similarity_threshold) {
            // Group with the running segment.
            current.last_step = step;
            ++current.steps;
            current.duration += span;
        } else {
            // Phase boundary: close the segment, aggregate it into
            // a matching phase (or start a new one), and open the
            // next segment. This keeps the working set at three
            // step records plus one signature per distinct phase.
            closeSegment();
            current = Span{step, step, 1, span};
            current_signature = event_keys;
        }
    }

    // Slide the three-step window (i, i-1, i-2).
    preprevious_set = std::move(previous_set);
    previous_set = std::move(event_keys);
    peak_held = std::max<std::size_t>(peak_held, 3);
}

void
OnlineLinearScan::closeSegment()
{
    segments.push_back(current);

    Group *home = nullptr;
    for (std::size_t g = 0; g < groups.size(); ++g) {
        if (keySimilarity(group_keys[g], current_signature) >=
            opts.similarity_threshold) {
            home = &groups[g];
            break;
        }
    }
    if (!home) {
        groups.emplace_back();
        home = &groups.back();
        group_keys.push_back(current_signature);
        // Label strings are only materialized here — once per
        // distinct phase, not per step.
        home->signature = labelsFromKeys(current_signature);
    }
    home->spans.push_back(current);
    home->steps += current.steps;
    home->duration += current.duration;
}

std::vector<OnlineLinearScan::PhasePeek>
OnlineLinearScan::peekPhases() const
{
    std::vector<PhasePeek> out;
    out.reserve(groups.size() + 1);
    for (const Group &group : groups) {
        PhasePeek peek;
        peek.first_step = group.spans.front().first_step;
        peek.last_step = group.spans.back().last_step;
        peek.steps = group.steps;
        peek.duration = group.duration;
        peek.spans = group.spans.size();
        out.push_back(peek);
    }
    if (!have_current || finished)
        return out;
    // Fold the open segment the way closeSegment() will: into the
    // first group whose signature matches, else as a new phase.
    for (std::size_t g = 0; g < groups.size(); ++g) {
        if (keySimilarity(group_keys[g], current_signature) >=
            opts.similarity_threshold) {
            out[g].last_step = current.last_step;
            out[g].steps += current.steps;
            out[g].duration += current.duration;
            ++out[g].spans;
            return out;
        }
    }
    PhasePeek open;
    open.first_step = current.first_step;
    open.last_step = current.last_step;
    open.steps = current.steps;
    open.duration = current.duration;
    open.spans = 1;
    out.push_back(open);
    return out;
}

void
OnlineLinearScan::finish()
{
    if (finished)
        return;
    finished = true;
    if (have_current)
        closeSegment();
}

const std::vector<OnlineLinearScan::Span> &
OnlineLinearScan::spans() const
{
    if (!finished)
        panic("OnlineLinearScan::spans before finish");
    return segments;
}

const std::vector<OnlineLinearScan::Group> &
OnlineLinearScan::phases() const
{
    if (!finished)
        panic("OnlineLinearScan::phases before finish");
    return groups;
}

} // namespace tpupoint

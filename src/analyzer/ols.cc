#include "analyzer/ols.hh"

#include <algorithm>

#include "core/logging.hh"

namespace tpupoint {

OnlineLinearScan::OnlineLinearScan(const OlsOptions &options)
    : opts(options)
{
    if (opts.similarity_threshold < 0.0 ||
        opts.similarity_threshold > 1.0)
        fatal("OnlineLinearScan: threshold must be in [0, 1]");
}

double
OnlineLinearScan::setSimilarity(const std::vector<std::string> &a,
                                const std::vector<std::string> &b)
{
    if (a.empty() || b.empty())
        return a.empty() && b.empty() ? 1.0 : 0.0;
    // Both sets are sorted (map iteration order); linear merge.
    std::size_t i = 0, j = 0, common = 0;
    while (i < a.size() && j < b.size()) {
        if (a[i] == b[j]) {
            ++common;
            ++i;
            ++j;
        } else if (a[i] < b[j]) {
            ++i;
        } else {
            ++j;
        }
    }
    const std::size_t smaller = std::min(a.size(), b.size());
    return static_cast<double>(common) /
        static_cast<double>(smaller);
}

double
OnlineLinearScan::stepSimilarity(const StepStats &a,
                                 const StepStats &b)
{
    return setSimilarity(a.opSet(), b.opSet());
}

void
OnlineLinearScan::addStep(const StepStats &step)
{
    if (finished)
        panic("OnlineLinearScan::addStep after finish");

    std::vector<std::string> event_set = step.opSet();

    if (!have_current) {
        current = Span{step.step, step.step, 1, step.span()};
        current_signature = event_set;
        have_current = true;
    } else {
        const double similarity =
            setSimilarity(previous_set, event_set);
        if (similarity >= opts.similarity_threshold) {
            // Group with the running segment.
            current.last_step = step.step;
            ++current.steps;
            current.duration += step.span();
        } else {
            // Phase boundary: close the segment, aggregate it into
            // a matching phase (or start a new one), and open the
            // next segment. This keeps the working set at three
            // step records plus one signature per distinct phase.
            closeSegment();
            current = Span{step.step, step.step, 1, step.span()};
            current_signature = event_set;
        }
    }

    // Slide the three-step window (i, i-1, i-2).
    preprevious_set = std::move(previous_set);
    previous_set = std::move(event_set);
    peak_held = std::max<std::size_t>(peak_held, 3);
}

void
OnlineLinearScan::closeSegment()
{
    segments.push_back(current);

    Group *home = nullptr;
    for (auto &group : groups) {
        if (setSimilarity(group.signature, current_signature) >=
            opts.similarity_threshold) {
            home = &group;
            break;
        }
    }
    if (!home) {
        groups.emplace_back();
        home = &groups.back();
        home->signature = current_signature;
    }
    home->spans.push_back(current);
    home->steps += current.steps;
    home->duration += current.duration;
}

void
OnlineLinearScan::finish()
{
    if (finished)
        return;
    finished = true;
    if (have_current)
        closeSegment();
}

const std::vector<OnlineLinearScan::Span> &
OnlineLinearScan::spans() const
{
    if (!finished)
        panic("OnlineLinearScan::spans before finish");
    return segments;
}

const std::vector<OnlineLinearScan::Group> &
OnlineLinearScan::phases() const
{
    if (!finished)
        panic("OnlineLinearScan::phases before finish");
    return groups;
}

} // namespace tpupoint

#include "analyzer/detector.hh"

#include <mutex>
#include <utility>

#include "core/logging.hh"
#include "core/rng.hh"

namespace tpupoint {

namespace {

/** Section IV-A stages 2-3: k-means over features + elbow. */
class KMeansDetector final : public PhaseDetector
{
  public:
    PhaseAlgorithm algorithm() const override
    {
        return PhaseAlgorithm::KMeans;
    }

    const char *name() const override
    {
        return phaseAlgorithmName(PhaseAlgorithm::KMeans);
    }

    bool needsFeatures() const override { return true; }

    DetectorResult
    detect(const StepTable &table, const FeatureMatrix *features,
           const AnalyzerOptions &options,
           ThreadPool *pool) const override
    {
        if (features == nullptr)
            panic("k-means detector invoked without features");
        DetectorResult out;
        out.algorithm = PhaseAlgorithm::KMeans;
        if (options.kmeans_fixed_k > 0) {
            Rng rng(options.seed);
            out.kmeans.best = kMeansCluster(
                features->matrix(), options.kmeans_fixed_k, rng);
            out.kmeans.elbow_k = options.kmeans_fixed_k;
            out.kmeans.k_values = {options.kmeans_fixed_k};
            out.kmeans.ssd_curve = {out.kmeans.best.ssd};
        } else {
            out.kmeans = kMeansSweep(
                features->matrix(), options.kmeans_k_min,
                options.kmeans_k_max, options.seed, pool);
        }
        out.phases =
            phasesFromLabels(table, out.kmeans.best.labels);
        out.top3_coverage = topPhaseCoverage(out.phases, 3);
        return out;
    }
};

/** DBSCAN with the min-samples sweep (Figure 5). */
class DbscanDetector final : public PhaseDetector
{
  public:
    PhaseAlgorithm algorithm() const override
    {
        return PhaseAlgorithm::Dbscan;
    }

    const char *name() const override
    {
        return phaseAlgorithmName(PhaseAlgorithm::Dbscan);
    }

    bool needsFeatures() const override { return true; }

    DetectorResult
    detect(const StepTable &table, const FeatureMatrix *features,
           const AnalyzerOptions &options,
           ThreadPool *pool) const override
    {
        if (features == nullptr)
            panic("DBSCAN detector invoked without features");
        DetectorResult out;
        out.algorithm = PhaseAlgorithm::Dbscan;
        if (options.dbscan_fixed_min_samples > 0) {
            const double eps = options.dbscan_eps > 0
                ? options.dbscan_eps
                : suggestEps(features->matrix());
            out.dbscan.best = dbscanCluster(
                features->matrix(), eps,
                options.dbscan_fixed_min_samples);
            out.dbscan.elbow_min_samples =
                options.dbscan_fixed_min_samples;
            out.dbscan.min_samples_values = {
                options.dbscan_fixed_min_samples};
            out.dbscan.noise_curve = {
                out.dbscan.best.noise_ratio};
            out.dbscan.cluster_counts = {
                out.dbscan.best.clusters};
        } else {
            out.dbscan = dbscanSweep(
                features->matrix(), options.dbscan_eps, 5, 180, 25,
                pool);
        }
        out.phases =
            phasesFromLabels(table, out.dbscan.best.labels);
        out.top3_coverage = topPhaseCoverage(out.phases, 3);
        return out;
    }
};

/** Online linear scan over the step stream (Equation 1). */
class OlsDetector final : public PhaseDetector
{
  public:
    PhaseAlgorithm algorithm() const override
    {
        return PhaseAlgorithm::OnlineLinearScan;
    }

    const char *name() const override
    {
        return phaseAlgorithmName(
            PhaseAlgorithm::OnlineLinearScan);
    }

    bool needsFeatures() const override { return false; }

    DetectorResult
    detect(const StepTable &table, const FeatureMatrix *,
           const AnalyzerOptions &options,
           ThreadPool *) const override
    {
        DetectorResult out;
        out.algorithm = PhaseAlgorithm::OnlineLinearScan;
        // OLS is inherently sequential: each step folds into the
        // running span, so there is nothing to fan out. Steps are
        // fed as interned operator-key sets straight off the
        // columnar table — no name maps are materialized.
        OnlineLinearScan ols(OlsOptions{options.ols_threshold});
        for (std::size_t i = 0; i < table.size(); ++i) {
            ols.addStep(table.stepId(i), table.span(i),
                        OnlineLinearScan::opKeys(
                            table.hostOps(i), table.tpuOps(i)));
        }
        ols.finish();
        out.ols_spans = ols.spans();
        out.ols_groups = ols.phases();
        out.phases = phasesFromGroups(table, out.ols_groups);
        out.top3_coverage = topPhaseCoverage(out.phases, 3);
        return out;
    }
};

struct DetectorRegistry
{
    std::mutex guard;
    std::vector<std::unique_ptr<PhaseDetector>> detectors;
};

DetectorRegistry &
registry()
{
    // Function-local static: thread-safe one-time construction
    // with the builtins pre-registered; leaked deliberately so
    // detectors outlive any static destructor ordering.
    static DetectorRegistry *instance = [] {
        auto *reg = new DetectorRegistry;
        reg->detectors.push_back(
            std::make_unique<KMeansDetector>());
        reg->detectors.push_back(
            std::make_unique<DbscanDetector>());
        reg->detectors.push_back(std::make_unique<OlsDetector>());
        return reg;
    }();
    return *instance;
}

} // namespace

const PhaseDetector &
detectorFor(PhaseAlgorithm algorithm)
{
    DetectorRegistry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.guard);
    for (const auto &detector : reg.detectors) {
        if (detector->algorithm() == algorithm)
            return *detector;
    }
    fatal("no registered phase detector for ",
          phaseAlgorithmName(algorithm));
}

std::vector<const PhaseDetector *>
registeredDetectors()
{
    DetectorRegistry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.guard);
    std::vector<const PhaseDetector *> out;
    out.reserve(reg.detectors.size());
    for (const auto &detector : reg.detectors)
        out.push_back(detector.get());
    return out;
}

std::unique_ptr<PhaseDetector>
makeBuiltinDetector(PhaseAlgorithm algorithm)
{
    switch (algorithm) {
      case PhaseAlgorithm::KMeans:
        return std::make_unique<KMeansDetector>();
      case PhaseAlgorithm::Dbscan:
        return std::make_unique<DbscanDetector>();
      case PhaseAlgorithm::OnlineLinearScan:
        return std::make_unique<OlsDetector>();
    }
    panic("makeBuiltinDetector: unknown algorithm");
}

void
registerPhaseDetector(std::unique_ptr<PhaseDetector> detector)
{
    if (!detector)
        panic("registerPhaseDetector: null detector");
    DetectorRegistry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.guard);
    for (auto &existing : reg.detectors) {
        if (existing->algorithm() == detector->algorithm()) {
            existing = std::move(detector);
            return;
        }
    }
    reg.detectors.push_back(std::move(detector));
}

} // namespace tpupoint

#include "analyzer/features.hh"

#include <algorithm>
#include <unordered_map>

#include "analyzer/pca.hh"
#include "core/rng.hh"

namespace tpupoint {

FeatureMatrix
FeatureMatrix::build(const StepTable &table,
                     const FeatureOptions &options)
{
    FeatureMatrix out;
    const std::vector<std::string> universe = table.opUniverse();

    // Dimension layout: per op label, optionally a count dim and a
    // duration dim.
    std::unordered_map<std::string, std::size_t> op_index;
    op_index.reserve(universe.size());
    for (const auto &label : universe) {
        op_index.emplace(label, op_index.size());
        out.labels.push_back(label);
    }
    const std::size_t dims_per_op =
        (options.include_counts ? 1u : 0u) +
        (options.include_durations ? 1u : 0u);
    const std::size_t raw_dims =
        std::max<std::size_t>(universe.size() * dims_per_op, 1);

    out.data.reserve(table.size());
    for (const auto &step : table.steps()) {
        FeatureVector row(raw_dims, 0.0);
        auto fill = [&](const OpStatsMap &ops, const char *prefix) {
            for (const auto &[name, stats] : ops) {
                const auto it = op_index.find(prefix + name);
                if (it == op_index.end())
                    continue;
                std::size_t d = it->second * dims_per_op;
                if (options.include_counts) {
                    row[d] = static_cast<double>(stats.count);
                    ++d;
                }
                if (options.include_durations) {
                    row[d] = static_cast<double>(
                        stats.total_duration);
                }
            }
        };
        fill(step.host_ops, "host:");
        fill(step.tpu_ops, "tpu:");
        out.data.push_back(std::move(row));
    }

    if (options.normalize && !out.data.empty()) {
        // Per-dimension max scaling keeps counts and durations
        // commensurable.
        FeatureVector maxima(raw_dims, 0.0);
        for (const auto &row : out.data)
            for (std::size_t d = 0; d < raw_dims; ++d)
                maxima[d] = std::max(maxima[d], std::abs(row[d]));
        for (auto &row : out.data)
            for (std::size_t d = 0; d < raw_dims; ++d)
                if (maxima[d] > 0)
                    row[d] /= maxima[d];
    }

    if (raw_dims > options.max_dimensions && out.data.size() > 1) {
        Rng rng(options.pca_seed);
        const PcaModel pca =
            fitPca(out.data, options.max_dimensions, rng);
        out.data = pca.projectAll(out.data);
        out.reduced = true;
    }
    return out;
}

} // namespace tpupoint

#include "analyzer/features.hh"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string_view>
#include <unordered_map>

#include "analyzer/pca.hh"
#include "core/interner.hh"
#include "core/rng.hh"

namespace tpupoint {

namespace {

/**
 * Column lookup key for one (side, interned op id) pair: host ops
 * use even keys, TPU ops odd. Dimension ORDER still comes from the
 * sorted label universe; the key only avoids per-step string
 * concatenation and hashing in the fill loop.
 */
constexpr std::uint64_t
opKey(std::uint32_t id, std::uint64_t side)
{
    return (static_cast<std::uint64_t>(id) << 1) | side;
}

} // namespace

FeatureMatrix
FeatureMatrix::build(const StepTable &table,
                     const FeatureOptions &options)
{
    FeatureMatrix out;
    const std::vector<std::string> universe = table.opUniverse();
    out.labels = universe;

    const std::size_t dims_per_op =
        (options.include_counts ? 1u : 0u) +
        (options.include_durations ? 1u : 0u);
    const std::size_t raw_dims =
        std::max<std::size_t>(universe.size() * dims_per_op, 1);

    // Invert the sorted label universe into (side, id) -> universe
    // position once; every universe name is interned (the labels
    // were materialized through the interner).
    const StringInterner &interner = StringInterner::global();
    std::unordered_map<std::uint64_t, std::size_t> column_of;
    column_of.reserve(universe.size());
    for (std::size_t u = 0; u < universe.size(); ++u) {
        std::string_view label = universe[u];
        std::uint64_t side = 0;
        if (label.substr(0, 5) == "host:") {
            label.remove_prefix(5);
        } else {
            label.remove_prefix(4); // "tpu:"
            side = 1;
        }
        std::uint32_t id = 0;
        if (interner.lookup(label, id))
            column_of.emplace(opKey(id, side), u);
    }

    out.data.resize(table.size(), raw_dims);
    for (std::size_t r = 0; r < table.size(); ++r) {
        double *row = out.data.rowPtr(r);
        auto fill = [&](OpStatsSpan ops, std::uint64_t side) {
            for (const ColumnarOpStats &entry : ops) {
                const auto it =
                    column_of.find(opKey(entry.op, side));
                if (it == column_of.end())
                    continue;
                std::size_t d = it->second * dims_per_op;
                if (options.include_counts) {
                    row[d] = static_cast<double>(entry.count);
                    ++d;
                }
                if (options.include_durations) {
                    row[d] = static_cast<double>(
                        entry.total_duration);
                }
            }
        };
        fill(table.hostOps(r), 0);
        fill(table.tpuOps(r), 1);
    }

    if (options.normalize && out.data.rows() > 0) {
        // Per-dimension max scaling keeps counts and durations
        // commensurable.
        FeatureVector maxima(raw_dims, 0.0);
        for (std::size_t r = 0; r < out.data.rows(); ++r) {
            const double *row = out.data.rowPtr(r);
            for (std::size_t d = 0; d < raw_dims; ++d)
                maxima[d] = std::max(maxima[d], std::abs(row[d]));
        }
        for (std::size_t r = 0; r < out.data.rows(); ++r) {
            double *row = out.data.rowPtr(r);
            for (std::size_t d = 0; d < raw_dims; ++d)
                if (maxima[d] > 0)
                    row[d] /= maxima[d];
        }
    }

    if (raw_dims > options.max_dimensions &&
        out.data.rows() > 1) {
        Rng rng(options.pca_seed);
        const PcaModel pca =
            fitPca(out.data, options.max_dimensions, rng);
        out.data = pca.projectAll(out.data);
        out.reduced = true;
    }
    return out;
}

std::vector<FeatureVector>
FeatureMatrix::rows() const
{
    std::vector<FeatureVector> out;
    out.reserve(data.rows());
    for (std::size_t r = 0; r < data.rows(); ++r)
        out.push_back(data.row(r));
    return out;
}

} // namespace tpupoint

#include "analyzer/phases.hh"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "core/interner.hh"
#include "core/logging.hh"

namespace tpupoint {

namespace {

/**
 * Phase under construction: the phase itself plus id-keyed operator
 * accumulators. Sums fold integer-to-integer against interned ids;
 * the name-keyed OpStatsMap the Phase exposes is materialized once
 * at the end (std::map insertion re-sorts by name, so the result is
 * identical to accumulating name maps directly).
 */
struct PhaseAccum
{
    Phase phase;
    std::unordered_map<std::uint32_t, OpStats> host, tpu;
};

void
foldStep(PhaseAccum &acc, const StepTable &table, std::size_t index)
{
    Phase &phase = acc.phase;
    const StepId sid = table.stepId(index);
    if (phase.members.empty()) {
        phase.first_step = sid;
        phase.last_step = sid;
    } else {
        phase.first_step = std::min(phase.first_step, sid);
        phase.last_step = std::max(phase.last_step, sid);
    }
    phase.members.push_back(index);
    phase.total_duration += table.span(index);
    for (const ColumnarOpStats &entry : table.hostOps(index)) {
        OpStats &stats = acc.host[entry.op];
        stats.count += entry.count;
        stats.total_duration += entry.total_duration;
    }
    for (const ColumnarOpStats &entry : table.tpuOps(index)) {
        OpStats &stats = acc.tpu[entry.op];
        stats.count += entry.count;
        stats.total_duration += entry.total_duration;
    }
}

/** Resolve the id-keyed accumulators into the phase's name maps. */
Phase
materialize(PhaseAccum &&acc)
{
    const StringInterner &interner = StringInterner::global();
    for (const auto &[id, stats] : acc.host)
        acc.phase.host_ops.emplace(
            std::string(interner.view(id)), stats);
    for (const auto &[id, stats] : acc.tpu)
        acc.phase.tpu_ops.emplace(
            std::string(interner.view(id)), stats);
    return std::move(acc.phase);
}

} // namespace

std::vector<Phase>
phasesFromLabels(const StepTable &table,
                 const std::vector<int> &labels)
{
    if (labels.size() != table.size())
        panic("phasesFromLabels: label/step count mismatch");
    std::map<int, PhaseAccum> by_label;
    for (std::size_t i = 0; i < labels.size(); ++i) {
        const int key = labels[i] < 0 ? -1 : labels[i];
        PhaseAccum &acc = by_label[key];
        if (acc.phase.members.empty()) {
            acc.phase.id = key;
            acc.phase.is_noise = key < 0;
        }
        foldStep(acc, table, i);
    }
    std::vector<Phase> out;
    out.reserve(by_label.size());
    for (auto &[key, acc] : by_label)
        out.push_back(materialize(std::move(acc)));
    return out;
}

std::vector<Phase>
phasesFromGroups(const StepTable &table,
                 const std::vector<OnlineLinearScan::Group> &groups)
{
    std::vector<Phase> out;
    out.reserve(groups.size());

    // Map each step to its group by span membership. Spans are
    // disjoint across groups, so a per-step scan suffices.
    for (const auto &group : groups) {
        PhaseAccum acc;
        acc.phase.id = static_cast<int>(out.size());
        std::size_t index = 0;
        for (const auto &span : group.spans) {
            // Spans arrive in ascending step order per group.
            while (index < table.size() &&
                   table.stepId(index) < span.first_step)
                ++index;
            while (index < table.size() &&
                   table.stepId(index) <= span.last_step) {
                foldStep(acc, table, index);
                ++index;
            }
        }
        if (!acc.phase.members.empty())
            out.push_back(materialize(std::move(acc)));
    }
    return out;
}

std::vector<const Phase *>
phasesByDuration(const std::vector<Phase> &phases)
{
    std::vector<const Phase *> sorted;
    sorted.reserve(phases.size());
    for (const auto &phase : phases)
        sorted.push_back(&phase);
    std::sort(sorted.begin(), sorted.end(),
              [](const Phase *a, const Phase *b) {
                  return a->total_duration > b->total_duration;
              });
    return sorted;
}

double
topPhaseCoverage(const std::vector<Phase> &phases,
                 std::size_t top_n)
{
    SimTime total = 0;
    for (const auto &phase : phases)
        total += phase.total_duration;
    if (total == 0)
        return 0.0;
    const auto sorted = phasesByDuration(phases);
    SimTime covered = 0;
    for (std::size_t i = 0; i < sorted.size() && i < top_n; ++i)
        covered += sorted[i]->total_duration;
    return static_cast<double>(covered) /
        static_cast<double>(total);
}

const Phase *
longestPhase(const std::vector<Phase> &phases)
{
    const Phase *best = nullptr;
    for (const auto &phase : phases) {
        if (!best || phase.total_duration > best->total_duration)
            best = &phase;
    }
    return best;
}

std::vector<RankedOp>
topOps(const OpStatsMap &ops, std::size_t n)
{
    SimTime total = 0;
    for (const auto &[name, stats] : ops)
        total += stats.total_duration;

    std::vector<RankedOp> ranked;
    ranked.reserve(ops.size());
    for (const auto &[name, stats] : ops) {
        RankedOp op;
        op.name = name;
        op.total_duration = stats.total_duration;
        op.count = stats.count;
        op.share = total
            ? static_cast<double>(stats.total_duration) /
                static_cast<double>(total)
            : 0.0;
        ranked.push_back(std::move(op));
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const RankedOp &a, const RankedOp &b) {
                  if (a.total_duration != b.total_duration)
                      return a.total_duration > b.total_duration;
                  return a.name < b.name;
              });
    if (ranked.size() > n)
        ranked.resize(n);
    return ranked;
}

} // namespace tpupoint

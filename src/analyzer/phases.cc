#include "analyzer/phases.hh"

#include <algorithm>
#include <map>

#include "core/logging.hh"

namespace tpupoint {

namespace {

void
foldStep(Phase &phase, const StepStats &step, std::size_t index)
{
    if (phase.members.empty()) {
        phase.first_step = step.step;
        phase.last_step = step.step;
    } else {
        phase.first_step = std::min(phase.first_step, step.step);
        phase.last_step = std::max(phase.last_step, step.step);
    }
    phase.members.push_back(index);
    phase.total_duration += step.span();
    for (const auto &[name, stats] : step.host_ops)
        phase.host_ops[name].merge(stats);
    for (const auto &[name, stats] : step.tpu_ops)
        phase.tpu_ops[name].merge(stats);
}

} // namespace

std::vector<Phase>
phasesFromLabels(const StepTable &table,
                 const std::vector<int> &labels)
{
    if (labels.size() != table.size())
        panic("phasesFromLabels: label/step count mismatch");
    std::map<int, Phase> by_label;
    for (std::size_t i = 0; i < labels.size(); ++i) {
        const int key = labels[i] < 0 ? -1 : labels[i];
        Phase &phase = by_label[key];
        if (phase.members.empty()) {
            phase.id = key;
            phase.is_noise = key < 0;
        }
        foldStep(phase, table.at(i), i);
    }
    std::vector<Phase> out;
    out.reserve(by_label.size());
    for (auto &[key, phase] : by_label)
        out.push_back(std::move(phase));
    return out;
}

std::vector<Phase>
phasesFromGroups(const StepTable &table,
                 const std::vector<OnlineLinearScan::Group> &groups)
{
    std::vector<Phase> out;
    out.reserve(groups.size());

    // Map each step to its group by span membership. Spans are
    // disjoint across groups, so a per-step scan suffices.
    for (const auto &group : groups) {
        Phase phase;
        phase.id = static_cast<int>(out.size());
        std::size_t index = 0;
        for (const auto &span : group.spans) {
            // Spans arrive in ascending step order per group.
            while (index < table.size() &&
                   table.at(index).step < span.first_step)
                ++index;
            while (index < table.size() &&
                   table.at(index).step <= span.last_step) {
                foldStep(phase, table.at(index), index);
                ++index;
            }
        }
        if (!phase.members.empty())
            out.push_back(std::move(phase));
    }
    return out;
}

std::vector<const Phase *>
phasesByDuration(const std::vector<Phase> &phases)
{
    std::vector<const Phase *> sorted;
    sorted.reserve(phases.size());
    for (const auto &phase : phases)
        sorted.push_back(&phase);
    std::sort(sorted.begin(), sorted.end(),
              [](const Phase *a, const Phase *b) {
                  return a->total_duration > b->total_duration;
              });
    return sorted;
}

double
topPhaseCoverage(const std::vector<Phase> &phases,
                 std::size_t top_n)
{
    SimTime total = 0;
    for (const auto &phase : phases)
        total += phase.total_duration;
    if (total == 0)
        return 0.0;
    const auto sorted = phasesByDuration(phases);
    SimTime covered = 0;
    for (std::size_t i = 0; i < sorted.size() && i < top_n; ++i)
        covered += sorted[i]->total_duration;
    return static_cast<double>(covered) /
        static_cast<double>(total);
}

const Phase *
longestPhase(const std::vector<Phase> &phases)
{
    const Phase *best = nullptr;
    for (const auto &phase : phases) {
        if (!best || phase.total_duration > best->total_duration)
            best = &phase;
    }
    return best;
}

std::vector<RankedOp>
topOps(const OpStatsMap &ops, std::size_t n)
{
    SimTime total = 0;
    for (const auto &[name, stats] : ops)
        total += stats.total_duration;

    std::vector<RankedOp> ranked;
    ranked.reserve(ops.size());
    for (const auto &[name, stats] : ops) {
        RankedOp op;
        op.name = name;
        op.total_duration = stats.total_duration;
        op.count = stats.count;
        op.share = total
            ? static_cast<double>(stats.total_duration) /
                static_cast<double>(total)
            : 0.0;
        ranked.push_back(std::move(op));
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const RankedOp &a, const RankedOp &b) {
                  if (a.total_duration != b.total_duration)
                      return a.total_duration > b.total_duration;
                  return a.name < b.name;
              });
    if (ranked.size() > n)
        ranked.resize(n);
    return ranked;
}

} // namespace tpupoint

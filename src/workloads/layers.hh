/**
 * @file
 * Mid-level neural-network layer library. ModelBuilder wraps a
 * GraphBuilder and emits *training* graphs: each layer call appends
 * the forward operators and pushes a backward emitter onto a stack;
 * finishing the model pops the stack in reverse, appending the
 * gradient operators (Conv2DBackpropFilter, BiasAddGrad, ...) the
 * way TensorFlow's autograd does. Parameter counts are tracked for
 * the all-reduce, weight decay (L2Loss) and optimizer-update ops.
 */

#ifndef TPUPOINT_WORKLOADS_LAYERS_HH
#define TPUPOINT_WORKLOADS_LAYERS_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "graph/builder.hh"
#include "graph/graph.hh"

namespace tpupoint {

/** Activation applied inside dense/conv layers. */
enum class Activation { None, Relu, Gelu, Tanh };

/**
 * Training-graph builder with automatic backward emission.
 */
class ModelBuilder
{
  public:
    /**
     * @param model_name Graph name (e.g. "bert-squad").
     * @param type Element type of activations (TPUs train in bf16).
     */
    explicit ModelBuilder(std::string model_name,
                          DataType type = DataType::BF16);

    /** The underlying primitive-op builder (escape hatch). */
    GraphBuilder &builder() { return gb; }

    // ---- Inputs --------------------------------------------------

    /** Feature tensor from the infeed queue. */
    NodeId input(const TensorShape &shape, const std::string &name);

    /** Integer tensor (token ids / labels) from the infeed queue. */
    NodeId intInput(const TensorShape &shape,
                    const std::string &name);

    // ---- Layers (forward + deferred backward) --------------------

    /** Conv -> BatchNorm -> activation (the CNN workhorse). */
    NodeId convBnAct(NodeId x, std::int64_t out_channels,
                     std::int64_t kernel, std::int64_t stride,
                     Activation act, const std::string &name);

    /** Plain conv + bias (detection heads, GAN layers). */
    NodeId convBias(NodeId x, std::int64_t out_channels,
                    std::int64_t kernel, std::int64_t stride,
                    Activation act, const std::string &name);

    /** Dense projection + bias + activation. */
    NodeId dense(NodeId x, std::int64_t units, Activation act,
                 const std::string &name);

    /** Token-embedding lookup (ids -> [.., width]). */
    NodeId embedding(NodeId ids, std::int64_t vocab,
                     std::int64_t width, const std::string &name);

    /** LayerNorm with learned scale/offset. */
    NodeId layerNorm(NodeId x, const std::string &name);

    /**
     * Multi-head self-attention block: QKV projections, head
     * split (reshape + transpose), scores, softmax, context,
     * merge, output projection. The reshape/transpose traffic this
     * emits is exactly what makes `Reshape`/`Transpose` prominent
     * in Table II.
     */
    NodeId selfAttention(NodeId x, std::int64_t heads,
                         const std::string &name);

    /** Transformer FFN: dense(ff) -> gelu -> dense(hidden). */
    NodeId feedForward(NodeId x, std::int64_t ff_units,
                       const std::string &name);

    /** Full pre-LN transformer encoder layer. */
    NodeId transformerLayer(NodeId x, std::int64_t heads,
                            std::int64_t ff_units,
                            const std::string &name);

    /** Residual add (x + y); gradients fan to both branches. */
    NodeId residual(NodeId x, NodeId y, const std::string &name);

    /** Max pooling (no parameters). */
    NodeId maxPool(NodeId x, std::int64_t window,
                   std::int64_t stride, const std::string &name);

    /** Global average pool NHWC -> [n, c]. */
    NodeId globalAvgPool(NodeId x, const std::string &name);

    /** Nearest-neighbour upsample (FPN / GAN decoder). */
    NodeId upsample(NodeId x, std::int64_t factor,
                    const std::string &name);

    // ---- Closing the graph ---------------------------------------

    /**
     * Softmax cross-entropy loss head, then: L2 weight decay,
     * full backward sweep, cross-replica all-reduce, optimizer
     * update, and the loss outfeed.
     */
    void classificationLoss(NodeId logits, OpKind optimizer,
                            const std::string &name);

    /** Scalar regression/detection loss head + backward sweep. */
    void scalarLoss(NodeId value, OpKind optimizer,
                    const std::string &name);

    /**
     * Forward-only finish (eval graphs): softmax + metric outfeed,
     * no backward ops.
     */
    void evalHead(NodeId logits, const std::string &name);

    /** Total trainable parameters emitted so far. */
    std::uint64_t parameterCount() const { return params; }

    /** Finish and take the (unfused) graph. */
    Graph finish();

  private:
    using BackwardEmitter = std::function<NodeId(NodeId grad)>;

    void pushBackward(BackwardEmitter fn);

    /**
     * Coerce an incoming gradient to the layer's output shape.
     * Forward reductions/reshapes that carry no explicit backward
     * emitter (loss sums, flattens) leave the gradient mis-shaped;
     * the adapter inserts the broadcast/reshape copy TensorFlow's
     * autograd would emit. A no-op when shapes already match.
     */
    NodeId adaptGrad(NodeId grad, const TensorShape &want,
                     const std::string &name);
    NodeId activation(NodeId x, Activation act,
                      const std::string &name);
    NodeId activationGrad(NodeId grad, Activation act,
                          const std::string &name);
    void emitBackward(NodeId seed_grad, OpKind optimizer,
                      const std::string &name);

    GraphBuilder gb;
    std::vector<BackwardEmitter> backward_stack;
    std::uint64_t params = 0;
    bool closed = false;
};

} // namespace tpupoint

#endif // TPUPOINT_WORKLOADS_LAYERS_HH

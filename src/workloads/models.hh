/**
 * @file
 * The five workload model architectures of Table I, synthesized as
 * op graphs: BERT (natural language), DCGAN (image generation),
 * QANet (Q/A natural language), RetinaNet (object detection) and
 * ResNet-50 (image classification). Each builder returns a training
 * graph (forward + backward + optimizer) and a forward-only eval
 * graph, both pre-fusion.
 */

#ifndef TPUPOINT_WORKLOADS_MODELS_HH
#define TPUPOINT_WORKLOADS_MODELS_HH

#include <cstdint>

#include "graph/graph.hh"

namespace tpupoint {

/** A model's training and eval graphs plus its parameter count. */
struct ModelGraphs
{
    Graph train;
    Graph eval;
    std::uint64_t parameters = 0;
};

/**
 * BERT-Base fine-tuning: 12 transformer layers, hidden 768, 12
 * heads, FFN 3072, vocab 30522 (max_seq_length and batch from
 * Table I: 128 / 32).
 */
ModelGraphs buildBert(std::int64_t batch, std::int64_t seq_len);

/**
 * DCGAN: generator (project + 4 upsample conv stages) and
 * discriminator (4 downsample conv stages), trained jointly.
 * @param image_size 32 for CIFAR-10, 28 (padded to 32) for MNIST.
 */
ModelGraphs buildDcgan(std::int64_t batch, std::int64_t image_size,
                       std::int64_t channels);

/**
 * QANet: embedding + convolutional encoder blocks with
 * self-attention, context-query attention and three model-encoder
 * stacks over SQuAD contexts.
 */
ModelGraphs buildQanet(std::int64_t batch, std::int64_t ctx_len,
                       std::int64_t question_len);

/**
 * RetinaNet: ResNet-50 backbone, FPN P3-P7, shared class/box
 * subnets with focal loss (image size 640, batch 64 per Table I).
 */
ModelGraphs buildRetinanet(std::int64_t batch,
                           std::int64_t image_size);

/**
 * ResNet-50 v1.5 image classification ([3,4,6,3] bottleneck
 * stages; batch 1024 per Table I).
 */
ModelGraphs buildResnet(std::int64_t batch, std::int64_t image_size,
                        std::int64_t classes);

} // namespace tpupoint

#endif // TPUPOINT_WORKLOADS_MODELS_HH

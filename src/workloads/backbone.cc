#include "workloads/backbone.hh"

namespace tpupoint {

NodeId
bottleneckBlock(ModelBuilder &mb, NodeId x, std::int64_t filters,
                std::int64_t stride, bool project,
                const std::string &name)
{
    NodeId shortcut = x;
    if (project) {
        shortcut = mb.convBnAct(x, 4 * filters, 1, stride,
                                Activation::None,
                                name + "/shortcut");
    }
    NodeId y = mb.convBnAct(x, filters, 1, 1, Activation::Relu,
                            name + "/conv1");
    y = mb.convBnAct(y, filters, 3, stride, Activation::Relu,
                     name + "/conv2");
    y = mb.convBnAct(y, 4 * filters, 1, 1, Activation::None,
                     name + "/conv3");
    const NodeId merged = mb.residual(shortcut, y, name);
    return mb.builder().unary(OpKind::Relu, merged,
                              name + "/Relu");
}

BackboneOutputs
resnet50Backbone(ModelBuilder &mb, NodeId images,
                 const std::string &prefix)
{
    NodeId x = mb.convBnAct(images, 64, 7, 2, Activation::Relu,
                            prefix + "/stem");
    x = mb.maxPool(x, 3, 2, prefix + "/stem_pool");

    BackboneOutputs outs;
    const std::int64_t stage_blocks[4] = {3, 4, 6, 3};
    const std::int64_t stage_filters[4] = {64, 128, 256, 512};
    for (int stage = 0; stage < 4; ++stage) {
        for (std::int64_t block = 0; block < stage_blocks[stage];
             ++block) {
            const bool first = block == 0;
            const std::int64_t stride =
                (first && stage > 0) ? 2 : 1;
            x = bottleneckBlock(
                mb, x, stage_filters[stage], stride, first,
                prefix + "/stage" + std::to_string(stage + 1) +
                    "/block" + std::to_string(block));
        }
        switch (stage) {
          case 0: outs.c2 = x; break;
          case 1: outs.c3 = x; break;
          case 2: outs.c4 = x; break;
          case 3: outs.c5 = x; break;
        }
    }
    return outs;
}

} // namespace tpupoint

/**
 * @file
 * ResNet-50 v1.5 (He et al.): 7x7 stem, four bottleneck stages of
 * [3, 4, 6, 3] blocks, global average pool and a 1000-way
 * classifier.
 */

#include "workloads/models.hh"

#include <string>

#include "workloads/backbone.hh"
#include "workloads/layers.hh"

namespace tpupoint {

namespace {

NodeId
resnetForward(ModelBuilder &mb, std::int64_t batch,
              std::int64_t image_size, std::int64_t classes)
{
    const NodeId images = mb.input(
        TensorShape{batch, image_size, image_size, 3},
        "resnet/images");
    const BackboneOutputs trunk =
        resnet50Backbone(mb, images, "resnet");
    const NodeId pooled = mb.globalAvgPool(trunk.c5,
                                           "resnet/pool");
    return mb.dense(pooled, classes, Activation::None,
                    "resnet/fc");
}

} // namespace

ModelGraphs
buildResnet(std::int64_t batch, std::int64_t image_size,
            std::int64_t classes)
{
    ModelGraphs graphs{Graph("resnet50"), Graph("resnet50-eval"),
                       0};
    {
        ModelBuilder mb("resnet50");
        const NodeId logits =
            resnetForward(mb, batch, image_size, classes);
        mb.classificationLoss(logits,
                              OpKind::ApplyGradientDescent,
                              "resnet/loss");
        graphs.parameters = mb.parameterCount();
        graphs.train = mb.finish();
    }
    {
        ModelBuilder mb("resnet50-eval");
        const NodeId logits =
            resnetForward(mb, batch, image_size, classes);
        mb.evalHead(logits, "resnet/eval");
        graphs.eval = mb.finish();
    }
    return graphs;
}

} // namespace tpupoint

#include "workloads/layers.hh"

#include "core/logging.hh"

namespace tpupoint {

ModelBuilder::ModelBuilder(std::string model_name, DataType type)
    : gb(std::move(model_name), type)
{
}

void
ModelBuilder::pushBackward(BackwardEmitter fn)
{
    backward_stack.push_back(std::move(fn));
}

NodeId
ModelBuilder::adaptGrad(NodeId grad, const TensorShape &want,
                        const std::string &name)
{
    if (gb.outputShape(grad) == want)
        return grad;
    return gb.shapeOp(OpKind::Copy, grad, want,
                      name + "/grad/BroadcastGrad");
}

NodeId
ModelBuilder::input(const TensorShape &shape,
                    const std::string &name)
{
    return gb.infeed(shape, name);
}

NodeId
ModelBuilder::intInput(const TensorShape &shape,
                       const std::string &name)
{
    return gb.infeed(shape, name, DataType::I32);
}

NodeId
ModelBuilder::activation(NodeId x, Activation act,
                         const std::string &name)
{
    switch (act) {
      case Activation::None: return x;
      case Activation::Relu:
        return gb.unary(OpKind::Relu, x, name + "/Relu");
      case Activation::Gelu:
        return gb.unary(OpKind::Gelu, x, name + "/Gelu");
      case Activation::Tanh:
        return gb.unary(OpKind::Tanh, x, name + "/Tanh");
    }
    panic("ModelBuilder::activation: unknown activation");
}

NodeId
ModelBuilder::activationGrad(NodeId grad, Activation act,
                             const std::string &name)
{
    switch (act) {
      case Activation::None: return grad;
      case Activation::Relu:
        return gb.unary(OpKind::ReluGrad, grad,
                        name + "/grad/ReluGrad");
      case Activation::Gelu:
        return gb.unary(OpKind::Gelu, grad,
                        name + "/grad/GeluGrad");
      case Activation::Tanh:
        return gb.unary(OpKind::Tanh, grad,
                        name + "/grad/TanhGrad");
    }
    panic("ModelBuilder::activationGrad: unknown activation");
}

NodeId
ModelBuilder::convBnAct(NodeId x, std::int64_t out_channels,
                        std::int64_t kernel, std::int64_t stride,
                        Activation act, const std::string &name)
{
    const TensorShape in_shape = gb.outputShape(x);
    const std::int64_t in_channels = in_shape.dim(3);
    const NodeId conv =
        gb.conv2d(x, out_channels, kernel, stride,
                  name + "/Conv2D");
    const NodeId bn = gb.batchNorm(conv,
                                   name + "/FusedBatchNormV3");
    const NodeId out = activation(bn, act, name);
    const TensorShape out_shape = gb.outputShape(out);
    params += static_cast<std::uint64_t>(kernel) * kernel *
        in_channels * out_channels + 2ULL * out_channels;

    pushBackward([this, x, in_shape, out_shape, kernel, act,
                  name](NodeId grad) {
        grad = adaptGrad(grad, out_shape, name);
        const NodeId ag = activationGrad(grad, act, name);
        const NodeId bg = gb.batchNormGrad(
            ag, name + "/grad/FusedBatchNormGradV3");
        gb.conv2dBackpropFilter(x, bg, kernel,
                                name + "/grad/Conv2DBackpropFilter");
        return gb.conv2dBackpropInput(
            bg, in_shape, kernel,
            name + "/grad/Conv2DBackpropInput");
    });
    return out;
}

NodeId
ModelBuilder::convBias(NodeId x, std::int64_t out_channels,
                       std::int64_t kernel, std::int64_t stride,
                       Activation act, const std::string &name)
{
    const TensorShape in_shape = gb.outputShape(x);
    const std::int64_t in_channels = in_shape.dim(3);
    const NodeId conv =
        gb.conv2d(x, out_channels, kernel, stride,
                  name + "/Conv2D");
    const NodeId bias = gb.biasAdd(conv, name + "/BiasAdd");
    const NodeId out = activation(bias, act, name);
    const TensorShape out_shape = gb.outputShape(out);
    params += static_cast<std::uint64_t>(kernel) * kernel *
        in_channels * out_channels + out_channels;

    pushBackward([this, x, in_shape, out_shape, kernel, act,
                  name](NodeId grad) {
        grad = adaptGrad(grad, out_shape, name);
        const NodeId ag = activationGrad(grad, act, name);
        gb.reduceLastAxis(OpKind::BiasAddGrad, ag,
                          name + "/grad/BiasAddGrad");
        gb.conv2dBackpropFilter(x, ag, kernel,
                                name + "/grad/Conv2DBackpropFilter");
        return gb.conv2dBackpropInput(
            ag, in_shape, kernel,
            name + "/grad/Conv2DBackpropInput");
    });
    return out;
}

NodeId
ModelBuilder::dense(NodeId x, std::int64_t units, Activation act,
                    const std::string &name)
{
    const TensorShape in_shape = gb.outputShape(x);
    const std::int64_t in_units = in_shape.dim(in_shape.rank() - 1);
    const NodeId mm = gb.matmul(x, units, name + "/MatMul");
    const NodeId bias = gb.biasAdd(mm, name + "/BiasAdd");
    const NodeId out = activation(bias, act, name);
    const TensorShape out_shape = gb.outputShape(out);
    params += static_cast<std::uint64_t>(in_units) * units + units;

    pushBackward([this, in_units, out_shape, act,
                  name](NodeId grad) {
        grad = adaptGrad(grad, out_shape, name);
        const NodeId ag = activationGrad(grad, act, name);
        gb.reduceLastAxis(OpKind::BiasAddGrad, ag,
                          name + "/grad/BiasAddGrad");
        // dW and dX are both matmuls against the incoming grad;
        // cost-wise each contracts [m, units] down to in_units.
        gb.matmul(ag, in_units, name + "/grad/MatMul_1");
        return gb.matmul(ag, in_units, name + "/grad/MatMul");
    });
    return out;
}

NodeId
ModelBuilder::embedding(NodeId ids, std::int64_t vocab,
                        std::int64_t width, const std::string &name)
{
    const NodeId table = gb.gather(ids, width, name + "/GatherV2");
    params += static_cast<std::uint64_t>(vocab) * width;

    pushBackward([this, name](NodeId grad) {
        // The sparse scatter into the embedding table.
        return gb.unary(OpKind::DynamicStitch, grad,
                        name + "/grad/DynamicStitch");
    });
    return table;
}

NodeId
ModelBuilder::layerNorm(NodeId x, const std::string &name)
{
    // Copy, not reference: adding the node below may reallocate
    // the graph's node storage and invalidate shape references.
    const TensorShape shape = gb.outputShape(x);
    const NodeId out = gb.layerNorm(x, name + "/LayerNorm");
    params += 2ULL *
        static_cast<std::uint64_t>(shape.dim(shape.rank() - 1));

    const TensorShape out_shape = gb.outputShape(out);
    pushBackward([this, out_shape, name](NodeId grad) {
        grad = adaptGrad(grad, out_shape, name);
        return gb.layerNormGrad(grad, name + "/grad/LayerNormGrad");
    });
    return out;
}

NodeId
ModelBuilder::selfAttention(NodeId x, std::int64_t heads,
                            const std::string &name)
{
    const TensorShape in_shape = gb.outputShape(x);
    if (in_shape.rank() != 3)
        fatal("selfAttention: expected [batch, seq, hidden] for ",
              name);
    const std::int64_t b = in_shape.dim(0);
    const std::int64_t s = in_shape.dim(1);
    const std::int64_t h = in_shape.dim(2);
    if (h % heads != 0)
        fatal("selfAttention: hidden not divisible by heads for ",
              name);
    const std::int64_t dh = h / heads;

    const NodeId q = dense(x, h, Activation::None, name + "/query");
    const NodeId k = dense(x, h, Activation::None, name + "/key");
    const NodeId v = dense(x, h, Activation::None, name + "/value");

    // Head split: [b, s, h] -> [b*heads, s, dh] (and k transposed).
    auto split = [&](NodeId t, const char *tag) {
        const NodeId r = gb.reshape(
            t, TensorShape{b, s, heads, dh},
            name + "/" + tag + "/Reshape");
        const NodeId tr = gb.transpose(
            r, {0, 2, 1, 3}, name + "/" + tag + "/Transpose");
        return gb.reshape(tr, TensorShape{b * heads, s, dh},
                          name + "/" + tag + "/Reshape_1");
    };
    const NodeId qs = split(q, "query");
    const NodeId vs = split(v, "value");
    const NodeId kr = gb.reshape(k, TensorShape{b, s, heads, dh},
                                 name + "/key/Reshape");
    const NodeId kt = gb.transpose(kr, {0, 2, 3, 1},
                                   name + "/key/Transpose");
    const NodeId ks = gb.reshape(kt, TensorShape{b * heads, dh, s},
                                 name + "/key/Reshape_1");

    const NodeId scores =
        gb.batchMatmul(qs, ks, name + "/MatMul");
    const NodeId scaled =
        gb.unary(OpKind::Mul, scores, name + "/Mul");
    const NodeId probs = gb.softmax(scaled, name + "/Softmax");
    const NodeId ctx = gb.batchMatmul(probs, vs,
                                      name + "/MatMul_1");

    // Merge heads back: [b*heads, s, dh] -> [b, s, h].
    const NodeId cr = gb.reshape(ctx,
                                 TensorShape{b, heads, s, dh},
                                 name + "/context/Reshape");
    const NodeId ct = gb.transpose(cr, {0, 2, 1, 3},
                                   name + "/context/Transpose");
    const NodeId merged = gb.reshape(ct, TensorShape{b, s, h},
                                     name + "/context/Reshape_1");

    // Backward of the attention core (between the v and output
    // projections on the stack).
    pushBackward([this, b, s, h, heads, dh, name](NodeId grad) {
        grad = adaptGrad(grad, TensorShape{b, s, h}, name);
        const NodeId gr = gb.reshape(
            grad, TensorShape{b, s, heads, dh},
            name + "/grad/Reshape");
        const NodeId gt = gb.transpose(
            gr, {0, 2, 1, 3}, name + "/grad/Transpose");
        const NodeId gs = gb.reshape(
            gt, TensorShape{b * heads, s, dh},
            name + "/grad/Reshape_1");
        // dV and dProbs.
        const NodeId dprobs_proxy = gb.reshape(
            gs, TensorShape{b * heads, s, dh},
            name + "/grad/Reshape_2");
        gb.batchMatmul(
            gs,
            gb.reshape(dprobs_proxy,
                       TensorShape{b * heads, dh, s},
                       name + "/grad/Transpose_1"),
            name + "/grad/MatMul");
        const NodeId sg = gb.unary(
            OpKind::SoftmaxGrad,
            gb.shapeOp(OpKind::Copy, gs,
                       TensorShape{b * heads, s, s},
                       name + "/grad/Copy"),
            name + "/grad/SoftmaxGrad");
        const NodeId dq = gb.batchMatmul(
            sg,
            gb.shapeOp(OpKind::Transpose, sg,
                       TensorShape{b * heads, s, dh},
                       name + "/grad/Transpose_2"),
            name + "/grad/MatMul_1");
        return gb.reshape(dq, TensorShape{b, s, h},
                          name + "/grad/Reshape_3");
    });

    return dense(merged, h, Activation::None, name + "/output");
}

NodeId
ModelBuilder::feedForward(NodeId x, std::int64_t ff_units,
                          const std::string &name)
{
    const TensorShape &shape = gb.outputShape(x);
    const std::int64_t hidden = shape.dim(shape.rank() - 1);
    const NodeId up = dense(x, ff_units, Activation::Gelu,
                            name + "/intermediate");
    return dense(up, hidden, Activation::None, name + "/output");
}

NodeId
ModelBuilder::transformerLayer(NodeId x, std::int64_t heads,
                               std::int64_t ff_units,
                               const std::string &name)
{
    const NodeId ln1 = layerNorm(x, name + "/ln_attention");
    const NodeId attn = selfAttention(ln1, heads,
                                      name + "/attention");
    const NodeId r1 = residual(x, attn, name + "/add_attention");
    const NodeId ln2 = layerNorm(r1, name + "/ln_ffn");
    const NodeId ff = feedForward(ln2, ff_units, name + "/ffn");
    return residual(r1, ff, name + "/add_ffn");
}

NodeId
ModelBuilder::residual(NodeId x, NodeId y, const std::string &name)
{
    const NodeId add = gb.binary(OpKind::Add, x, y,
                                 name + "/Add");
    pushBackward([](NodeId grad) { return grad; });
    return add;
}

NodeId
ModelBuilder::maxPool(NodeId x, std::int64_t window,
                      std::int64_t stride, const std::string &name)
{
    const TensorShape in_shape = gb.outputShape(x);
    const NodeId out = gb.pool(OpKind::MaxPool, x, window, stride,
                               name + "/MaxPool");
    pushBackward([this, in_shape, name](NodeId grad) {
        return gb.shapeOp(OpKind::MaxPoolGrad, grad, in_shape,
                          name + "/grad/MaxPoolGrad");
    });
    return out;
}

NodeId
ModelBuilder::globalAvgPool(NodeId x, const std::string &name)
{
    const TensorShape in_shape = gb.outputShape(x);
    const NodeId pooled =
        gb.pool(OpKind::AvgPool, x, in_shape.dim(1),
                in_shape.dim(1), name + "/AvgPool");
    const NodeId out = gb.reshape(
        pooled, TensorShape{in_shape.dim(0), in_shape.dim(3)},
        name + "/Reshape");
    pushBackward([this, in_shape, name](NodeId grad) {
        return gb.shapeOp(OpKind::AvgPool, grad, in_shape,
                          name + "/grad/AvgPoolGrad");
    });
    return out;
}

NodeId
ModelBuilder::upsample(NodeId x, std::int64_t factor,
                       const std::string &name)
{
    const TensorShape in_shape = gb.outputShape(x);
    const NodeId out = gb.resizeNearest(
        x, factor, name + "/ResizeNearestNeighbor");
    pushBackward([this, in_shape, name](NodeId grad) {
        return gb.shapeOp(OpKind::Sum, grad, in_shape,
                          name + "/grad/ResizeGrad");
    });
    return out;
}

void
ModelBuilder::emitBackward(NodeId seed_grad, OpKind optimizer,
                           const std::string &name)
{
    NodeId grad = seed_grad;
    for (auto it = backward_stack.rbegin();
         it != backward_stack.rend(); ++it) {
        grad = (*it)(grad);
    }
    backward_stack.clear();
    const NodeId reduced =
        gb.allReduce(grad, params, name + "/all_reduce");
    const NodeId replicated = gb.shapeOp(
        OpKind::CrossReplicaSum, reduced, TensorShape{},
        name + "/CrossReplicaSum");
    // Global gradient-norm reduction (clipping), train-only.
    const NodeId norm = gb.reduceAll(OpKind::Sum, replicated,
                                     name + "/global_norm/Sum");
    gb.applyOptimizer(optimizer, norm, params,
                      name + "/ApplyOptimizer");
}

void
ModelBuilder::classificationLoss(NodeId logits, OpKind optimizer,
                                 const std::string &name)
{
    if (closed)
        panic("ModelBuilder: model already closed");
    closed = true;
    const NodeId probs = gb.softmax(logits, name + "/Softmax");
    const NodeId loss = gb.reduceAll(OpKind::Mean, probs,
                                     name + "/Mean");
    const NodeId decay = gb.l2Loss(loss, params,
                                   name + "/L2Loss");
    const NodeId total = gb.binary(OpKind::Add, loss, decay,
                                   name + "/TotalLoss");
    const NodeId seed = gb.unary(OpKind::SoftmaxGrad, probs,
                                 name + "/grad/SoftmaxGrad");
    emitBackward(seed, optimizer, name);
    gb.outfeed(total, name + "/Outfeed");
}

void
ModelBuilder::scalarLoss(NodeId value, OpKind optimizer,
                         const std::string &name)
{
    if (closed)
        panic("ModelBuilder: model already closed");
    closed = true;
    const NodeId loss = gb.reduceAll(OpKind::Sum, value,
                                     name + "/Sum");
    const NodeId decay = gb.l2Loss(loss, params,
                                   name + "/L2Loss");
    const NodeId total = gb.binary(OpKind::Add, loss, decay,
                                   name + "/TotalLoss");
    const NodeId seed = gb.unary(OpKind::Mul, value,
                                 name + "/grad/LossGrad");
    emitBackward(seed, optimizer, name);
    gb.outfeed(total, name + "/Outfeed");
}

void
ModelBuilder::evalHead(NodeId logits, const std::string &name)
{
    if (closed)
        panic("ModelBuilder: model already closed");
    closed = true;
    backward_stack.clear();
    const NodeId probs = gb.softmax(logits, name + "/Softmax");
    // Eval-only metric ops: prediction extraction and comparison.
    // These labels never appear in training steps, which is what
    // lets phase detectors tell eval apart from training.
    const NodeId preds = gb.outputShape(probs).rank() >= 1
        ? gb.reduceLastAxis(OpKind::ArgMax, probs,
                            name + "/ArgMax")
        : gb.unary(OpKind::ArgMax, probs, name + "/ArgMax");
    const NodeId squeezed = gb.unary(OpKind::Squeeze, preds,
                                     name + "/Squeeze");
    const NodeId matches = gb.unary(OpKind::Equal, squeezed,
                                    name + "/Equal");
    const NodeId metric = gb.reduceAll(OpKind::Mean, matches,
                                       name + "/Mean");
    gb.outfeed(metric, name + "/Outfeed");
}

Graph
ModelBuilder::finish()
{
    if (!closed)
        panic("ModelBuilder::finish before a loss/eval head");
    return gb.finish();
}

} // namespace tpupoint

#include "workloads/datasets.hh"

#include "core/types.hh"

namespace tpupoint {
namespace datasets {

namespace {

DatasetSpec
textDataset(const char *name, double mib, std::uint64_t examples)
{
    DatasetSpec d;
    d.name = name;
    d.kind = DatasetKind::TokenizedText;
    d.total_bytes = static_cast<std::uint64_t>(mib * kMiB);
    d.num_examples = examples;
    // Tokenization and feature construction cost milliseconds per
    // record on one core, mostly independent of record length.
    d.decode_ns_per_byte = 40.0;
    d.decode_ns_per_example = 8.0e6;     // ~8 ms/example tokenize
    d.preprocess_ns_per_byte = 25.0;     // pad/mask/feature build
    d.preprocess_ns_per_example = 3.0e6; // ~3 ms/example features
    d.decode_expansion = 1.0;
    d.cost_sigma = 0.05;
    return d;
}

DatasetSpec
rawImageDataset(const char *name, double mib,
                std::uint64_t examples)
{
    DatasetSpec d;
    d.name = name;
    d.kind = DatasetKind::RawImages;
    d.total_bytes = static_cast<std::uint64_t>(mib * kMiB);
    d.num_examples = examples;
    d.decode_ns_per_byte = 9.0;     // parse/cast/copy
    d.preprocess_ns_per_byte = 7.0; // normalize/augment
    d.decode_expansion = 1.0;
    d.cost_sigma = 0.10;
    return d;
}

DatasetSpec
jpegDataset(const char *name, double gib, std::uint64_t examples,
            double sigma)
{
    DatasetSpec d;
    d.name = name;
    d.kind = DatasetKind::JpegImages;
    d.total_bytes = static_cast<std::uint64_t>(gib * kGiB);
    d.num_examples = examples;
    d.decode_ns_per_byte = 26.0;    // JPEG decode ~38 MB/s/core
    d.preprocess_ns_per_byte = 1.2; // crop/resize/augment (decoded)
    d.decode_expansion = 8.0;       // compressed -> RGB
    d.cost_sigma = sigma;
    return d;
}

} // namespace

DatasetSpec
squad()
{
    // ~88k training question/answer contexts.
    return textDataset("SQuAD", 422.27, 87599);
}

DatasetSpec
mrpc()
{
    return textDataset("MRPC", 2.85, 3668);
}

DatasetSpec
mnli()
{
    return textDataset("MNLI", 430.61, 392702);
}

DatasetSpec
cola()
{
    return textDataset("CoLA", 1.44, 8551);
}

DatasetSpec
cifar10()
{
    return rawImageDataset("CIFAR10", 178.87, 50000);
}

DatasetSpec
mnist()
{
    return rawImageDataset("MNIST", 56.21, 60000);
}

DatasetSpec
coco()
{
    // Object-detection inputs vary a lot per image, and the 640px
    // crop/resize/pad path costs more per decoded byte than the
    // classification path.
    DatasetSpec d = jpegDataset("COCO", 48.49, 118287, 0.25);
    // Decode plus the detection augmentations (random crop, box
    // clipping, padding to 640x640) are far heavier per byte than
    // the classification path.
    d.decode_ns_per_byte = 110.0;
    d.preprocess_ns_per_byte = 3.0;
    return d;
}

DatasetSpec
imagenet()
{
    return jpegDataset("ImageNet", 143.38, 1281167, 0.15);
}

DatasetSpec
squadHalf()
{
    DatasetSpec d = squad();
    d.name = "SQuAD-half";
    d.total_bytes /= 2;
    d.num_examples /= 2;
    return d;
}

DatasetSpec
cocoHalf()
{
    DatasetSpec d = coco();
    d.name = "COCO-half";
    d.total_bytes /= 2;
    d.num_examples /= 2;
    return d;
}

} // namespace datasets
} // namespace tpupoint

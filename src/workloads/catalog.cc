#include "workloads/catalog.hh"

#include <algorithm>

#include "core/logging.hh"
#include "core/types.hh"
#include "graph/fusion.hh"
#include "workloads/datasets.hh"
#include "workloads/models.hh"

namespace tpupoint {

namespace {

/** Scale a cadence, keeping it at least 1 when it was nonzero. */
std::uint64_t
scaled(std::uint64_t steps, double scale)
{
    if (steps == 0)
        return 0;
    const auto s = static_cast<std::uint64_t>(
        static_cast<double>(steps) * scale);
    return std::max<std::uint64_t>(s, 1);
}

RuntimeWorkload
assemble(const std::string &name, ModelGraphs graphs,
         DatasetSpec dataset, std::uint64_t batch,
         SessionSchedule schedule, const WorkloadOptions &options)
{
    RuntimeWorkload w;
    w.name = name;
    w.train_schedule = extractSchedule(fuseGraph(graphs.train));
    w.eval_schedule = extractSchedule(fuseGraph(graphs.eval));
    w.dataset = std::move(dataset);
    w.batch_size = batch;
    w.model_bytes = graphs.parameters * 4; // f32 variables

    schedule.train_steps =
        scaled(schedule.train_steps, options.step_scale);

    // Cadences (eval/checkpoint/host-loop) scale together so the
    // run keeps its structure, but never below 1 step — the
    // effective cadence scale is raised just enough to keep every
    // ratio intact. The checkpoint payload shrinks by the same
    // factor so that save/restore overhead keeps its full-scale
    // share of the training time.
    double cadence_scale = options.step_scale;
    for (const std::uint64_t cadence :
         {schedule.steps_per_eval, schedule.eval_steps,
          schedule.checkpoint_interval,
          schedule.iterations_per_loop}) {
        if (cadence > 0) {
            cadence_scale = std::max(
                cadence_scale, 1.0 / static_cast<double>(cadence));
        }
    }
    cadence_scale = std::min(cadence_scale, 1.0);
    schedule.steps_per_eval =
        scaled(schedule.steps_per_eval, cadence_scale);
    schedule.eval_steps =
        scaled(schedule.eval_steps, cadence_scale);
    schedule.checkpoint_interval =
        scaled(schedule.checkpoint_interval, cadence_scale);
    schedule.iterations_per_loop =
        scaled(schedule.iterations_per_loop, cadence_scale);
    w.model_bytes = std::max<std::uint64_t>(
        static_cast<std::uint64_t>(
            static_cast<double>(w.model_bytes) * cadence_scale),
        64 * kKiB);
    w.fixed_cost_scale = cadence_scale;

    if (options.max_train_steps &&
        schedule.train_steps > options.max_train_steps) {
        schedule.train_steps = options.max_train_steps;
    }
    schedule.iterations_per_loop = std::min<std::uint64_t>(
        schedule.iterations_per_loop,
        std::max<std::uint64_t>(schedule.train_steps / 4, 1));
    w.schedule = schedule;
    return w;
}

/** Table I: BERT defaults (seq 128, batch 32, 3 epochs). */
RuntimeWorkload
makeBert(const char *name, const DatasetSpec &dataset,
         const WorkloadOptions &options)
{
    constexpr std::uint64_t batch = 32;
    constexpr std::int64_t seq = 128;
    SessionSchedule schedule;
    const std::uint64_t steps_per_epoch =
        std::max<std::uint64_t>(dataset.num_examples / batch, 1);
    schedule.train_steps = 3 * steps_per_epoch;
    schedule.steps_per_eval = steps_per_epoch;
    schedule.eval_steps =
        std::min<std::uint64_t>(steps_per_epoch / 10 + 1, 100);
    schedule.checkpoint_interval =
        std::min<std::uint64_t>(steps_per_epoch, 1000);
    schedule.iterations_per_loop = 100;
    return assemble(name, buildBert(batch, seq), dataset, batch,
                    schedule, options);
}

/** Table I: DCGAN defaults (batch 1024, 10000 steps, eval/1000). */
RuntimeWorkload
makeDcgan(const char *name, const DatasetSpec &dataset,
          std::int64_t image_size, const WorkloadOptions &options)
{
    constexpr std::uint64_t batch = 1024;
    SessionSchedule schedule;
    schedule.train_steps = 10000;
    schedule.steps_per_eval = 1000; // train_steps_per_eval
    schedule.eval_steps = 50;
    schedule.checkpoint_interval = 1000;
    schedule.iterations_per_loop = 100;
    return assemble(name, buildDcgan(batch, image_size, 3),
                    dataset, batch, schedule, options);
}

/** Table I: QANet defaults (batch 32, 20000 x 5 steps). */
RuntimeWorkload
makeQanet(const char *name, const DatasetSpec &dataset,
          const WorkloadOptions &options)
{
    constexpr std::uint64_t batch = 32;
    // Eval/checkpoint cadence follows the epoch, i.e. the dataset
    // size: a reduced dataset means shorter epochs and more
    // frequent eval/checkpoint cycles (the mechanism behind
    // Observation 6).
    constexpr std::uint64_t full_squad_examples = 87599;
    // QANet reads pre-tokenized word/char-id records; its
    // per-example host cost is about half of BERT's WordPiece
    // featurization over the same corpus.
    DatasetSpec tuned = dataset;
    tuned.decode_ns_per_example /= 2;
    tuned.preprocess_ns_per_example /= 2;
    SessionSchedule schedule;
    schedule.train_steps = 20000ULL * 5;
    schedule.steps_per_eval = std::max<std::uint64_t>(
        20000ULL * dataset.num_examples / full_squad_examples, 1);
    schedule.eval_steps = 300;
    schedule.checkpoint_interval = std::max<std::uint64_t>(
        2000ULL * dataset.num_examples / full_squad_examples, 1);
    schedule.iterations_per_loop = 100;
    return assemble(name, buildQanet(batch, 400, 30), tuned,
                    batch, schedule, options);
}

/** Table I: RetinaNet (batch 64, 640px, 15 epochs of 120k). */
RuntimeWorkload
makeRetinanet(const char *name, const DatasetSpec &dataset,
              const WorkloadOptions &options)
{
    constexpr std::uint64_t batch = 64;
    SessionSchedule schedule;
    // Table I: 15 epochs of 120k examples.
    schedule.train_steps = 15 * (120000 / batch);
    // The eval/checkpoint epoch follows the actual dataset size,
    // so reduced datasets cycle twice as often (Observation 6).
    const std::uint64_t dataset_epoch = std::max<std::uint64_t>(
        dataset.num_examples / batch, 1);
    schedule.steps_per_eval = dataset_epoch;
    schedule.eval_steps = 100;
    schedule.checkpoint_interval = dataset_epoch;
    schedule.iterations_per_loop = 100;
    return assemble(name, buildRetinanet(batch, 640), dataset,
                    batch, schedule, options);
}

/** Table I: ResNet-50 (batch 1024, 112590 steps). */
RuntimeWorkload
makeResnet(const char *name, const DatasetSpec &dataset,
           std::int64_t image_size, const WorkloadOptions &options)
{
    constexpr std::uint64_t batch = 1024;
    SessionSchedule schedule;
    schedule.train_steps = 112590;
    // One epoch of whatever dataset is fed in: 1251 steps for
    // ImageNet, only 48 for CIFAR-10 — the same methodology then
    // evals and checkpoints far more often on the small dataset.
    const std::uint64_t dataset_epoch = std::max<std::uint64_t>(
        dataset.num_examples / batch, 1);
    schedule.steps_per_eval = dataset_epoch;
    schedule.eval_steps = std::max<std::uint64_t>(
        dataset_epoch / 26, 1); // ~50k eval examples at 1024
    schedule.checkpoint_interval = dataset_epoch;
    schedule.iterations_per_loop = 100;
    return assemble(name, buildResnet(batch, image_size, 1000),
                    dataset, batch, schedule, options);
}

} // namespace

const char *
workloadName(WorkloadId id)
{
    switch (id) {
      case WorkloadId::BertMrpc: return "BERT-MRPC";
      case WorkloadId::BertSquad: return "BERT-SQuAD";
      case WorkloadId::BertCola: return "BERT-CoLA";
      case WorkloadId::BertMnli: return "BERT-MNLI";
      case WorkloadId::DcganCifar10: return "DCGAN-CIFAR10";
      case WorkloadId::DcganMnist: return "DCGAN-MNIST";
      case WorkloadId::QanetSquad: return "QANet-SQuAD";
      case WorkloadId::RetinanetCoco: return "RetinaNet-COCO";
      case WorkloadId::ResnetImagenet: return "ResNet-ImageNet";
      case WorkloadId::QanetSquadHalf: return "QANet-SQuAD/2";
      case WorkloadId::RetinanetCocoHalf:
        return "RetinaNet-COCO/2";
      case WorkloadId::ResnetCifar10: return "ResNet-CIFAR10";
    }
    panic("workloadName: unknown WorkloadId");
}

std::vector<WorkloadId>
allWorkloads()
{
    return {WorkloadId::BertMrpc, WorkloadId::BertSquad,
            WorkloadId::BertCola, WorkloadId::BertMnli,
            WorkloadId::DcganCifar10, WorkloadId::DcganMnist,
            WorkloadId::QanetSquad, WorkloadId::RetinanetCoco,
            WorkloadId::ResnetImagenet};
}

std::vector<WorkloadId>
reducedWorkloads()
{
    return {WorkloadId::QanetSquadHalf,
            WorkloadId::RetinanetCocoHalf,
            WorkloadId::ResnetCifar10};
}

RuntimeWorkload
makeWorkload(WorkloadId id, const WorkloadOptions &options)
{
    switch (id) {
      case WorkloadId::BertMrpc:
        return makeBert("BERT-MRPC", datasets::mrpc(), options);
      case WorkloadId::BertSquad:
        return makeBert("BERT-SQuAD", datasets::squad(), options);
      case WorkloadId::BertCola:
        return makeBert("BERT-CoLA", datasets::cola(), options);
      case WorkloadId::BertMnli:
        return makeBert("BERT-MNLI", datasets::mnli(), options);
      case WorkloadId::DcganCifar10:
        return makeDcgan("DCGAN-CIFAR10", datasets::cifar10(), 32,
                         options);
      case WorkloadId::DcganMnist:
        return makeDcgan("DCGAN-MNIST", datasets::mnist(), 28,
                         options);
      case WorkloadId::QanetSquad:
        return makeQanet("QANet-SQuAD", datasets::squad(),
                         options);
      case WorkloadId::RetinanetCoco:
        return makeRetinanet("RetinaNet-COCO", datasets::coco(),
                             options);
      case WorkloadId::ResnetImagenet:
        return makeResnet("ResNet-ImageNet", datasets::imagenet(),
                          224, options);
      case WorkloadId::QanetSquadHalf:
        return makeQanet("QANet-SQuAD/2", datasets::squadHalf(),
                         options);
      case WorkloadId::RetinanetCocoHalf:
        return makeRetinanet("RetinaNet-COCO/2",
                             datasets::cocoHalf(), options);
      case WorkloadId::ResnetCifar10:
        // The paper feeds CIFAR-10 through the same ResNet-50
        // methodology; the 32px native inputs starve the MXUs.
        return makeResnet("ResNet-CIFAR10", datasets::cifar10(),
                          32, options);
    }
    panic("makeWorkload: unknown WorkloadId");
}

} // namespace tpupoint

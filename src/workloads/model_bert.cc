/**
 * @file
 * BERT-Base fine-tuning graph (Devlin et al.; the compact-model
 * recipe of Turc et al. the paper cites). Encoder-only transformer:
 * token + position embeddings, 12 encoder layers, pooler, task
 * head.
 */

#include "workloads/models.hh"

#include "workloads/layers.hh"

namespace tpupoint {

namespace {

constexpr std::int64_t kHidden = 768;
constexpr std::int64_t kLayers = 12;
constexpr std::int64_t kHeads = 12;
constexpr std::int64_t kFfn = 3072;
constexpr std::int64_t kVocab = 30522;
constexpr std::int64_t kTypeVocab = 2;
constexpr std::int64_t kClasses = 2;

/** Shared forward pass; returns task logits. */
NodeId
bertForward(ModelBuilder &mb, std::int64_t batch,
            std::int64_t seq_len)
{
    GraphBuilder &gb = mb.builder();

    const NodeId input_ids = mb.intInput(
        TensorShape{batch, seq_len}, "bert/input_ids");
    const NodeId input_mask = mb.intInput(
        TensorShape{batch, seq_len}, "bert/input_mask");
    const NodeId segment_ids = mb.intInput(
        TensorShape{batch, seq_len}, "bert/segment_ids");

    // Embedding lookup: word + segment + position.
    const NodeId words = mb.embedding(
        input_ids, kVocab, kHidden, "bert/embeddings/word");
    const NodeId segments = mb.embedding(
        segment_ids, kTypeVocab, kHidden,
        "bert/embeddings/token_type");
    NodeId embedded = gb.binary(OpKind::Add, words, segments,
                                "bert/embeddings/Add");
    // Positional table add (the table itself is tiny).
    embedded = gb.unary(OpKind::Add, embedded,
                        "bert/embeddings/Add_1");
    embedded = mb.layerNorm(embedded, "bert/embeddings");

    // Attention mask preparation (host did the padding; the device
    // still casts and scales the mask).
    const NodeId mask_f = gb.unary(OpKind::Cast, input_mask,
                                   "bert/encoder/mask/Cast");
    gb.unary(OpKind::Mul, mask_f, "bert/encoder/mask/Mul");

    NodeId hidden = embedded;
    for (std::int64_t layer = 0; layer < kLayers; ++layer) {
        hidden = mb.transformerLayer(
            hidden, kHeads, kFfn,
            "bert/encoder/layer_" + std::to_string(layer));
    }

    // Pooler: first-token slice -> dense(tanh).
    const NodeId flat = gb.reshape(
        hidden, TensorShape{batch * seq_len, kHidden},
        "bert/pooler/Reshape");
    const NodeId first = gb.slice(flat, batch,
                                  "bert/pooler/Slice");
    const NodeId pooled = mb.dense(first, kHidden,
                                   Activation::Tanh, "bert/pooler");
    return mb.dense(pooled, kClasses, Activation::None,
                    "bert/classifier");
}

} // namespace

ModelGraphs
buildBert(std::int64_t batch, std::int64_t seq_len)
{
    ModelGraphs graphs{Graph("bert"), Graph("bert-eval"), 0};

    {
        ModelBuilder mb("bert");
        const NodeId logits = bertForward(mb, batch, seq_len);
        mb.classificationLoss(logits, OpKind::ApplyAdam,
                              "bert/loss");
        graphs.parameters = mb.parameterCount();
        graphs.train = mb.finish();
    }
    {
        ModelBuilder mb("bert-eval");
        const NodeId logits = bertForward(mb, batch, seq_len);
        mb.evalHead(logits, "bert/eval");
        graphs.eval = mb.finish();
    }
    return graphs;
}

} // namespace tpupoint

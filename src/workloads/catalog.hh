/**
 * @file
 * The workload catalog: every (model, dataset) pair of Table I plus
 * the reduced-dataset variants of Section VI-C, with the paper's
 * default training parameters. makeWorkload() compiles the model
 * (graph build + XLA-style fusion + schedule extraction) and packs
 * everything into a RuntimeWorkload.
 */

#ifndef TPUPOINT_WORKLOADS_CATALOG_HH
#define TPUPOINT_WORKLOADS_CATALOG_HH

#include <string>
#include <vector>

#include "runtime/workload.hh"

namespace tpupoint {

/** Every workload x dataset configuration used in the paper. */
enum class WorkloadId
{
    BertMrpc,
    BertSquad,
    BertCola,
    BertMnli,
    DcganCifar10,
    DcganMnist,
    QanetSquad,
    RetinanetCoco,
    ResnetImagenet,
    // Reduced-dataset variants (Figures 12 and 13).
    QanetSquadHalf,
    RetinanetCocoHalf,
    ResnetCifar10,
};

/** Display name, e.g. "BERT-MRPC", "ResNet-ImageNet". */
const char *workloadName(WorkloadId id);

/** The nine Table I workloads in the paper's order. */
std::vector<WorkloadId> allWorkloads();

/** The three reduced-dataset workloads of Section VI-C. */
std::vector<WorkloadId> reducedWorkloads();

/**
 * Knobs for building a workload at simulation-friendly scale.
 */
struct WorkloadOptions
{
    /**
     * Multiplier applied to train_steps / steps_per_eval /
     * checkpoint_interval. Full-scale runs (scale 1.0) replay the
     * paper's entire training durations; benches use smaller scales
     * — phase structure and utilization are unaffected because every
     * cadence shrinks together.
     */
    double step_scale = 1.0;

    /** Hard cap on train steps after scaling (0 = none). */
    std::uint64_t max_train_steps = 0;
};

/** Build the RuntimeWorkload for @p id. */
RuntimeWorkload makeWorkload(WorkloadId id,
                             const WorkloadOptions &options = {});

} // namespace tpupoint

#endif // TPUPOINT_WORKLOADS_CATALOG_HH

/**
 * @file
 * The dataset catalog: the nine datasets of Table I plus the
 * reduced variants of Section VI-C (half SQuAD, half COCO, and
 * ResNet-on-CIFAR-10). Sizes are the paper's; per-byte host costs
 * are calibrated to Compute Engine Skylake throughput (JPEG decode
 * ~40 MB/s/core, record parsing ~500 MB/s/core).
 */

#ifndef TPUPOINT_WORKLOADS_DATASETS_HH
#define TPUPOINT_WORKLOADS_DATASETS_HH

#include "host/dataset.hh"

namespace tpupoint {
namespace datasets {

/** Stanford Question Answering Dataset — 422.27 MiB. */
DatasetSpec squad();

/** Microsoft Research Paraphrase Corpus — 2.85 MiB. */
DatasetSpec mrpc();

/** Multi-Genre Natural Language Inference — 430.61 MiB. */
DatasetSpec mnli();

/** Corpus of Linguistic Acceptability — 1.44 MiB. */
DatasetSpec cola();

/** CIFAR-10 — 178.87 MiB of raw 32x32 images. */
DatasetSpec cifar10();

/** MNIST — 56.21 MiB of raw 28x28 images. */
DatasetSpec mnist();

/** Common Objects in Context — 48.49 GiB of JPEG images. */
DatasetSpec coco();

/** ImageNet — 143.38 GiB of JPEG images. */
DatasetSpec imagenet();

/** SQuAD reduced to half size (Section VI-C). */
DatasetSpec squadHalf();

/** COCO reduced to half size (Section VI-C). */
DatasetSpec cocoHalf();

} // namespace datasets
} // namespace tpupoint

#endif // TPUPOINT_WORKLOADS_DATASETS_HH

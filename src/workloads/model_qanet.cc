/**
 * @file
 * QANet (Yu et al.): convolution + self-attention encoder blocks
 * over SQuAD contexts, context-query attention, and three stacked
 * model encoders feeding span-start/end heads. 1-D convolutions are
 * modelled on [batch, seq, 1, d] grids; the reshape traffic this
 * creates matches the reshape-heavy QANet profiles the paper
 * reports.
 */

#include "workloads/models.hh"

#include <string>

#include "workloads/layers.hh"

namespace tpupoint {

namespace {

constexpr std::int64_t kDim = 128;
constexpr std::int64_t kHeads = 8;
constexpr std::int64_t kVocab = 90000;
constexpr std::int64_t kEmbedDim = 300;

/** 1-D conv sub-layer with residual (via the 4-D grid trick). */
NodeId
convSublayer(ModelBuilder &mb, NodeId x, const std::string &name)
{
    GraphBuilder &gb = mb.builder();
    const TensorShape shape = gb.outputShape(x);
    const std::int64_t b = shape.dim(0);
    const std::int64_t s = shape.dim(1);
    const std::int64_t d = shape.dim(2);

    const NodeId normed = mb.layerNorm(x, name + "/ln");
    const NodeId grid = gb.reshape(
        normed, TensorShape{b, s, 1, d}, name + "/Reshape");
    const NodeId conv = mb.convBias(grid, d, 3, 1,
                                    Activation::Relu,
                                    name + "/conv");
    const NodeId seq = gb.reshape(conv, TensorShape{b, s, d},
                                  name + "/Reshape_1");
    return mb.residual(x, seq, name);
}

/** One QANet encoder block: convs, self-attention, FFN. */
NodeId
encoderBlock(ModelBuilder &mb, NodeId x, int convs,
             const std::string &name)
{
    NodeId h = x;
    for (int i = 0; i < convs; ++i) {
        h = convSublayer(mb, h,
                         name + "/conv" + std::to_string(i));
    }
    const NodeId ln_a = mb.layerNorm(h, name + "/ln_attention");
    const NodeId attn = mb.selfAttention(ln_a, kHeads,
                                         name + "/attention");
    h = mb.residual(h, attn, name + "/add_attention");
    const NodeId ln_f = mb.layerNorm(h, name + "/ln_ffn");
    const NodeId ff = mb.feedForward(ln_f, 4 * kDim,
                                     name + "/ffn");
    return mb.residual(h, ff, name + "/add_ffn");
}

/** Context-query attention (the DCN-style bi-attention). */
NodeId
contextQueryAttention(ModelBuilder &mb, NodeId context,
                      NodeId question, const std::string &name)
{
    GraphBuilder &gb = mb.builder();
    const TensorShape c_shape = gb.outputShape(context);
    const TensorShape q_shape = gb.outputShape(question);
    const std::int64_t b = c_shape.dim(0);
    const std::int64_t lc = c_shape.dim(1);
    const std::int64_t lq = q_shape.dim(1);
    const std::int64_t d = c_shape.dim(2);

    const NodeId q_t = gb.shapeOp(OpKind::Transpose, question,
                                  TensorShape{b, d, lq},
                                  name + "/Transpose");
    const NodeId sim = gb.batchMatmul(context, q_t,
                                      name + "/MatMul");
    const NodeId c2q_w = gb.softmax(sim, name + "/Softmax");
    const NodeId c2q = gb.batchMatmul(c2q_w, question,
                                      name + "/MatMul_1");
    const NodeId q2c_w = gb.softmax(sim, name + "/Softmax_1");
    const NodeId q2c_seed = gb.shapeOp(OpKind::Transpose, q2c_w,
                                       TensorShape{b, lq, lc},
                                       name + "/Transpose_1");
    const NodeId q2c = gb.shapeOp(OpKind::Copy,
                                  gb.batchMatmul(q2c_seed, context,
                                                 name + "/MatMul_2"),
                                  TensorShape{b, lc, d},
                                  name + "/Copy");
    const NodeId fused = gb.concat({context, c2q, q2c, c2q},
                                   2, name + "/Concat");
    // The bi-attention backward cost is approximated by the
    // projection and encoder gradients that surround it.
    return mb.dense(fused, d, Activation::None,
                    name + "/projection");
}

NodeId
qanetForward(ModelBuilder &mb, std::int64_t batch,
             std::int64_t ctx_len, std::int64_t question_len)
{
    GraphBuilder &gb = mb.builder();

    const NodeId ctx_ids = mb.intInput(
        TensorShape{batch, ctx_len}, "qanet/context_ids");
    const NodeId q_ids = mb.intInput(
        TensorShape{batch, question_len}, "qanet/question_ids");

    NodeId c = mb.embedding(ctx_ids, kVocab, kEmbedDim,
                            "qanet/embedding/context");
    NodeId q = mb.embedding(q_ids, kVocab, kEmbedDim,
                            "qanet/embedding/question");
    c = mb.dense(c, kDim, Activation::Relu,
                 "qanet/highway/context");
    q = mb.dense(q, kDim, Activation::Relu,
                 "qanet/highway/question");

    c = encoderBlock(mb, c, 4, "qanet/embed_encoder/context");
    q = encoderBlock(mb, q, 4, "qanet/embed_encoder/question");

    NodeId m = contextQueryAttention(mb, c, q, "qanet/cq");

    for (int stack = 0; stack < 3; ++stack) {
        for (int block = 0; block < 7; ++block) {
            m = encoderBlock(
                mb, m, 2,
                "qanet/model_encoder" + std::to_string(stack) +
                    "/block" + std::to_string(block));
        }
    }

    const NodeId start_logits = mb.dense(m, 1, Activation::None,
                                         "qanet/output/start");
    const NodeId end_logits = mb.dense(m, 1, Activation::None,
                                       "qanet/output/end");
    const NodeId spans = gb.binary(OpKind::Add, start_logits,
                                   end_logits, "qanet/output/Add");
    return gb.reshape(spans, TensorShape{batch, ctx_len},
                      "qanet/output/Reshape");
}

} // namespace

ModelGraphs
buildQanet(std::int64_t batch, std::int64_t ctx_len,
           std::int64_t question_len)
{
    ModelGraphs graphs{Graph("qanet"), Graph("qanet-eval"), 0};
    {
        ModelBuilder mb("qanet");
        const NodeId logits =
            qanetForward(mb, batch, ctx_len, question_len);
        mb.classificationLoss(logits, OpKind::ApplyAdam,
                              "qanet/loss");
        graphs.parameters = mb.parameterCount();
        graphs.train = mb.finish();
    }
    {
        ModelBuilder mb("qanet-eval");
        const NodeId logits =
            qanetForward(mb, batch, ctx_len, question_len);
        mb.evalHead(logits, "qanet/eval");
        graphs.eval = mb.finish();
    }
    return graphs;
}

} // namespace tpupoint

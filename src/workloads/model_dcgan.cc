/**
 * @file
 * DCGAN (Radford et al.): a generator that projects a latent vector
 * and upsamples through strided transposed convolutions (modelled
 * as upsample + conv), and a convolutional discriminator. One
 * training step updates both networks, so the graph contains the
 * generator pass plus two discriminator passes (real and fake).
 */

#include "workloads/models.hh"

#include <string>

#include "workloads/layers.hh"

namespace tpupoint {

namespace {

constexpr std::int64_t kLatent = 100;
constexpr std::int64_t kBaseFilters = 64;

/** Generator: latent -> [b, size, size, channels] image. */
NodeId
generator(ModelBuilder &mb, NodeId z, std::int64_t image_size,
          std::int64_t channels)
{
    GraphBuilder &gb = mb.builder();
    const std::int64_t start = image_size / 8; // 4 for 32px
    const TensorShape z_shape = gb.outputShape(z);
    const std::int64_t batch = z_shape.dim(0);

    NodeId x = mb.dense(z, start * start * kBaseFilters * 4,
                        Activation::Relu, "generator/project");
    x = gb.reshape(x,
                   TensorShape{batch, start, start,
                               kBaseFilters * 4},
                   "generator/Reshape");
    x = mb.upsample(x, 2, "generator/up1");
    x = mb.convBnAct(x, kBaseFilters * 2, 5, 1, Activation::Relu,
                     "generator/conv1");
    x = mb.upsample(x, 2, "generator/up2");
    x = mb.convBnAct(x, kBaseFilters, 5, 1, Activation::Relu,
                     "generator/conv2");
    x = mb.upsample(x, 2, "generator/up3");
    return mb.convBias(x, channels, 5, 1, Activation::Tanh,
                       "generator/conv3");
}

/** Discriminator: image -> 1 logit. */
NodeId
discriminator(ModelBuilder &mb, NodeId images,
              const std::string &name)
{
    GraphBuilder &gb = mb.builder();
    const TensorShape in = gb.outputShape(images);
    const std::int64_t batch = in.dim(0);

    NodeId x = mb.convBias(images, kBaseFilters, 5, 2,
                           Activation::Relu, name + "/conv1");
    x = mb.convBnAct(x, kBaseFilters * 2, 5, 2, Activation::Relu,
                     name + "/conv2");
    x = mb.convBnAct(x, kBaseFilters * 4, 5, 2, Activation::Relu,
                     name + "/conv3");
    const TensorShape flat_in = gb.outputShape(x);
    x = gb.reshape(x,
                   TensorShape{batch,
                               flat_in.numElements() / batch},
                   name + "/Reshape");
    return mb.dense(x, 1, Activation::None, name + "/logit");
}

} // namespace

ModelGraphs
buildDcgan(std::int64_t batch, std::int64_t image_size,
           std::int64_t channels)
{
    // DCGAN generators work on power-of-two canvases; MNIST's 28px
    // images are padded to 32 by the input pipeline.
    const std::int64_t canvas = image_size <= 32 ? 32 : image_size;

    ModelGraphs graphs{Graph("dcgan"), Graph("dcgan-eval"), 0};
    {
        ModelBuilder mb("dcgan");
        GraphBuilder &gb = mb.builder();
        const NodeId reals = mb.input(
            TensorShape{batch, canvas, canvas, channels},
            "dcgan/real_images");
        const NodeId z = mb.input(TensorShape{batch, kLatent},
                                  "dcgan/noise");
        const NodeId fakes = generator(mb, z, canvas, channels);
        const NodeId d_real =
            discriminator(mb, reals, "discriminator");
        const NodeId d_fake =
            discriminator(mb, fakes, "discriminator_fake");
        const NodeId joined = gb.binary(OpKind::Sub, d_real,
                                        d_fake, "dcgan/loss/Sub");
        mb.scalarLoss(joined, OpKind::ApplyAdam, "dcgan/loss");
        graphs.parameters = mb.parameterCount();
        graphs.train = mb.finish();
    }
    {
        // Eval: generate a sample grid only.
        ModelBuilder mb("dcgan-eval");
        const NodeId z = mb.input(TensorShape{batch, kLatent},
                                  "dcgan/noise");
        const NodeId fakes = generator(mb, z, canvas, channels);
        mb.evalHead(fakes, "dcgan/eval");
        graphs.eval = mb.finish();
    }
    return graphs;
}

} // namespace tpupoint

/**
 * @file
 * RetinaNet (Lin et al.): ResNet-50 backbone, feature pyramid
 * network P3-P7, and shared classification/box-regression subnets
 * (four 3x3 convs each) applied at every pyramid level, trained
 * with focal loss.
 */

#include "workloads/models.hh"

#include <string>
#include <vector>

#include "workloads/backbone.hh"
#include "workloads/layers.hh"

namespace tpupoint {

namespace {

constexpr std::int64_t kFpnDim = 256;
constexpr std::int64_t kAnchors = 9;
constexpr std::int64_t kClasses = 90;

/** Build the FPN levels P3..P7 from backbone outputs. */
std::vector<NodeId>
featurePyramid(ModelBuilder &mb, const BackboneOutputs &trunk,
               const std::string &prefix)
{
    GraphBuilder &gb = mb.builder();

    const NodeId p5 = mb.convBias(trunk.c5, kFpnDim, 1, 1,
                                  Activation::None,
                                  prefix + "/lateral_c5");
    const NodeId p5_up = mb.upsample(p5, 2, prefix + "/up_p5");
    const NodeId l4 = mb.convBias(trunk.c4, kFpnDim, 1, 1,
                                  Activation::None,
                                  prefix + "/lateral_c4");
    const NodeId p4 = mb.residual(l4, p5_up, prefix + "/merge_p4");
    const NodeId p4_up = mb.upsample(p4, 2, prefix + "/up_p4");
    const NodeId l3 = mb.convBias(trunk.c3, kFpnDim, 1, 1,
                                  Activation::None,
                                  prefix + "/lateral_c3");
    const NodeId p3 = mb.residual(l3, p4_up, prefix + "/merge_p3");

    // Smoothing convs plus the extra coarse levels P6/P7.
    const NodeId p3s = mb.convBias(p3, kFpnDim, 3, 1,
                                   Activation::None,
                                   prefix + "/smooth_p3");
    const NodeId p4s = mb.convBias(p4, kFpnDim, 3, 1,
                                   Activation::None,
                                   prefix + "/smooth_p4");
    const NodeId p5s = mb.convBias(p5, kFpnDim, 3, 1,
                                   Activation::None,
                                   prefix + "/smooth_p5");
    const NodeId p6 = mb.convBias(trunk.c5, kFpnDim, 3, 2,
                                  Activation::Relu,
                                  prefix + "/p6");
    const NodeId p7 = mb.convBias(p6, kFpnDim, 3, 2,
                                  Activation::Relu,
                                  prefix + "/p7");
    (void)gb;
    return {p3s, p4s, p5s, p6, p7};
}

/** The shared class/box subnets applied at one pyramid level. */
NodeId
detectionHeads(ModelBuilder &mb, NodeId level,
               const std::string &name)
{
    GraphBuilder &gb = mb.builder();
    NodeId cls = level;
    NodeId box = level;
    for (int i = 0; i < 4; ++i) {
        cls = mb.convBias(cls, kFpnDim, 3, 1, Activation::Relu,
                          name + "/class" + std::to_string(i));
        box = mb.convBias(box, kFpnDim, 3, 1, Activation::Relu,
                          name + "/box" + std::to_string(i));
    }
    cls = mb.convBias(cls, kAnchors * kClasses, 3, 1,
                      Activation::None, name + "/class_out");
    box = mb.convBias(box, kAnchors * 4, 3, 1, Activation::None,
                      name + "/box_out");

    // Flatten both outputs and combine into the level's loss
    // contribution (the focal-loss weighting fuses on device).
    const TensorShape cs = gb.outputShape(cls);
    const TensorShape bs = gb.outputShape(box);
    const NodeId cls_flat = gb.reshape(
        cls, TensorShape{cs.dim(0), cs.numElements() / cs.dim(0)},
        name + "/class/Reshape");
    const NodeId box_flat = gb.reshape(
        box, TensorShape{bs.dim(0), bs.numElements() / bs.dim(0)},
        name + "/box/Reshape");
    const NodeId cls_loss = gb.reduceAll(OpKind::Sum, cls_flat,
                                         name + "/class/Sum");
    const NodeId box_loss = gb.reduceAll(OpKind::Sum, box_flat,
                                         name + "/box/Sum");
    return gb.binary(OpKind::Add, cls_loss, box_loss,
                     name + "/Add");
}

NodeId
retinanetForward(ModelBuilder &mb, std::int64_t batch,
                 std::int64_t image_size)
{
    GraphBuilder &gb = mb.builder();
    const NodeId images = mb.input(
        TensorShape{batch, image_size, image_size, 3},
        "retinanet/images");
    const BackboneOutputs trunk =
        resnet50Backbone(mb, images, "retinanet/backbone");
    const std::vector<NodeId> pyramid =
        featurePyramid(mb, trunk, "retinanet/fpn");

    NodeId total = kInvalidNode;
    for (std::size_t level = 0; level < pyramid.size(); ++level) {
        const NodeId contribution = detectionHeads(
            mb, pyramid[level],
            "retinanet/head_p" + std::to_string(level + 3));
        total = (total == kInvalidNode)
            ? contribution
            : gb.binary(OpKind::Add, total, contribution,
                        "retinanet/loss/Add_" +
                            std::to_string(level));
    }
    return total;
}

} // namespace

ModelGraphs
buildRetinanet(std::int64_t batch, std::int64_t image_size)
{
    ModelGraphs graphs{Graph("retinanet"), Graph("retinanet-eval"),
                       0};
    {
        ModelBuilder mb("retinanet");
        const NodeId loss = retinanetForward(mb, batch,
                                             image_size);
        mb.scalarLoss(loss, OpKind::ApplyGradientDescent,
                      "retinanet/loss");
        graphs.parameters = mb.parameterCount();
        graphs.train = mb.finish();
    }
    {
        ModelBuilder mb("retinanet-eval");
        const NodeId loss = retinanetForward(mb, batch,
                                             image_size);
        mb.evalHead(loss, "retinanet/eval");
        graphs.eval = mb.finish();
    }
    return graphs;
}

} // namespace tpupoint

/**
 * @file
 * Shared ResNet-50 backbone used by both the ResNet classifier and
 * the RetinaNet detector.
 */

#ifndef TPUPOINT_WORKLOADS_BACKBONE_HH
#define TPUPOINT_WORKLOADS_BACKBONE_HH

#include <cstdint>
#include <string>

#include "workloads/layers.hh"

namespace tpupoint {

/** Stage outputs of the backbone (C2 stride 4 ... C5 stride 32). */
struct BackboneOutputs
{
    NodeId c2 = kInvalidNode;
    NodeId c3 = kInvalidNode;
    NodeId c4 = kInvalidNode;
    NodeId c5 = kInvalidNode;
};

/**
 * One bottleneck residual block: 1x1 reduce, 3x3, 1x1 expand plus
 * a projection shortcut when shape changes.
 */
NodeId bottleneckBlock(ModelBuilder &mb, NodeId x,
                       std::int64_t filters, std::int64_t stride,
                       bool project, const std::string &name);

/**
 * The full [3, 4, 6, 3] ResNet-50 trunk: stem + four stages.
 */
BackboneOutputs resnet50Backbone(ModelBuilder &mb, NodeId images,
                                 const std::string &prefix);

} // namespace tpupoint

#endif // TPUPOINT_WORKLOADS_BACKBONE_HH

/**
 * @file
 * The trace transport layer: a chunked, versioned, checksummed
 * container for streams of opaque record payloads.
 *
 * TPUPoint-Profiler stays under its overhead budget by streaming
 * statistical records to storage instead of buffering raw traces
 * (Section III-A). This layer is the stand-in for that transport:
 * the writer groups record payloads into CRC-32-guarded chunks and
 * the reader yields one record at a time with bounded memory (one
 * chunk resident at any moment), classifying damage as truncation
 * or corruption instead of silently returning a partial profile.
 *
 * The payload encoding is owned by the caller (`proto/serialize`
 * for ProfileRecords); this layer only frames bytes:
 *
 *   stream  := header chunk* end
 *   header  := "TPPF" u32(version)    (writers emit v5; readers
 *                                      accept v3..v5)
 *   chunk   := u32(CHUNK_MARKER) u32(record_count)
 *              u32(payload_size) u32(crc32 payload) payload
 *   payload := { u32(record_size) record_bytes }*
 *   end     := u32(END_MARKER) u64(total_records)
 *
 * All integers are little-endian. A stream that stops before the
 * end marker — even at a chunk boundary — reads as Truncated.
 */

#ifndef TPUPOINT_TRACE_RECORD_STREAM_HH
#define TPUPOINT_TRACE_RECORD_STREAM_HH

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <string_view>

namespace tpupoint {

/** Outcome of a record-stream read step. */
enum class StreamStatus {
    Ok,        ///< A record payload was produced.
    End,       ///< Clean end of stream (end marker verified).
    Truncated, ///< Stream stopped before the end marker.
    Corrupt,   ///< Structural damage (marker, checksum, counts).
};

/** Printable status name. */
const char *streamStatusName(StreamStatus status);

/** Chunk-sizing knobs for the writer. */
struct RecordStreamOptions
{
    /** Flush the open chunk after this many records. */
    std::size_t chunk_records = 32;

    /** Flush the open chunk once its payload reaches this size. */
    std::size_t chunk_bytes = 64 * 1024;
};

/**
 * Streaming writer. Appended payloads buffer into the open chunk;
 * finish() (or destruction) seals the stream with the end marker.
 * Memory is bounded by one chunk.
 */
class RecordStreamWriter
{
  public:
    explicit RecordStreamWriter(std::ostream &out,
                                const RecordStreamOptions &options =
                                    {});

    RecordStreamWriter(const RecordStreamWriter &) = delete;
    RecordStreamWriter &operator=(const RecordStreamWriter &) =
        delete;

    /** Flushes and writes the end marker if finish() was missed. */
    ~RecordStreamWriter();

    /** Append one record payload. */
    void append(std::string_view payload);

    /** Write out the open chunk, if any. */
    void flush();

    /** Seal the stream with the end marker. Idempotent. */
    void finish();

    /** Records appended so far. */
    std::uint64_t records() const { return total_records; }

    /** Bytes pushed to the underlying stream (header included). */
    std::uint64_t bytesWritten() const { return written_bytes; }

    /** Sealed chunks written to the stream. */
    std::uint64_t chunksWritten() const { return flushed_chunks; }

    /** Bytes buffered in the open, unflushed chunk. */
    std::size_t pendingBytes() const { return chunk.size(); }

    /** Records buffered in the open, unflushed chunk. */
    std::size_t pendingRecords() const { return chunk_records; }

  private:
    std::ostream &stream;
    RecordStreamOptions opts;
    std::string chunk;
    std::size_t chunk_records = 0;
    std::uint64_t total_records = 0;
    std::uint64_t written_bytes = 0;
    std::uint64_t flushed_chunks = 0;
    bool finished = false;
};

/**
 * Incremental reader for RecordStreamWriter output. Holds at most
 * one chunk in memory; next() yields payload views valid until the
 * following next() call.
 *
 * In salvage mode the reader never reports Corrupt or Truncated:
 * structural damage drops the affected chunk and resynchronizes on
 * the next chunk (or end) marker, a truncated tail ends the stream
 * early, and the salvage counters report exactly what was lost.
 * Damage to a CRC-guarded chunk can at most lose that chunk; every
 * intact chunk after it is recovered.
 */
class RecordStreamReader
{
  public:
    /**
     * Reads and validates the header. Never throws: header damage
     * parks the reader in Truncated/Corrupt state, which the first
     * next() call (and status()) reports. With @p salvage true a
     * damaged header instead scans for the first chunk marker.
     */
    explicit RecordStreamReader(std::istream &in,
                                bool salvage = false);

    /**
     * Advance to the next record payload.
     * @return Ok with @p payload pointing into the current chunk
     *     (valid until the next call), or the terminal status.
     */
    StreamStatus next(std::string_view &payload);

    /** Terminal status, or Ok while records keep arriving. */
    StreamStatus status() const { return state; }

    /** Human-readable detail for Truncated/Corrupt states. */
    const std::string &error() const { return detail; }

    /** Records successfully produced so far. */
    std::uint64_t records() const { return produced; }

    /** Container version from the header (0 until read). */
    std::uint32_t version() const { return stream_version; }

    /** True when constructed in salvage mode. */
    bool salvaging() const { return salvage; }

    /** Salvage: chunks dropped to structural damage. */
    std::uint64_t chunksDropped() const { return dropped_chunks; }

    /** Salvage: bytes skipped while resynchronizing. */
    std::uint64_t bytesSkipped() const { return skipped_bytes; }

    /**
     * Salvage: records known lost — the end marker's declared
     * count minus the records produced, when the marker survived.
     */
    std::uint64_t recordsDropped() const { return dropped_records; }

    /** Salvage: the stream ended without a (valid) end marker. */
    bool truncatedTail() const { return truncated_tail; }

    /** Bytes consumed from the underlying stream so far. */
    std::uint64_t bytesRead() const { return read_bytes; }

    /**
     * Times the reusable chunk buffer had to grow its capacity.
     * The reader keeps exactly one buffer and reuses it for every
     * chunk, so in steady state (after the largest chunk has been
     * seen) this stops advancing — the allocation-counting hook the
     * zero-allocation tests assert on.
     */
    std::uint64_t bufferGrowths() const { return buffer_growths; }

    /** Salvage: any damage was encountered at all. */
    bool
    sawDamage() const
    {
        return dropped_chunks > 0 || skipped_bytes > 0 ||
            truncated_tail;
    }

  private:
    StreamStatus fail(StreamStatus status, std::string message);
    StreamStatus loadChunk();

    /**
     * Salvage recovery: count the damage, scan forward for the
     * next chunk/end marker, and leave the stream positioned just
     * past it (marker_found tells loadChunk which one).
     */
    StreamStatus recover(const std::string &why);

    std::istream &stream;
    std::string chunk;
    std::size_t chunk_offset = 0;
    std::size_t chunk_remaining = 0; ///< Records left in chunk.
    std::uint64_t produced = 0;
    std::uint32_t stream_version = 0;
    StreamStatus state = StreamStatus::Ok;
    std::string detail;

    std::uint64_t read_bytes = 0;
    std::uint64_t buffer_growths = 0;

    bool salvage = false;
    std::uint32_t resynced_marker = 0; ///< Marker found by recover.
    std::uint64_t dropped_chunks = 0;
    std::uint64_t skipped_bytes = 0;
    std::uint64_t dropped_records = 0;
    bool truncated_tail = false;
};

} // namespace tpupoint

#endif // TPUPOINT_TRACE_RECORD_STREAM_HH

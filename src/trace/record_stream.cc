#include "trace/record_stream.hh"

#include <cstring>

#include "core/logging.hh"
#include "trace/checksum.hh"
#include "trace/wire.hh"

namespace tpupoint {

namespace {

using wire::kChunkMarker;
using wire::kEndMarker;
using wire::kMagic;
using wire::kMaxChunkPayload;
using wire::kMinVersion;
using wire::kVersion;

void
putU32(std::ostream &out, std::uint32_t v)
{
    char bytes[4];
    for (int i = 0; i < 4; ++i)
        bytes[i] = static_cast<char>(v >> (8 * i));
    out.write(bytes, sizeof(bytes));
}

void
putU64(std::ostream &out, std::uint64_t v)
{
    char bytes[8];
    for (int i = 0; i < 8; ++i)
        bytes[i] = static_cast<char>(v >> (8 * i));
    out.write(bytes, sizeof(bytes));
}

bool
getU32(std::istream &in, std::uint32_t &v)
{
    char bytes[4];
    if (!in.read(bytes, sizeof(bytes)))
        return false;
    v = 0;
    for (int i = 3; i >= 0; --i)
        v = (v << 8) | static_cast<unsigned char>(bytes[i]);
    return true;
}

bool
getU64(std::istream &in, std::uint64_t &v)
{
    char bytes[8];
    if (!in.read(bytes, sizeof(bytes)))
        return false;
    v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | static_cast<unsigned char>(bytes[i]);
    return true;
}

} // namespace

const char *
streamStatusName(StreamStatus status)
{
    switch (status) {
      case StreamStatus::Ok: return "ok";
      case StreamStatus::End: return "end";
      case StreamStatus::Truncated: return "truncated";
      case StreamStatus::Corrupt: return "corrupt";
    }
    panic("streamStatusName: unknown status");
}

RecordStreamWriter::RecordStreamWriter(
    std::ostream &out, const RecordStreamOptions &options)
    : stream(out), opts(options)
{
    if (opts.chunk_records == 0 || opts.chunk_bytes == 0)
        fatal("RecordStreamWriter: chunk limits must be positive");
    stream.write(kMagic, sizeof(kMagic));
    putU32(stream, kVersion);
    written_bytes += sizeof(kMagic) + 4;
    if (!stream)
        fatal("RecordStreamWriter: stream write failed");
}

RecordStreamWriter::~RecordStreamWriter()
{
    try {
        finish();
    } catch (...) {
        // A failing stream was already reported by the explicit
        // API; destruction must not throw on the unwind path.
    }
}

void
RecordStreamWriter::append(std::string_view payload)
{
    if (finished)
        fatal("RecordStreamWriter: append after finish");
    char length[4];
    const auto size = static_cast<std::uint32_t>(payload.size());
    for (int i = 0; i < 4; ++i)
        length[i] = static_cast<char>(size >> (8 * i));
    chunk.append(length, sizeof(length));
    chunk.append(payload.data(), payload.size());
    ++chunk_records;
    ++total_records;
    if (chunk_records >= opts.chunk_records ||
        chunk.size() >= opts.chunk_bytes)
        flush();
}

void
RecordStreamWriter::flush()
{
    if (chunk.empty())
        return;
    putU32(stream, kChunkMarker);
    putU32(stream, static_cast<std::uint32_t>(chunk_records));
    putU32(stream, static_cast<std::uint32_t>(chunk.size()));
    putU32(stream, crc32(chunk));
    stream.write(chunk.data(),
                 static_cast<std::streamsize>(chunk.size()));
    written_bytes += 16 + chunk.size();
    ++flushed_chunks;
    chunk.clear();
    chunk_records = 0;
    if (!stream)
        fatal("RecordStreamWriter: stream write failed");
}

void
RecordStreamWriter::finish()
{
    if (finished)
        return;
    flush();
    putU32(stream, kEndMarker);
    putU64(stream, total_records);
    written_bytes += 12;
    finished = true;
    if (!stream)
        fatal("RecordStreamWriter: stream write failed");
}

RecordStreamReader::RecordStreamReader(std::istream &in,
                                       bool salvage_mode)
    : stream(in), salvage(salvage_mode)
{
    char magic[4];
    if (stream.read(magic, sizeof(magic)))
        read_bytes += sizeof(magic);
    else {
        if (salvage) {
            truncated_tail = true;
            state = StreamStatus::End;
            return;
        }
        fail(StreamStatus::Truncated,
             "stream ended inside the header");
        return;
    }
    if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
        if (salvage) {
            // A damaged header loses nothing but the version:
            // scan for the first chunk marker and carry on.
            recover("bad magic");
            return;
        }
        fail(StreamStatus::Corrupt,
             "bad magic (not a TPUPoint profile)");
        return;
    }
    if (!getU32(stream, stream_version)) {
        if (salvage) {
            truncated_tail = true;
            state = StreamStatus::End;
            return;
        }
        fail(StreamStatus::Truncated,
             "stream ended inside the header");
        return;
    }
    read_bytes += 4;
    if (stream_version < kMinVersion || stream_version > kVersion) {
        if (salvage) {
            detail = "version " + std::to_string(stream_version) +
                " salvaged as " + std::to_string(kVersion);
            return;
        }
        fail(StreamStatus::Corrupt,
             "unsupported profile version " +
                 std::to_string(stream_version) +
                 " (supported: " + std::to_string(kMinVersion) +
                 ".." + std::to_string(kVersion) + ")");
    }
}

StreamStatus
RecordStreamReader::fail(StreamStatus status, std::string message)
{
    state = status;
    detail = std::move(message);
    return state;
}

StreamStatus
RecordStreamReader::next(std::string_view &payload)
{
    if (state != StreamStatus::Ok)
        return state;
    for (;;) {
        if (chunk_remaining == 0) {
            const StreamStatus loaded = loadChunk();
            if (loaded != StreamStatus::Ok)
                return loaded;
        }

        if (chunk_offset + 4 > chunk.size()) {
            if (salvage) {
                // The CRC passed but the record framing is off:
                // drop what remains of this chunk.
                ++dropped_chunks;
                chunk_remaining = 0;
                continue;
            }
            return fail(StreamStatus::Corrupt,
                        "record length field overruns its chunk");
        }
        std::uint32_t length = 0;
        for (int i = 3; i >= 0; --i) {
            length = (length << 8) |
                static_cast<unsigned char>(
                    chunk[chunk_offset + i]);
        }
        if (chunk_offset + 4 + length > chunk.size()) {
            if (salvage) {
                ++dropped_chunks;
                chunk_remaining = 0;
                continue;
            }
            chunk_offset += 4;
            return fail(StreamStatus::Corrupt,
                        "record payload overruns its chunk");
        }
        chunk_offset += 4;
        payload = std::string_view(chunk.data() + chunk_offset,
                                   length);
        chunk_offset += length;
        --chunk_remaining;
        if (chunk_remaining == 0 && chunk_offset != chunk.size()) {
            if (!salvage) {
                return fail(
                    StreamStatus::Corrupt,
                    "trailing bytes after the last chunk record");
            }
            // Salvage: the record itself is intact; surrender the
            // unaccounted tail bytes and keep the payload.
            skipped_bytes += chunk.size() - chunk_offset;
            chunk_offset = chunk.size();
        }
        ++produced;
        return StreamStatus::Ok;
    }
}

StreamStatus
RecordStreamReader::loadChunk()
{
    for (;;) {
        std::uint32_t marker;
        if (resynced_marker != 0) {
            marker = resynced_marker;
            resynced_marker = 0;
        } else if (getU32(stream, marker)) {
            read_bytes += 4;
        } else {
            if (salvage) {
                truncated_tail = true;
                state = StreamStatus::End;
                return state;
            }
            return fail(StreamStatus::Truncated,
                        "stream ended without an end marker");
        }
        if (marker == kEndMarker) {
            std::uint64_t declared;
            if (getU64(stream, declared))
                read_bytes += 8;
            else {
                if (salvage) {
                    truncated_tail = true;
                    state = StreamStatus::End;
                    return state;
                }
                return fail(StreamStatus::Truncated,
                            "stream ended inside the end marker");
            }
            if (declared != produced) {
                if (salvage) {
                    if (declared > produced)
                        dropped_records = declared - produced;
                    state = StreamStatus::End;
                    return state;
                }
                return fail(
                    StreamStatus::Corrupt,
                    "end marker declares " +
                        std::to_string(declared) + " records but " +
                        std::to_string(produced) + " were read");
            }
            state = StreamStatus::End;
            return state;
        }
        if (marker != kChunkMarker) {
            if (salvage) {
                ++dropped_chunks;
                const StreamStatus rec =
                    recover("bad chunk marker");
                if (rec != StreamStatus::Ok)
                    return rec;
                continue;
            }
            return fail(StreamStatus::Corrupt, "bad chunk marker");
        }

        std::uint32_t record_count, payload_size, checksum;
        if (getU32(stream, record_count) &&
            getU32(stream, payload_size) &&
            getU32(stream, checksum)) {
            read_bytes += 12;
        } else {
            if (salvage) {
                truncated_tail = true;
                state = StreamStatus::End;
                return state;
            }
            return fail(StreamStatus::Truncated,
                        "stream ended inside a chunk header");
        }
        if (record_count == 0 || payload_size > kMaxChunkPayload) {
            if (salvage) {
                // The header fields cannot be trusted to skip by;
                // rescan for the next marker instead.
                ++dropped_chunks;
                const StreamStatus rec =
                    recover("implausible chunk header");
                if (rec != StreamStatus::Ok)
                    return rec;
                continue;
            }
            if (record_count == 0)
                return fail(StreamStatus::Corrupt, "empty chunk");
            return fail(StreamStatus::Corrupt,
                        "implausible chunk payload size " +
                            std::to_string(payload_size));
        }
        // The one buffer the reader owns: capacity is retained
        // across chunks, so growth happens only until the largest
        // chunk has been seen — the steady state reads without
        // touching the heap.
        if (payload_size > chunk.capacity())
            ++buffer_growths;
        chunk.resize(payload_size);
        if (stream.read(chunk.data(),
                        static_cast<std::streamsize>(payload_size)))
            read_bytes += payload_size;
        else {
            if (salvage) {
                ++dropped_chunks;
                truncated_tail = true;
                state = StreamStatus::End;
                return state;
            }
            return fail(StreamStatus::Truncated,
                        "stream ended inside a chunk payload");
        }
        if (crc32(chunk) != checksum) {
            if (salvage) {
                // The chunk is structurally aligned: the stream is
                // already positioned on the next marker, so simply
                // drop this one.
                ++dropped_chunks;
                continue;
            }
            return fail(StreamStatus::Corrupt,
                        "chunk checksum mismatch");
        }
        chunk_offset = 0;
        chunk_remaining = record_count;
        return StreamStatus::Ok;
    }
}

StreamStatus
RecordStreamReader::recover(const std::string &why)
{
    if (!detail.empty())
        detail += "; ";
    detail += "salvage: " + why;
    // Both markers read LSB-first, so on the wire they appear in
    // stream order as "CHNK"/"ENDS": a byte-by-byte sliding window
    // matched the same way getU32 assembles values finds them.
    std::uint32_t window = 0;
    std::uint64_t consumed = 0;
    char byte;
    while (stream.get(byte)) {
        ++read_bytes;
        window = (window >> 8) |
            (static_cast<std::uint32_t>(
                 static_cast<unsigned char>(byte))
             << 24);
        ++consumed;
        if (consumed >= 4 &&
            (window == kChunkMarker || window == kEndMarker)) {
            skipped_bytes += consumed - 4;
            resynced_marker = window;
            return StreamStatus::Ok;
        }
    }
    skipped_bytes += consumed;
    truncated_tail = true;
    state = StreamStatus::End;
    return state;
}

} // namespace tpupoint

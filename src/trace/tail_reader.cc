#include "trace/tail_reader.hh"

#include <algorithm>
#include <cstring>
#include <fstream>

#include "trace/checksum.hh"
#include "trace/wire.hh"

namespace tpupoint {

namespace {

/** Fixed-size prefix of every chunk: marker, count, size, crc. */
constexpr std::uint64_t kChunkHeaderBytes = 16;

/** Fixed size of the end unit: marker plus declared total. */
constexpr std::uint64_t kEndBytes = 12;

/** Read-block size while resynchronizing. */
constexpr std::size_t kResyncBlock = 64 * 1024;

std::uint32_t
loadU32(const char *bytes)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(
                 static_cast<unsigned char>(bytes[i]))
            << (8 * i);
    return v;
}

std::uint64_t
loadU64(const char *bytes)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(bytes[i]))
            << (8 * i);
    return v;
}

/** Read exactly @p size bytes at @p at, or report failure. */
bool
readAt(std::ifstream &in, std::uint64_t at, char *into,
       std::uint64_t size)
{
    in.clear();
    in.seekg(static_cast<std::streamoff>(at));
    in.read(into, static_cast<std::streamsize>(size));
    return in.gcount() == static_cast<std::streamsize>(size);
}

} // namespace

TailReader::TailReader(std::string path,
                       const TailReaderOptions &options)
    : file_path(std::move(path)), opts(options)
{
}

bool
TailReader::failOrResync(const std::string &why)
{
    detail = why;
    if (opts.salvage) {
        stage = Stage::Resync;
        return true;
    }
    stage = Stage::Broken;
    return false;
}

TailPoll
TailReader::poll(const RecordHook &on_record,
                 const ChunkHook &on_chunk,
                 std::uint64_t offset_limit)
{
    TailPoll out;
    if (stage == Stage::Done) {
        out.status = TailStatus::Complete;
        return out;
    }
    if (stage == Stage::Broken) {
        out.status = TailStatus::Damaged;
        return out;
    }

    std::ifstream in(file_path, std::ios::binary);
    if (!in)
        return out; // Not spooled yet: Pending, nothing consumed.
    in.seekg(0, std::ios::end);
    const auto end_pos = in.tellg();
    if (end_pos < 0)
        return out;
    // A limit caps what this pass may see, never what was already
    // consumed — clamping to `offset` keeps `avail` at zero
    // (Pending) instead of underflowing when a caller passes a
    // limit at or below the current position.
    const auto size = std::max(
        offset,
        std::min(static_cast<std::uint64_t>(end_pos),
                 offset_limit));
    if (static_cast<std::uint64_t>(end_pos) < offset) {
        // The file shrank under us — a writer never truncates, so
        // the consumed prefix is gone. Strict mode gives up;
        // salvage waits for the file to grow back past the offset
        // (a copy-then-rename spooler can look like this briefly).
        if (!opts.salvage) {
            detail = "file shrank below the consumed offset";
            stage = Stage::Broken;
            out.status = TailStatus::Damaged;
        }
        return out;
    }

    const auto consume = [&](std::uint64_t bytes) {
        offset += bytes;
        out.bytes += bytes;
    };

    char header[kChunkHeaderBytes];
    for (;;) {
        const std::uint64_t avail = size - offset;
        switch (stage) {
          case Stage::Header: {
            if (avail < 8)
                return out;
            if (!readAt(in, offset, header, 8))
                return out;
            if (std::memcmp(header, wire::kMagic,
                            sizeof(wire::kMagic)) != 0) {
                // A damaged header loses nothing but the version:
                // scan for the first chunk marker and carry on.
                if (!failOrResync("bad magic (not a TPUPoint "
                                  "profile)")) {
                    out.status = TailStatus::Damaged;
                    return out;
                }
                continue;
            }
            stream_version = loadU32(header + 4);
            if (stream_version < wire::kMinVersion ||
                stream_version > wire::kVersion) {
                if (!opts.salvage) {
                    detail = "unsupported profile version " +
                        std::to_string(stream_version);
                    stage = Stage::Broken;
                    out.status = TailStatus::Damaged;
                    return out;
                }
                detail = "version " +
                    std::to_string(stream_version) +
                    " salvaged as " +
                    std::to_string(wire::kVersion);
            }
            consume(8);
            stage = Stage::Chunks;
            continue;
          }

          case Stage::Chunks: {
            if (avail < 4)
                return out;
            if (!readAt(in, offset, header, 4))
                return out;
            const std::uint32_t marker = loadU32(header);

            if (marker == wire::kEndMarker) {
                if (avail < kEndBytes)
                    return out; // End marker still flushing.
                if (!readAt(in, offset + 4, header, 8))
                    return out;
                const std::uint64_t declared = loadU64(header);
                if (declared != produced && !opts.salvage) {
                    detail = "end marker declares " +
                        std::to_string(declared) +
                        " records, stream produced " +
                        std::to_string(produced);
                    stage = Stage::Broken;
                    out.status = TailStatus::Damaged;
                    return out;
                }
                if (declared > produced)
                    dropped_records += declared - produced;
                consume(kEndBytes);
                stage = Stage::Done;
                out.status = TailStatus::Complete;
                return out;
            }

            if (marker != wire::kChunkMarker) {
                ++dropped_chunks;
                if (!failOrResync("bad chunk marker")) {
                    out.status = TailStatus::Damaged;
                    return out;
                }
                continue;
            }

            if (avail < kChunkHeaderBytes)
                return out; // Chunk header mid-write.
            if (!readAt(in, offset, header, kChunkHeaderBytes))
                return out;
            const std::uint32_t record_count = loadU32(header + 4);
            const std::uint32_t payload_size = loadU32(header + 8);
            const std::uint32_t checksum = loadU32(header + 12);

            if (record_count == 0 ||
                payload_size > wire::kMaxChunkPayload) {
                // An implausible header is damage, not a short
                // tail: the declared size cannot be trusted to
                // wait on. Skip the marker and rescan.
                ++dropped_chunks;
                if (!failOrResync("implausible chunk header")) {
                    out.status = TailStatus::Damaged;
                    return out;
                }
                consume(4);
                skipped_bytes += 4;
                continue;
            }

            if (avail < kChunkHeaderBytes + payload_size)
                return out; // Payload mid-write: wait for it.

            buffer.resize(payload_size);
            if (!readAt(in, offset + kChunkHeaderBytes,
                        buffer.data(), payload_size))
                return out;
            if (crc32(buffer) != checksum) {
                // The framing around a bad-checksum chunk is
                // intact, so skip exactly this chunk and keep
                // going — no rescan needed.
                ++dropped_chunks;
                if (!opts.salvage) {
                    detail = "chunk checksum mismatch";
                    stage = Stage::Broken;
                    out.status = TailStatus::Damaged;
                    return out;
                }
                detail = "chunk checksum mismatch";
                consume(kChunkHeaderBytes + payload_size);
                skipped_bytes += kChunkHeaderBytes + payload_size;
                continue;
            }

            // The chunk is whole and verified: deliver its records.
            std::size_t at = 0;
            std::uint32_t remaining = record_count;
            std::size_t delivered = 0;
            bool framing_ok = true;
            while (remaining > 0) {
                if (at + 4 > buffer.size()) {
                    framing_ok = false;
                    break;
                }
                const std::uint32_t record_size =
                    loadU32(buffer.data() + at);
                if (at + 4 + record_size > buffer.size()) {
                    framing_ok = false;
                    break;
                }
                if (on_record)
                    on_record(std::string_view(
                        buffer.data() + at + 4, record_size));
                at += 4 + static_cast<std::size_t>(record_size);
                --remaining;
                ++produced;
                ++delivered;
            }
            if (!framing_ok || at != buffer.size()) {
                // Checksum passed but the record framing inside
                // disagrees with the header counts — writer bug or
                // version skew. The records already delivered
                // stand; the rest of the chunk is lost.
                ++dropped_chunks;
                if (!opts.salvage) {
                    detail = "chunk record framing is inconsistent";
                    stage = Stage::Broken;
                    out.status = TailStatus::Damaged;
                    return out;
                }
                detail = "chunk record framing is inconsistent";
                skipped_bytes += buffer.size() - at;
            }
            consume(kChunkHeaderBytes + payload_size);
            ++chunks_consumed;
            ++out.chunks;
            out.records += delivered;
            if (on_chunk)
                on_chunk(delivered);
            continue;
          }

          case Stage::Resync: {
            // Scan the available bytes for the literal "CHNK" or
            // "ENDS" byte sequence. Everything skipped over is
            // damage; a marker candidate hands control back to the
            // chunk loop (which re-validates it structurally). No
            // match keeps the last 3 bytes unconsumed so a marker
            // torn across polls is still found.
            if (avail < 4)
                return out;
            char block[kResyncBlock];
            bool found = false;
            while (size - offset >= 4 && !found) {
                const std::uint64_t want = std::min<std::uint64_t>(
                    size - offset, kResyncBlock);
                if (!readAt(in, offset, block, want))
                    return out;
                for (std::uint64_t i = 0; i + 4 <= want; ++i) {
                    const std::uint32_t window =
                        loadU32(block + i);
                    if (window == wire::kChunkMarker ||
                        window == wire::kEndMarker) {
                        consume(i);
                        skipped_bytes += i;
                        found = true;
                        break;
                    }
                }
                if (!found) {
                    // Keep a 3-byte overlap for a split marker.
                    const std::uint64_t advance = want - 3;
                    consume(advance);
                    skipped_bytes += advance;
                }
            }
            if (!found)
                return out;
            stage = Stage::Chunks;
            continue;
          }

          case Stage::Done:
            out.status = TailStatus::Complete;
            return out;
          case Stage::Broken:
            out.status = TailStatus::Damaged;
            return out;
        }
    }
}

} // namespace tpupoint

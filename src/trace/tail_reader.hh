/**
 * @file
 * TailReader: the incremental, tail-following complement to
 * RecordStreamReader. A batch reader owns an open stream and walks
 * it to the end marker in one pass; a serve session instead watches
 * a profile that is still being written — the file appears, grows
 * chunk by chunk, may pause for seconds between flushes, and only
 * eventually (if the writer survives) gains its end marker.
 *
 * TailReader keeps a byte offset into the file and, on each poll(),
 * consumes every *complete* chunk that has appeared since the last
 * poll without re-reading anything before the offset. The crucial
 * distinction it draws — the one a batch reader cannot — is between
 * "the bytes stop mid-chunk, more may come" (TailStatus::Pending:
 * keep watching, nothing is consumed past the last whole chunk) and
 * "the bytes present are structurally wrong" (damage: a corrupt
 * CRC, a bad marker). Damage is handled with the salvage semantics
 * of the batch reader — drop the chunk, resynchronize on the next
 * marker, count what was lost — so a live session survives a torn
 * write the same way offline salvage survives a damaged file.
 */

#ifndef TPUPOINT_TRACE_TAIL_READER_HH
#define TPUPOINT_TRACE_TAIL_READER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace tpupoint {

/** Outcome of one TailReader::poll() pass. */
enum class TailStatus {
    /** No end marker yet; the tail may still grow. */
    Pending,

    /** The end marker was consumed; the stream is finished. */
    Complete,

    /**
     * Structural damage in strict (non-salvage) mode. Terminal:
     * further polls return Damaged without consuming bytes.
     */
    Damaged,
};

/** What one poll() pass did. */
struct TailPoll
{
    TailStatus status = TailStatus::Pending;

    /** Record payloads delivered by this poll. */
    std::uint64_t records = 0;

    /** Whole chunks consumed by this poll. */
    std::uint64_t chunks = 0;

    /** Bytes consumed (offset advance) by this poll. */
    std::uint64_t bytes = 0;
};

/** TailReader knobs. */
struct TailReaderOptions
{
    /**
     * Drop damaged chunks and resynchronize instead of parking the
     * reader in Damaged. On for serve sessions — a live trace that
     * tore one chunk should keep streaming.
     */
    bool salvage = true;
};

/**
 * Incremental reader over a growing record-stream file. Not
 * thread-safe; a serve session owns one and polls it from one task
 * at a time.
 */
class TailReader
{
  public:
    /** Called once per record payload (view valid for the call). */
    using RecordHook = std::function<void(std::string_view)>;

    /**
     * Called after each whole chunk's records were delivered, with
     * the record count of that chunk — the per-chunk ingest-latency
     * measurement point.
     */
    using ChunkHook = std::function<void(std::size_t records)>;

    explicit TailReader(std::string path,
                        const TailReaderOptions &options = {});

    /** poll() with no byte limit. */
    static constexpr std::uint64_t kNoLimit = ~0ull;

    /**
     * Consume everything complete that the file holds beyond the
     * current offset. A file that does not exist yet, or whose tail
     * stops mid-header/mid-chunk, reports Pending and consumes
     * nothing of the incomplete unit — the next poll re-examines it.
     *
     * @param offset_limit Treat the file as ending at this byte
     *     offset: nothing at or past it is consumed. The crash-
     *     recovery replay bound — a restarted serve session replays
     *     its spool file up to the journal's committed offset
     *     (every commit is a unit boundary, so the reader lands
     *     exactly on the limit), then continues live past it.
     */
    TailPoll poll(const RecordHook &on_record,
                  const ChunkHook &on_chunk = nullptr,
                  std::uint64_t offset_limit = kNoLimit);

    /** Terminal: the end marker was consumed. */
    bool complete() const { return stage == Stage::Done; }

    /** Terminal: strict-mode structural damage. */
    bool damaged() const { return stage == Stage::Broken; }

    /** Human-readable detail for damage/salvage events. */
    const std::string &error() const { return detail; }

    /** Container version (0 until the header has been read). */
    std::uint32_t version() const { return stream_version; }

    /** Record payloads delivered over the reader's lifetime. */
    std::uint64_t recordsProduced() const { return produced; }

    /** Current byte offset into the file (consumed prefix). */
    std::uint64_t bytesConsumed() const { return offset; }

    /** Whole chunks consumed over the reader's lifetime. */
    std::uint64_t chunksConsumed() const { return chunks_consumed; }

    /** Salvage: chunks dropped to structural damage. */
    std::uint64_t chunksDropped() const { return dropped_chunks; }

    /** Salvage: bytes skipped while resynchronizing. */
    std::uint64_t bytesSkipped() const { return skipped_bytes; }

    /** Salvage: records the end marker declared but we never saw. */
    std::uint64_t recordsDropped() const { return dropped_records; }

    /** Any damage was encountered at all. */
    bool
    sawDamage() const
    {
        return dropped_chunks > 0 || skipped_bytes > 0 ||
            dropped_records > 0;
    }

    /** The watched path. */
    const std::string &path() const { return file_path; }

  private:
    enum class Stage {
        Header, ///< Waiting for the 8-byte container header.
        Chunks, ///< At a marker boundary (the steady state).
        Resync, ///< Salvage: scanning forward for a marker.
        Done,   ///< End marker consumed.
        Broken, ///< Strict-mode damage; terminal.
    };

    /** Enter Broken (strict) or Resync (salvage) on damage. */
    bool failOrResync(const std::string &why);

    std::string file_path;
    TailReaderOptions opts;

    Stage stage = Stage::Header;
    std::uint64_t offset = 0;
    std::uint32_t stream_version = 0;
    std::string detail;

    /** Reusable chunk payload buffer (capacity retained). */
    std::string buffer;

    std::uint64_t produced = 0;
    std::uint64_t chunks_consumed = 0;
    std::uint64_t dropped_chunks = 0;
    std::uint64_t skipped_bytes = 0;
    std::uint64_t dropped_records = 0;
};

} // namespace tpupoint

#endif // TPUPOINT_TRACE_TAIL_READER_HH

/**
 * @file
 * RecordSpool: the bounded buffer between TPUPoint-Profiler's
 * profiling thread and its recording thread. Harvested records are
 * framed through a RecordStreamWriter whose open chunk is the
 * spool; when the buffered bytes exceed the configured capacity the
 * producer is considered stalled (the paper's recording thread
 * would block on cloud-storage bandwidth) — the stall is counted
 * and the chunk force-flushed so host memory stays bounded no
 * matter how long the run is.
 *
 * The sink is optional: with none attached the framed bytes are
 * counted and discarded, which is the profiler's "recording thread
 * disabled" accounting mode.
 */

#ifndef TPUPOINT_TRACE_SPOOL_HH
#define TPUPOINT_TRACE_SPOOL_HH

#include <cstdint>
#include <memory>
#include <ostream>
#include <streambuf>
#include <string_view>

#include "trace/record_stream.hh"

namespace tpupoint {

/** RecordSpool configuration. */
struct RecordSpoolOptions
{
    /** Chunking of the underlying record stream. */
    RecordStreamOptions stream;

    /**
     * Backpressure threshold: a push that finds more than this
     * many bytes already buffered counts a stall and forces a
     * flush.
     */
    std::size_t max_buffered_bytes = 64 * 1024;
};

/** Bounded-memory record spool writing one record stream. */
class RecordSpool
{
  public:
    /**
     * @param sink Destination stream, or nullptr to count and
     *     discard (accounting-only mode).
     */
    explicit RecordSpool(std::ostream *sink,
                         const RecordSpoolOptions &options = {});

    RecordSpool(const RecordSpool &) = delete;
    RecordSpool &operator=(const RecordSpool &) = delete;

    /** Spool one record payload. */
    void push(std::string_view payload);

    /** Flush buffered records and seal the stream. Idempotent. */
    void finish();

    /** Records accepted so far. */
    std::uint64_t records() const { return writer.records(); }

    /**
     * Bytes accepted so far as they will reach the sink: payload,
     * length framing, chunk headers, and the container header. By
     * construction bytesSpooled() == bytesFlushed() after finish(),
     * so the traffic charged to storage equals the bytes actually
     * written.
     */
    std::uint64_t bytesSpooled() const
    {
        return writer.bytesWritten() + writer.pendingBytes();
    }

    /** Bytes already pushed through to the sink. */
    std::uint64_t bytesFlushed() const
    {
        return writer.bytesWritten();
    }

    /** Bytes currently buffered in the open chunk. */
    std::size_t bufferedBytes() const
    {
        return writer.pendingBytes();
    }

    /** Sealed chunks pushed to the sink so far. */
    std::uint64_t chunksSpooled() const
    {
        return writer.chunksWritten();
    }

    /** Times a push hit the backpressure threshold. */
    std::uint64_t stalls() const { return stall_count; }

  private:
    /** Counting bit-bucket used when no sink is attached. */
    class NullBuffer : public std::streambuf
    {
      protected:
        int overflow(int ch) override { return ch; }

        std::streamsize
        xsputn(const char *, std::streamsize n) override
        {
            return n;
        }
    };

    NullBuffer null_buffer;
    std::ostream null_stream;
    RecordSpoolOptions opts;
    RecordStreamWriter writer;
    std::uint64_t stall_count = 0;
};

} // namespace tpupoint

#endif // TPUPOINT_TRACE_SPOOL_HH

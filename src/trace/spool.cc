#include "trace/spool.hh"

namespace tpupoint {

RecordSpool::RecordSpool(std::ostream *sink,
                         const RecordSpoolOptions &options)
    : null_stream(&null_buffer), opts(options),
      writer(sink ? *sink : null_stream, options.stream)
{
}

void
RecordSpool::push(std::string_view payload)
{
    if (writer.pendingBytes() + payload.size() >
        opts.max_buffered_bytes &&
        writer.pendingRecords() > 0) {
        // The bounded buffer is full: the profiling thread would
        // block here while the recording thread drains.
        ++stall_count;
        writer.flush();
    }
    writer.append(payload);
}

void
RecordSpool::finish()
{
    writer.finish();
}

} // namespace tpupoint

#include "trace/checksum.hh"

#include <array>
#include <bit>
#include <cstring>

namespace tpupoint {

namespace {

/**
 * Slice-by-8 CRC-32 tables, built once at first use: table[0] is
 * the classic reflected byte table, table[k][b] extends it by k
 * more zero bytes. Eight bytes fold per iteration with eight
 * independent loads, which keeps the checksum off the profile of
 * chunked reads; the computed CRC is bit-identical to the bytewise
 * form.
 */
using CrcTables = std::array<std::array<std::uint32_t, 256>, 8>;

CrcTables
makeTables()
{
    CrcTables tables{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t value = i;
        for (int bit = 0; bit < 8; ++bit) {
            value = (value & 1) ? 0xedb88320u ^ (value >> 1)
                                : value >> 1;
        }
        tables[0][i] = value;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t value = tables[0][i];
        for (std::size_t k = 1; k < 8; ++k) {
            value = tables[0][value & 0xffu] ^ (value >> 8);
            tables[k][i] = value;
        }
    }
    return tables;
}

} // namespace

std::uint32_t
crc32(const void *data, std::size_t size)
{
    static const CrcTables tables = makeTables();
    const auto *bytes = static_cast<const unsigned char *>(data);
    std::uint32_t crc = 0xffffffffu;
    // The 8-byte folding loads u32s little-endian; fall back to
    // the byte loop elsewhere (same CRC either way).
    while (std::endian::native == std::endian::little &&
           size >= 8) {
        std::uint32_t low;
        std::uint32_t high;
        std::memcpy(&low, bytes, 4);
        std::memcpy(&high, bytes + 4, 4);
        low ^= crc;
        crc = tables[7][low & 0xffu] ^
              tables[6][(low >> 8) & 0xffu] ^
              tables[5][(low >> 16) & 0xffu] ^
              tables[4][(low >> 24) & 0xffu] ^
              tables[3][high & 0xffu] ^
              tables[2][(high >> 8) & 0xffu] ^
              tables[1][(high >> 16) & 0xffu] ^
              tables[0][(high >> 24) & 0xffu];
        bytes += 8;
        size -= 8;
    }
    for (std::size_t i = 0; i < size; ++i)
        crc = tables[0][(crc ^ bytes[i]) & 0xffu] ^ (crc >> 8);
    return crc ^ 0xffffffffu;
}

} // namespace tpupoint

#include "trace/checksum.hh"

#include <array>

namespace tpupoint {

namespace {

/** Reflected CRC-32 lookup table, built once at first use. */
std::array<std::uint32_t, 256>
makeTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t value = i;
        for (int bit = 0; bit < 8; ++bit) {
            value = (value & 1) ? 0xedb88320u ^ (value >> 1)
                                : value >> 1;
        }
        table[i] = value;
    }
    return table;
}

} // namespace

std::uint32_t
crc32(const void *data, std::size_t size)
{
    static const std::array<std::uint32_t, 256> table =
        makeTable();
    const auto *bytes = static_cast<const unsigned char *>(data);
    std::uint32_t crc = 0xffffffffu;
    for (std::size_t i = 0; i < size; ++i)
        crc = table[(crc ^ bytes[i]) & 0xffu] ^ (crc >> 8);
    return crc ^ 0xffffffffu;
}

} // namespace tpupoint

/**
 * @file
 * Little-endian byte-buffer codecs shared by the record-stream
 * transport and the profile-record wire format. ByteWriter appends
 * fixed-width fields to a growable buffer; ByteReader consumes them
 * from a borrowed byte span with explicit bounds checking, so a
 * malformed payload turns into a decode failure instead of a read
 * past the end of the chunk.
 */

#ifndef TPUPOINT_TRACE_BYTES_HH
#define TPUPOINT_TRACE_BYTES_HH

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <utility>

namespace tpupoint {

/** Append-only little-endian encoder over an owned buffer. */
class ByteWriter
{
  public:
    void
    putU32(std::uint32_t v)
    {
        char bytes[4];
        for (int i = 0; i < 4; ++i)
            bytes[i] = static_cast<char>(v >> (8 * i));
        buffer.append(bytes, sizeof(bytes));
    }

    void
    putU64(std::uint64_t v)
    {
        char bytes[8];
        for (int i = 0; i < 8; ++i)
            bytes[i] = static_cast<char>(v >> (8 * i));
        buffer.append(bytes, sizeof(bytes));
    }

    void putI64(std::int64_t v)
    {
        putU64(static_cast<std::uint64_t>(v));
    }

    void
    putF64(double v)
    {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        putU64(bits);
    }

    void
    putString(std::string_view s)
    {
        putU32(static_cast<std::uint32_t>(s.size()));
        buffer.append(s.data(), s.size());
    }

    void putBytes(std::string_view s)
    {
        buffer.append(s.data(), s.size());
    }

    std::size_t size() const { return buffer.size(); }

    const std::string &str() const & { return buffer; }

    std::string str() && { return std::move(buffer); }

  private:
    std::string buffer;
};

/**
 * Bounds-checked little-endian decoder over a borrowed span. Every
 * accessor returns false once the span is exhausted; the caller
 * treats that as a malformed payload.
 */
class ByteReader
{
  public:
    explicit ByteReader(std::string_view bytes)
        : cursor(bytes.data()), limit(bytes.data() + bytes.size())
    {
    }

    bool
    getU32(std::uint32_t &v)
    {
        if (remaining() < 4)
            return false;
        v = 0;
        for (int i = 3; i >= 0; --i) {
            v = (v << 8) |
                static_cast<unsigned char>(cursor[i]);
        }
        cursor += 4;
        return true;
    }

    bool
    getU64(std::uint64_t &v)
    {
        if (remaining() < 8)
            return false;
        v = 0;
        for (int i = 7; i >= 0; --i) {
            v = (v << 8) |
                static_cast<unsigned char>(cursor[i]);
        }
        cursor += 8;
        return true;
    }

    bool
    getI64(std::int64_t &v)
    {
        std::uint64_t u;
        if (!getU64(u))
            return false;
        v = static_cast<std::int64_t>(u);
        return true;
    }

    bool
    getF64(double &v)
    {
        std::uint64_t bits;
        if (!getU64(bits))
            return false;
        std::memcpy(&v, &bits, sizeof(v));
        return true;
    }

    bool
    getString(std::string &s)
    {
        std::uint32_t length;
        if (!getU32(length) || remaining() < length)
            return false;
        s.assign(cursor, length);
        cursor += length;
        return true;
    }

    /** Borrow @p length bytes without copying. */
    bool
    getBytes(std::size_t length, std::string_view &view)
    {
        if (remaining() < length)
            return false;
        view = std::string_view(cursor, length);
        cursor += length;
        return true;
    }

    std::size_t remaining() const
    {
        return static_cast<std::size_t>(limit - cursor);
    }

    bool atEnd() const { return cursor == limit; }

  private:
    const char *cursor;
    const char *limit;
};

} // namespace tpupoint

#endif // TPUPOINT_TRACE_BYTES_HH

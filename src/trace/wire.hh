/**
 * @file
 * The record-stream wire constants, shared between the batch reader
 * (record_stream) and the tail-following reader (tail_reader). Both
 * must agree byte-for-byte on the framing — magic, markers, version
 * window, payload cap — so the constants live here once instead of
 * drifting apart in two translation units.
 *
 * The format itself is documented in record_stream.hh.
 */

#ifndef TPUPOINT_TRACE_WIRE_HH
#define TPUPOINT_TRACE_WIRE_HH

#include <cstdint>

namespace tpupoint {
namespace wire {

/** Stream header magic: the literal bytes "TPPF". */
constexpr char kMagic[4] = {'T', 'P', 'P', 'F'};

/**
 * Current container version, the one writers emit. v4: profile
 * records carry attempt-continuity meta-data (attempt index,
 * attempt-boundary markers). v5: records count events the collector
 * dropped after a transport cap. Each tail is appended to the
 * previous layout, so readers accept every version back to v3.
 */
constexpr std::uint32_t kVersion = 5;

/** Oldest container version readers still accept. */
constexpr std::uint32_t kMinVersion = 3;

/** Chunk marker; little-endian, so the wire bytes read "CHNK". */
constexpr std::uint32_t kChunkMarker = 0x4b4e4843u;

/** End marker; little-endian, so the wire bytes read "ENDS". */
constexpr std::uint32_t kEndMarker = 0x53444e45u;

/** Upper bound a chunk's declared payload size must respect; a
 *  corrupt length field must not drive a multi-gigabyte resize. */
constexpr std::uint32_t kMaxChunkPayload = 64u * 1024 * 1024;

} // namespace wire
} // namespace tpupoint

#endif // TPUPOINT_TRACE_WIRE_HH

/**
 * @file
 * CRC-32 (IEEE 802.3 polynomial) used to checksum every chunk of
 * the record-stream transport so corruption of a persisted profile
 * is detected at read time rather than surfacing as nonsense
 * analysis output.
 */

#ifndef TPUPOINT_TRACE_CHECKSUM_HH
#define TPUPOINT_TRACE_CHECKSUM_HH

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace tpupoint {

/** CRC-32 of @p size bytes at @p data. */
std::uint32_t crc32(const void *data, std::size_t size);

/** CRC-32 of a byte string. */
inline std::uint32_t
crc32(std::string_view bytes)
{
    return crc32(bytes.data(), bytes.size());
}

} // namespace tpupoint

#endif // TPUPOINT_TRACE_CHECKSUM_HH

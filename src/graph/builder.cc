#include "graph/builder.hh"

#include <algorithm>

#include "core/logging.hh"

namespace tpupoint {

namespace {

/** Flops per element for unary kinds. */
std::uint64_t
unaryFlopFactor(OpKind kind)
{
    switch (kind) {
      case OpKind::Tanh:
      case OpKind::Gelu:
      case OpKind::Rsqrt:
        return 8;
      case OpKind::Cast:
      case OpKind::Relu:
        return 1;
      default:
        return 1;
    }
}

} // namespace

GraphBuilder::GraphBuilder(std::string graph_name, DataType dflt)
    : building(std::move(graph_name)), default_dtype(dflt)
{
}

Graph
GraphBuilder::finish()
{
    building.validate();
    return std::move(building);
}

NodeId
GraphBuilder::emit(OpKind kind, std::string name,
                   std::vector<NodeId> inputs, TensorShape shape,
                   DataType type, std::uint64_t flops,
                   std::uint64_t bytes, bool mxu)
{
    Node node;
    node.kind = kind;
    node.name = std::move(name);
    node.inputs = std::move(inputs);
    node.shape = std::move(shape);
    node.dtype = type;
    node.flops = flops;
    node.bytes = bytes;
    node.mxu = mxu;
    return building.add(std::move(node));
}

const TensorShape &
GraphBuilder::shapeOf(NodeId id) const
{
    return building.node(id).shape;
}

DataType
GraphBuilder::typeOf(NodeId id) const
{
    return building.node(id).dtype;
}

std::uint64_t
GraphBuilder::bytesOf(NodeId id) const
{
    return shapeOf(id).numBytes(typeOf(id));
}

NodeId
GraphBuilder::infeed(const TensorShape &shape, const std::string &name,
                     DataType type)
{
    return emit(OpKind::InfeedDequeueTuple, name, {}, shape, type,
                0, shape.numBytes(type), false);
}

NodeId
GraphBuilder::infeed(const TensorShape &shape, const std::string &name)
{
    return infeed(shape, name, default_dtype);
}

NodeId
GraphBuilder::outfeed(NodeId value, const std::string &name)
{
    return emit(OpKind::OutfeedEnqueueTuple, name, {value},
                shapeOf(value), typeOf(value), 0, bytesOf(value),
                false);
}

NodeId
GraphBuilder::matmul(NodeId x, std::int64_t units,
                     const std::string &name)
{
    const TensorShape &in = shapeOf(x);
    if (in.rank() < 1)
        fatal("matmul: input must have rank >= 1");
    const std::int64_t k = in.dim(in.rank() - 1);
    const std::int64_t m = in.numElements() / std::max<std::int64_t>(
        k, 1);
    std::vector<std::int64_t> out_dims = in.dimensions();
    out_dims.back() = units;
    TensorShape out(std::move(out_dims));
    const std::size_t esize = dataTypeSize(typeOf(x));
    const std::uint64_t flops = 2ULL * m * k * units;
    const std::uint64_t bytes = bytesOf(x) +
        static_cast<std::uint64_t>(k) * units * esize +
        out.numBytes(typeOf(x));
    return emit(OpKind::MatMul, name, {x}, out, typeOf(x), flops,
                bytes, true);
}

NodeId
GraphBuilder::batchMatmul(NodeId a, NodeId b, const std::string &name)
{
    const TensorShape &sa = shapeOf(a);
    const TensorShape &sb = shapeOf(b);
    if (sa.rank() != sb.rank() || sa.rank() < 2)
        fatal("batchMatmul: rank mismatch for ", name);
    const std::size_t rank = sa.rank();
    for (std::size_t i = 0; i + 2 < rank; ++i) {
        if (sa.dim(i) != sb.dim(i))
            fatal("batchMatmul: batch dim mismatch for ", name);
    }
    const std::int64_t m = sa.dim(rank - 2);
    const std::int64_t k = sa.dim(rank - 1);
    if (sb.dim(rank - 2) != k)
        fatal("batchMatmul: contraction dim mismatch for ", name);
    const std::int64_t n = sb.dim(rank - 1);
    std::int64_t batch = 1;
    for (std::size_t i = 0; i + 2 < rank; ++i)
        batch *= sa.dim(i);
    std::vector<std::int64_t> out_dims = sa.dimensions();
    out_dims[rank - 1] = n;
    TensorShape out(std::move(out_dims));
    const std::uint64_t flops = 2ULL * batch * m * k * n;
    const std::uint64_t bytes = bytesOf(a) + bytesOf(b) +
        out.numBytes(typeOf(a));
    return emit(OpKind::MatMul, name, {a, b}, out, typeOf(a), flops,
                bytes, true);
}

NodeId
GraphBuilder::conv2d(NodeId x, std::int64_t out_channels,
                     std::int64_t kernel, std::int64_t stride,
                     const std::string &name)
{
    const TensorShape &in = shapeOf(x);
    if (in.rank() != 4)
        fatal("conv2d: expected NHWC input for ", name);
    const std::int64_t n = in.dim(0);
    const std::int64_t h = (in.dim(1) + stride - 1) / stride;
    const std::int64_t w = (in.dim(2) + stride - 1) / stride;
    const std::int64_t c = in.dim(3);
    TensorShape out({n, h, w, out_channels});
    const std::size_t esize = dataTypeSize(typeOf(x));
    const std::uint64_t flops = 2ULL * n * h * w * out_channels *
        kernel * kernel * c;
    const std::uint64_t weight_bytes =
        static_cast<std::uint64_t>(kernel) * kernel * c *
        out_channels * esize;
    const std::uint64_t bytes = bytesOf(x) + weight_bytes +
        out.numBytes(typeOf(x));
    return emit(OpKind::Conv2D, name, {x}, out, typeOf(x), flops,
                bytes, true);
}

NodeId
GraphBuilder::conv2dBackpropFilter(NodeId activations, NodeId grads,
                                   std::int64_t kernel,
                                   const std::string &name)
{
    const TensorShape &act = shapeOf(activations);
    const TensorShape &gs = shapeOf(grads);
    if (act.rank() != 4 || gs.rank() != 4)
        fatal("conv2dBackpropFilter: expected NHWC inputs for ",
              name);
    const std::int64_t c_in = act.dim(3);
    const std::int64_t c_out = gs.dim(3);
    TensorShape out({kernel, kernel, c_in, c_out});
    const std::uint64_t flops = 2ULL * gs.dim(0) * gs.dim(1) *
        gs.dim(2) * c_out * kernel * kernel * c_in;
    const std::uint64_t bytes = bytesOf(activations) +
        bytesOf(grads) + out.numBytes(typeOf(grads));
    return emit(OpKind::Conv2DBackpropFilter, name,
                {activations, grads}, out, typeOf(grads), flops,
                bytes, true);
}

NodeId
GraphBuilder::conv2dBackpropInput(NodeId grads,
                                  const TensorShape &input_shape,
                                  std::int64_t kernel,
                                  const std::string &name)
{
    const TensorShape &gs = shapeOf(grads);
    if (gs.rank() != 4 || input_shape.rank() != 4)
        fatal("conv2dBackpropInput: expected NHWC shapes for ",
              name);
    const std::uint64_t flops = 2ULL * gs.dim(0) * gs.dim(1) *
        gs.dim(2) * gs.dim(3) * kernel * kernel * input_shape.dim(3);
    const std::uint64_t bytes = bytesOf(grads) +
        input_shape.numBytes(typeOf(grads));
    return emit(OpKind::Conv2DBackpropInput, name, {grads},
                input_shape, typeOf(grads), flops, bytes, true);
}

NodeId
GraphBuilder::unary(OpKind kind, NodeId x, const std::string &name)
{
    const TensorShape &in = shapeOf(x);
    const std::uint64_t elems =
        static_cast<std::uint64_t>(in.numElements());
    return emit(kind, name, {x}, in, typeOf(x),
                elems * unaryFlopFactor(kind), 2 * bytesOf(x),
                false);
}

NodeId
GraphBuilder::binary(OpKind kind, NodeId a, NodeId b,
                     const std::string &name)
{
    const TensorShape &sa = shapeOf(a);
    const TensorShape &sb = shapeOf(b);
    const TensorShape &out =
        sa.numElements() >= sb.numElements() ? sa : sb;
    const std::uint64_t elems =
        static_cast<std::uint64_t>(out.numElements());
    const std::uint64_t bytes = bytesOf(a) + bytesOf(b) +
        out.numBytes(typeOf(a));
    return emit(kind, name, {a, b}, out, typeOf(a), elems, bytes,
                false);
}

NodeId
GraphBuilder::biasAdd(NodeId x, const std::string &name)
{
    const TensorShape &in = shapeOf(x);
    const std::uint64_t elems =
        static_cast<std::uint64_t>(in.numElements());
    return emit(OpKind::BiasAdd, name, {x}, in, typeOf(x), elems,
                2 * bytesOf(x), false);
}

NodeId
GraphBuilder::softmax(NodeId x, const std::string &name)
{
    const TensorShape &in = shapeOf(x);
    const std::uint64_t elems =
        static_cast<std::uint64_t>(in.numElements());
    return emit(OpKind::Softmax, name, {x}, in, typeOf(x),
                5 * elems, 2 * bytesOf(x), false);
}

NodeId
GraphBuilder::reduceAll(OpKind kind, NodeId x, const std::string &name)
{
    const TensorShape &in = shapeOf(x);
    const std::uint64_t elems =
        static_cast<std::uint64_t>(in.numElements());
    const std::uint64_t factor = (kind == OpKind::L2Loss) ? 2 : 1;
    return emit(kind, name, {x}, TensorShape{}, typeOf(x),
                factor * elems,
                bytesOf(x) + dataTypeSize(typeOf(x)), false);
}

NodeId
GraphBuilder::reduceLastAxis(OpKind kind, NodeId x,
                             const std::string &name)
{
    const TensorShape &in = shapeOf(x);
    if (in.rank() < 1)
        fatal("reduceLastAxis: scalar input for ", name);
    std::vector<std::int64_t> out_dims(
        in.dimensions().begin(), in.dimensions().end() - 1);
    TensorShape out(std::move(out_dims));
    const std::uint64_t elems =
        static_cast<std::uint64_t>(in.numElements());
    return emit(kind, name, {x}, out, typeOf(x), elems,
                bytesOf(x) + out.numBytes(typeOf(x)), false);
}

NodeId
GraphBuilder::batchNorm(NodeId x, const std::string &name)
{
    const TensorShape &in = shapeOf(x);
    const std::uint64_t elems =
        static_cast<std::uint64_t>(in.numElements());
    return emit(OpKind::FusedBatchNormV3, name, {x}, in, typeOf(x),
                10 * elems, 3 * bytesOf(x), false);
}

NodeId
GraphBuilder::batchNormGrad(NodeId grads, const std::string &name)
{
    const TensorShape &in = shapeOf(grads);
    const std::uint64_t elems =
        static_cast<std::uint64_t>(in.numElements());
    return emit(OpKind::FusedBatchNormGradV3, name, {grads}, in,
                typeOf(grads), 12 * elems, 3 * bytesOf(grads),
                false);
}

NodeId
GraphBuilder::layerNorm(NodeId x, const std::string &name)
{
    const TensorShape &in = shapeOf(x);
    const std::uint64_t elems =
        static_cast<std::uint64_t>(in.numElements());
    return emit(OpKind::LayerNorm, name, {x}, in, typeOf(x),
                8 * elems, 3 * bytesOf(x), false);
}

NodeId
GraphBuilder::layerNormGrad(NodeId grads, const std::string &name)
{
    const TensorShape &in = shapeOf(grads);
    const std::uint64_t elems =
        static_cast<std::uint64_t>(in.numElements());
    return emit(OpKind::LayerNormGrad, name, {grads}, in,
                typeOf(grads), 10 * elems, 3 * bytesOf(grads),
                false);
}

NodeId
GraphBuilder::applyOptimizer(OpKind kind, NodeId grads_in,
                             std::uint64_t param_count,
                             const std::string &name)
{
    const std::size_t esize = dataTypeSize(DataType::F32);
    const std::uint64_t flop_factor =
        (kind == OpKind::ApplyAdam) ? 12 : 2;
    const std::uint64_t byte_factor =
        (kind == OpKind::ApplyAdam) ? 6 : 3;
    return emit(kind, name, {grads_in}, TensorShape{},
                DataType::F32, flop_factor * param_count,
                byte_factor * param_count * esize, false);
}

NodeId
GraphBuilder::reshape(NodeId x, const TensorShape &shape,
                      const std::string &name)
{
    if (shape.numElements() != shapeOf(x).numElements()) {
        fatal("reshape: element count mismatch for ", name, ": ",
              shapeOf(x).toString(), " -> ", shape.toString());
    }
    return emit(OpKind::Reshape, name, {x}, shape, typeOf(x), 0,
                2 * bytesOf(x), false);
}

NodeId
GraphBuilder::transpose(NodeId x, const std::vector<int> &perm,
                        const std::string &name)
{
    const TensorShape &in = shapeOf(x);
    if (perm.size() != in.rank())
        fatal("transpose: permutation rank mismatch for ", name);
    std::vector<std::int64_t> out_dims(in.rank());
    for (std::size_t i = 0; i < perm.size(); ++i) {
        if (perm[i] < 0 || static_cast<std::size_t>(perm[i]) >=
            in.rank())
            fatal("transpose: bad permutation for ", name);
        out_dims[i] = in.dim(static_cast<std::size_t>(perm[i]));
    }
    return emit(OpKind::Transpose, name, {x},
                TensorShape(std::move(out_dims)), typeOf(x), 0,
                2 * bytesOf(x), false);
}

NodeId
GraphBuilder::copy(NodeId x, const std::string &name)
{
    return emit(OpKind::Copy, name, {x}, shapeOf(x), typeOf(x), 0,
                2 * bytesOf(x), false);
}

NodeId
GraphBuilder::concat(const std::vector<NodeId> &parts,
                     std::size_t axis, const std::string &name)
{
    if (parts.empty())
        fatal("concat: no inputs for ", name);
    const TensorShape &first = shapeOf(parts.front());
    if (axis >= first.rank())
        fatal("concat: axis out of range for ", name);
    std::vector<std::int64_t> out_dims = first.dimensions();
    std::uint64_t bytes = 0;
    std::int64_t axis_total = 0;
    for (const NodeId part : parts) {
        const TensorShape &s = shapeOf(part);
        if (s.rank() != first.rank())
            fatal("concat: rank mismatch for ", name);
        axis_total += s.dim(axis);
        bytes += bytesOf(part);
    }
    out_dims[axis] = axis_total;
    TensorShape out(std::move(out_dims));
    bytes += out.numBytes(typeOf(parts.front()));
    return emit(OpKind::Concat, name, parts, out,
                typeOf(parts.front()), 0, bytes, false);
}

NodeId
GraphBuilder::slice(NodeId x, std::int64_t count,
                    const std::string &name)
{
    const TensorShape &in = shapeOf(x);
    if (in.rank() < 1 || count > in.dim(0))
        fatal("slice: bad row count for ", name);
    std::vector<std::int64_t> out_dims = in.dimensions();
    out_dims[0] = count;
    TensorShape out(std::move(out_dims));
    return emit(OpKind::Slice, name, {x}, out, typeOf(x), 0,
                2 * out.numBytes(typeOf(x)), false);
}

NodeId
GraphBuilder::pad(NodeId x, std::int64_t amount,
                  const std::string &name)
{
    const TensorShape &in = shapeOf(x);
    if (in.rank() != 4)
        fatal("pad: expected NHWC input for ", name);
    TensorShape out({in.dim(0), in.dim(1) + 2 * amount,
                     in.dim(2) + 2 * amount, in.dim(3)});
    return emit(OpKind::Pad, name, {x}, out, typeOf(x), 0,
                bytesOf(x) + out.numBytes(typeOf(x)), false);
}

NodeId
GraphBuilder::gather(NodeId ids, std::int64_t width,
                     const std::string &name)
{
    const TensorShape &in = shapeOf(ids);
    std::vector<std::int64_t> out_dims = in.dimensions();
    out_dims.push_back(width);
    TensorShape out(std::move(out_dims));
    const std::uint64_t out_bytes = out.numBytes(default_dtype);
    return emit(OpKind::GatherV2, name, {ids}, out, default_dtype,
                0, bytesOf(ids) + 2 * out_bytes, false);
}

NodeId
GraphBuilder::oneHot(NodeId ids, std::int64_t depth,
                     const std::string &name)
{
    const TensorShape &in = shapeOf(ids);
    std::vector<std::int64_t> out_dims = in.dimensions();
    out_dims.push_back(depth);
    TensorShape out(std::move(out_dims));
    return emit(OpKind::OneHot, name, {ids}, out, default_dtype, 0,
                bytesOf(ids) + out.numBytes(default_dtype), false);
}

NodeId
GraphBuilder::pool(OpKind kind, NodeId x, std::int64_t window,
                   std::int64_t stride, const std::string &name)
{
    const TensorShape &in = shapeOf(x);
    if (in.rank() != 4)
        fatal("pool: expected NHWC input for ", name);
    TensorShape out({in.dim(0),
                     (in.dim(1) + stride - 1) / stride,
                     (in.dim(2) + stride - 1) / stride,
                     in.dim(3)});
    const std::uint64_t flops =
        static_cast<std::uint64_t>(out.numElements()) * window *
        window;
    return emit(kind, name, {x}, out, typeOf(x), flops,
                bytesOf(x) + out.numBytes(typeOf(x)), false);
}

NodeId
GraphBuilder::resizeNearest(NodeId x, std::int64_t factor,
                            const std::string &name)
{
    const TensorShape &in = shapeOf(x);
    if (in.rank() != 4)
        fatal("resizeNearest: expected NHWC input for ", name);
    TensorShape out({in.dim(0), in.dim(1) * factor,
                     in.dim(2) * factor, in.dim(3)});
    return emit(OpKind::ResizeNearestNeighbor, name, {x}, out,
                typeOf(x), 0,
                bytesOf(x) + out.numBytes(typeOf(x)), false);
}

NodeId
GraphBuilder::l2Loss(NodeId after, std::uint64_t param_count,
                     const std::string &name)
{
    const std::size_t esize = dataTypeSize(DataType::F32);
    return emit(OpKind::L2Loss, name, {after}, TensorShape{},
                DataType::F32, 2 * param_count,
                param_count * esize, false);
}

NodeId
GraphBuilder::shapeOp(OpKind kind, NodeId x,
                      const TensorShape &shape,
                      const std::string &name)
{
    const std::uint64_t out_elems =
        static_cast<std::uint64_t>(shape.numElements());
    return emit(kind, name, {x}, shape, typeOf(x), out_elems,
                bytesOf(x) + shape.numBytes(typeOf(x)), false);
}

NodeId
GraphBuilder::allReduce(NodeId after, std::uint64_t param_count,
                        const std::string &name)
{
    const std::size_t esize = dataTypeSize(DataType::F32);
    const std::uint64_t bytes = 2 * param_count * esize;
    return emit(OpKind::AllReduce, name, {after}, TensorShape{},
                DataType::F32, param_count, bytes, false);
}

} // namespace tpupoint

#include "graph/schedule.hh"

namespace tpupoint {

StepSchedule
extractSchedule(const Graph &graph)
{
    StepSchedule schedule;
    schedule.model = graph.name();

    // The infeed delivers one tuple per step regardless of how many
    // tensors the model declares: coalesce every infeed node into a
    // single dequeue op (at the first infeed's position), and every
    // outfeed node into a single enqueue op (at the last one's).
    std::size_t first_infeed = graph.size();
    std::size_t last_outfeed = graph.size();
    for (const Node &n : graph.nodes()) {
        const bool is_infeed = n.kind == OpKind::InfeedDequeueTuple ||
            n.kind == OpKind::Infeed;
        const bool is_outfeed =
            n.kind == OpKind::OutfeedEnqueueTuple ||
            n.kind == OpKind::Outfeed;
        if (is_infeed) {
            schedule.infeed_bytes += n.shape.numBytes(n.dtype);
            if (first_infeed == graph.size())
                first_infeed = n.id;
        }
        if (is_outfeed) {
            schedule.outfeed_bytes += n.shape.numBytes(n.dtype);
            last_outfeed = n.id;
        }
    }

    schedule.ops.reserve(graph.size());
    for (const Node &n : graph.nodes()) {
        const bool is_infeed = n.kind == OpKind::InfeedDequeueTuple ||
            n.kind == OpKind::Infeed;
        const bool is_outfeed =
            n.kind == OpKind::OutfeedEnqueueTuple ||
            n.kind == OpKind::Outfeed;

        ScheduledOp op;
        if (is_infeed) {
            if (n.id != first_infeed)
                continue; // coalesced into the first infeed
            op.kind = OpKind::InfeedDequeueTuple;
            op.name = "infeed";
            op.bytes = schedule.infeed_bytes;
        } else if (is_outfeed) {
            if (n.id != last_outfeed)
                continue; // coalesced into the last outfeed
            op.kind = OpKind::OutfeedEnqueueTuple;
            op.name = "outfeed";
            op.bytes = schedule.outfeed_bytes;
        } else {
            op.kind = n.kind;
            op.name = n.name;
            op.flops = n.flops;
            op.bytes = n.bytes;
            op.mxu = n.mxu;
        }
        schedule.total_flops += op.flops;
        schedule.total_bytes += op.bytes;
        if (op.mxu)
            schedule.mxu_flops += op.flops;
        schedule.ops.push_back(std::move(op));
    }
    return schedule;
}

} // namespace tpupoint

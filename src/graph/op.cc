#include "graph/op.hh"

#include "core/logging.hh"

namespace tpupoint {

const char *
opKindName(OpKind kind)
{
    switch (kind) {
      case OpKind::MatMul: return "MatMul";
      case OpKind::Conv2D: return "Conv2D";
      case OpKind::Conv2DBackpropFilter:
        return "Conv2DBackpropFilter";
      case OpKind::Conv2DBackpropInput:
        return "Conv2DBackpropInput";
      case OpKind::Mul: return "Mul";
      case OpKind::Add: return "Add";
      case OpKind::Sub: return "Sub";
      case OpKind::Maximum: return "Maximum";
      case OpKind::Minimum: return "Minimum";
      case OpKind::Relu: return "Relu";
      case OpKind::ReluGrad: return "ReluGrad";
      case OpKind::Tanh: return "Tanh";
      case OpKind::Gelu: return "Gelu";
      case OpKind::Softmax: return "Softmax";
      case OpKind::SoftmaxGrad: return "SoftmaxGrad";
      case OpKind::Cast: return "Cast";
      case OpKind::Sum: return "Sum";
      case OpKind::Mean: return "Mean";
      case OpKind::L2Loss: return "L2Loss";
      case OpKind::BiasAdd: return "BiasAdd";
      case OpKind::BiasAddGrad: return "BiasAddGrad";
      case OpKind::Rsqrt: return "Rsqrt";
      case OpKind::ApplyAdam: return "ApplyAdam";
      case OpKind::ApplyGradientDescent:
        return "ApplyGradientDescent";
      case OpKind::ArgMax: return "ArgMax";
      case OpKind::Equal: return "Equal";
      case OpKind::FusedBatchNormV3: return "FusedBatchNormV3";
      case OpKind::FusedBatchNormGradV3:
        return "FusedBatchNormGradV3";
      case OpKind::LayerNorm: return "LayerNorm";
      case OpKind::LayerNormGrad: return "LayerNormGrad";
      case OpKind::Reshape: return "Reshape";
      case OpKind::Transpose: return "Transpose";
      case OpKind::Copy: return "Copy";
      case OpKind::Concat: return "Concat";
      case OpKind::Slice: return "Slice";
      case OpKind::Pad: return "Pad";
      case OpKind::GatherV2: return "GatherV2";
      case OpKind::DynamicStitch: return "DynamicStitch";
      case OpKind::OneHot: return "OneHot";
      case OpKind::Squeeze: return "Squeeze";
      case OpKind::MaxPool: return "MaxPool";
      case OpKind::MaxPoolGrad: return "MaxPoolGrad";
      case OpKind::AvgPool: return "AvgPool";
      case OpKind::ResizeNearestNeighbor:
        return "ResizeNearestNeighbor";
      case OpKind::Infeed: return "Infeed";
      case OpKind::InfeedDequeueTuple: return "InfeedDequeueTuple";
      case OpKind::Outfeed: return "Outfeed";
      case OpKind::OutfeedEnqueueTuple:
        return "OutfeedEnqueueTuple";
      case OpKind::AllReduce: return "all-reduce";
      case OpKind::CrossReplicaSum: return "CrossReplicaSum";
      case OpKind::Fusion: return "fusion";
    }
    panic("opKindName: unknown OpKind");
}

OpClass
opKindClass(OpKind kind)
{
    switch (kind) {
      case OpKind::MatMul:
      case OpKind::Conv2D:
      case OpKind::Conv2DBackpropFilter:
      case OpKind::Conv2DBackpropInput:
        return OpClass::MxuCompute;

      case OpKind::Mul:
      case OpKind::Add:
      case OpKind::Sub:
      case OpKind::Maximum:
      case OpKind::Minimum:
      case OpKind::Relu:
      case OpKind::ReluGrad:
      case OpKind::Tanh:
      case OpKind::Gelu:
      case OpKind::Softmax:
      case OpKind::SoftmaxGrad:
      case OpKind::Cast:
      case OpKind::Sum:
      case OpKind::Mean:
      case OpKind::L2Loss:
      case OpKind::BiasAdd:
      case OpKind::BiasAddGrad:
      case OpKind::Rsqrt:
      case OpKind::ApplyAdam:
      case OpKind::ApplyGradientDescent:
      case OpKind::ArgMax:
      case OpKind::Equal:
      case OpKind::FusedBatchNormV3:
      case OpKind::FusedBatchNormGradV3:
      case OpKind::LayerNorm:
      case OpKind::LayerNormGrad:
      case OpKind::MaxPool:
      case OpKind::MaxPoolGrad:
      case OpKind::AvgPool:
      case OpKind::ResizeNearestNeighbor:
      case OpKind::Fusion:
        return OpClass::VectorCompute;

      case OpKind::Reshape:
      case OpKind::Transpose:
      case OpKind::Copy:
      case OpKind::Concat:
      case OpKind::Slice:
      case OpKind::Pad:
      case OpKind::GatherV2:
      case OpKind::DynamicStitch:
      case OpKind::OneHot:
      case OpKind::Squeeze:
        return OpClass::Memory;

      case OpKind::Infeed:
      case OpKind::InfeedDequeueTuple:
      case OpKind::Outfeed:
      case OpKind::OutfeedEnqueueTuple:
        return OpClass::InfeedOutfeed;

      case OpKind::AllReduce:
      case OpKind::CrossReplicaSum:
        return OpClass::Collective;
    }
    panic("opKindClass: unknown OpKind");
}

bool
isMxuKind(OpKind kind)
{
    return opKindClass(kind) == OpClass::MxuCompute;
}

bool
isFusableElementwise(OpKind kind)
{
    switch (kind) {
      case OpKind::Mul:
      case OpKind::Add:
      case OpKind::Sub:
      case OpKind::Maximum:
      case OpKind::Minimum:
      case OpKind::Relu:
      case OpKind::ReluGrad:
      case OpKind::Tanh:
      case OpKind::Gelu:
      case OpKind::Cast:
      case OpKind::BiasAdd:
      case OpKind::BiasAddGrad:
      case OpKind::Rsqrt:
      // XLA decomposes normalization and softmax into elementwise
      // chains and reductions, which then join loop fusions.
      case OpKind::FusedBatchNormV3:
      case OpKind::FusedBatchNormGradV3:
      case OpKind::LayerNorm:
      case OpKind::LayerNormGrad:
      case OpKind::Softmax:
      case OpKind::SoftmaxGrad:
        return true;
      default:
        return false;
    }
}

} // namespace tpupoint

/**
 * @file
 * The operator taxonomy of the IR. The names mirror the TensorFlow /
 * XLA operators that TPUPoint's profiler observes on real Cloud TPUs
 * (Table II of the paper): compute ops (MatMul, Conv2D, ...), data
 * movement (Reshape, Transpose, Copy), normalization, reductions,
 * the infeed/outfeed boundary, and the post-fusion `fusion` op.
 */

#ifndef TPUPOINT_GRAPH_OP_HH
#define TPUPOINT_GRAPH_OP_HH

#include <cstdint>
#include <string>

namespace tpupoint {

/** Device-side operator kinds appearing in TPU op graphs. */
enum class OpKind
{
    // MXU (systolic array) compute.
    MatMul,
    Conv2D,
    Conv2DBackpropFilter,
    Conv2DBackpropInput,

    // Vector-unit compute (element-wise and reductions).
    Mul,
    Add,
    Sub,
    Maximum,
    Minimum,
    Relu,
    ReluGrad,
    Tanh,
    Gelu,
    Softmax,
    SoftmaxGrad,
    Cast,
    Sum,
    Mean,
    L2Loss,
    BiasAdd,
    BiasAddGrad,
    Rsqrt,
    ApplyAdam,
    ApplyGradientDescent,
    ArgMax,
    Equal,

    // Normalization.
    FusedBatchNormV3,
    FusedBatchNormGradV3,
    LayerNorm,
    LayerNormGrad,

    // Data movement / layout.
    Reshape,
    Transpose,
    Copy,
    Concat,
    Slice,
    Pad,
    GatherV2,
    DynamicStitch,
    OneHot,
    Squeeze,

    // Pooling / resampling.
    MaxPool,
    MaxPoolGrad,
    AvgPool,
    ResizeNearestNeighbor,

    // Host <-> device boundary (device side).
    Infeed,
    InfeedDequeueTuple,
    Outfeed,
    OutfeedEnqueueTuple,

    // Collective / replication.
    AllReduce,
    CrossReplicaSum,

    // Compiler-generated.
    Fusion,
};

/** Number of OpKind values (for tables indexed by kind). */
inline constexpr std::size_t kNumOpKinds =
    static_cast<std::size_t>(OpKind::Fusion) + 1;

/**
 * The operator-type label the profiler reports, e.g. "MatMul",
 * "fusion", "all-reduce". Matches the paper's Table II spelling.
 */
const char *opKindName(OpKind kind);

/** Coarse execution class of an operator. */
enum class OpClass
{
    MxuCompute,    ///< Runs on the matrix units.
    VectorCompute, ///< Runs on the vector/scalar units.
    Memory,        ///< Layout/data movement, HBM-bandwidth bound.
    InfeedOutfeed, ///< Host <-> device queue boundary.
    Collective,    ///< Cross-replica communication.
};

/** Execution class of @p kind (pre-fusion; fusion ops carry their own). */
OpClass opKindClass(OpKind kind);

/** True when @p kind executes on the MXUs. */
bool isMxuKind(OpKind kind);

/** True for pure element-wise ops that XLA will fuse greedily. */
bool isFusableElementwise(OpKind kind);

} // namespace tpupoint

#endif // TPUPOINT_GRAPH_OP_HH

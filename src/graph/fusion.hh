/**
 * @file
 * XLA-style operator fusion. The paper observes that the `fusion`
 * operator — the XLA compiler's combination of compute-intensive ops
 * that "help reduce memory operations" — is the most time-consuming
 * TPU operator overall (Table II). This pass reproduces the
 * mechanism: greedy producer-consumer fusion of element-wise chains
 * into their producers (including MXU producers, i.e. output
 * fusion), eliding the HBM traffic of internal edges.
 */

#ifndef TPUPOINT_GRAPH_FUSION_HH
#define TPUPOINT_GRAPH_FUSION_HH

#include <cstddef>

#include "graph/graph.hh"

namespace tpupoint {

/** Statistics reported by the fusion pass. */
struct FusionStats
{
    std::size_t groups_formed = 0;   ///< Fusion nodes emitted.
    std::size_t nodes_fused = 0;     ///< Original nodes absorbed.
    std::uint64_t bytes_elided = 0;  ///< HBM traffic removed.
};

/**
 * Run the fusion pass.
 *
 * A node is absorbed into its producer's fusion group when (a) the
 * node is a fusable element-wise op and (b) it is the producer's
 * only consumer. Groups of two or more become a single Fusion node
 * whose flops are the members' sum and whose HBM bytes exclude the
 * internal producer-consumer edges.
 *
 * @param graph Input graph (unchanged).
 * @param stats Optional out-params describing what was fused.
 * @return The fused graph.
 */
Graph fuseGraph(const Graph &graph, FusionStats *stats = nullptr);

} // namespace tpupoint

#endif // TPUPOINT_GRAPH_FUSION_HH

/**
 * @file
 * Tensor shapes and element types for the op-graph IR.
 */

#ifndef TPUPOINT_GRAPH_TENSOR_HH
#define TPUPOINT_GRAPH_TENSOR_HH

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace tpupoint {

/** Element type of a tensor. */
enum class DataType { F32, BF16, F16, I32, I64, U8, Bool };

/** Size in bytes of one element of @p type. */
std::size_t dataTypeSize(DataType type);

/** Printable name, e.g. "f32". */
const char *dataTypeName(DataType type);

/**
 * A dense tensor shape. Rank 0 represents a scalar.
 */
class TensorShape
{
  public:
    TensorShape() = default;

    /** Construct from a dimension list, e.g. {32, 128, 768}. */
    TensorShape(std::initializer_list<std::int64_t> dimensions);

    /** Construct from a vector of dimensions. */
    explicit TensorShape(std::vector<std::int64_t> dimensions);

    /** Number of dimensions. */
    std::size_t rank() const { return dims.size(); }

    /** Size of dimension @p axis. */
    std::int64_t dim(std::size_t axis) const;

    /** All dimensions. */
    const std::vector<std::int64_t> &dimensions() const
    {
        return dims;
    }

    /** Product of all dimensions; 1 for scalars. */
    std::int64_t numElements() const;

    /** numElements() * dataTypeSize(type). */
    std::uint64_t numBytes(DataType type) const;

    /** "[32,128,768]" — for debugging and trace labels. */
    std::string toString() const;

    bool operator==(const TensorShape &other) const
    {
        return dims == other.dims;
    }

  private:
    std::vector<std::int64_t> dims;
};

} // namespace tpupoint

#endif // TPUPOINT_GRAPH_TENSOR_HH

/**
 * @file
 * Linear execution schedules. The TPU core executes one StepSchedule
 * per training step; the schedule is extracted once from the
 * (post-fusion) graph and reused across steps.
 */

#ifndef TPUPOINT_GRAPH_SCHEDULE_HH
#define TPUPOINT_GRAPH_SCHEDULE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hh"

namespace tpupoint {

/** One operator occurrence in the per-step execution order. */
struct ScheduledOp
{
    OpKind kind = OpKind::Copy;
    std::string name;        ///< Instance name (for trace labels).
    std::uint64_t flops = 0; ///< Floating-point work.
    std::uint64_t bytes = 0; ///< HBM traffic.
    bool mxu = false;        ///< Uses the matrix units.

    /** The operator-type label the profiler aggregates by. */
    const char *typeName() const { return opKindName(kind); }
};

/**
 * The per-step execution recipe for a model: the ordered op list
 * plus the infeed/outfeed byte totals the host must move per step.
 */
struct StepSchedule
{
    std::string model;                ///< Graph name.
    std::vector<ScheduledOp> ops;     ///< Topological order.
    std::uint64_t infeed_bytes = 0;   ///< Host -> TPU per step.
    std::uint64_t outfeed_bytes = 0;  ///< TPU -> host per step.
    std::uint64_t total_flops = 0;    ///< Sum over ops.
    std::uint64_t total_bytes = 0;    ///< Sum over ops.
    std::uint64_t mxu_flops = 0;      ///< Flops on the matrix units.

    /** Number of ops per step. */
    std::size_t size() const { return ops.size(); }
};

/**
 * Extract the linear schedule of @p graph (usually post-fusion).
 */
StepSchedule extractSchedule(const Graph &graph);

} // namespace tpupoint

#endif // TPUPOINT_GRAPH_SCHEDULE_HH

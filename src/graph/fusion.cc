#include "graph/fusion.hh"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "core/logging.hh"

namespace tpupoint {

namespace {

/** Union-find over node ids with path compression. */
class GroupSet
{
  public:
    explicit GroupSet(std::size_t n) : parent(n)
    {
        for (std::size_t i = 0; i < n; ++i)
            parent[i] = static_cast<NodeId>(i);
    }

    NodeId
    find(NodeId x)
    {
        while (parent[x] != x) {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        return x;
    }

    void
    unite(NodeId child, NodeId into)
    {
        parent[find(child)] = find(into);
    }

  private:
    std::vector<NodeId> parent;
};

} // namespace

Graph
fuseGraph(const Graph &graph, FusionStats *stats)
{
    const auto &nodes = graph.nodes();
    const std::vector<std::uint32_t> consumers =
        graph.consumerCounts();
    GroupSet groups(nodes.size());

    // Phase 1: group assignment. Absorb fusable element-wise nodes
    // into a single-consumer producer.
    for (const Node &n : nodes) {
        if (!isFusableElementwise(n.kind))
            continue;
        for (const NodeId input : n.inputs) {
            const Node &producer = nodes[input];
            if (consumers[input] != 1)
                continue;
            // Don't fuse across the infeed/outfeed boundary or into
            // pure data-movement ops.
            const OpClass cls = opKindClass(producer.kind);
            if (cls == OpClass::InfeedOutfeed ||
                cls == OpClass::Memory ||
                cls == OpClass::Collective)
                continue;
            groups.unite(n.id, input);
            break;
        }
    }

    // Phase 2: collect members per group root; the group's emission
    // slot is its last member (every external use references it).
    std::unordered_map<NodeId, std::vector<NodeId>> members;
    for (const Node &n : nodes)
        members[groups.find(n.id)].push_back(n.id);

    // last member id per group root
    std::unordered_map<NodeId, NodeId> last_member;
    for (auto &[root, list] : members)
        last_member[root] = list.back(); // lists are ascending

    // Phase 3: emit the fused graph in order of last-member index.
    Graph fused(graph.name());
    std::vector<NodeId> old_to_new(nodes.size(), kInvalidNode);
    std::size_t fusion_counter = 0;
    FusionStats local;

    // Iterate original order; emit a group when reaching its last
    // member.
    for (const Node &n : nodes) {
        const NodeId root = groups.find(n.id);
        if (last_member[root] != n.id)
            continue; // not this group's emission slot
        const std::vector<NodeId> &group = members[root];

        // Gather external inputs (mapped), deduplicated in order.
        std::vector<NodeId> new_inputs;
        auto add_input = [&](NodeId old_input) {
            if (groups.find(old_input) == root)
                return; // internal edge
            const NodeId mapped =
                old_to_new[last_member[groups.find(old_input)]];
            if (mapped == kInvalidNode)
                panic("fuseGraph: input group not yet emitted");
            if (std::find(new_inputs.begin(), new_inputs.end(),
                          mapped) == new_inputs.end())
                new_inputs.push_back(mapped);
        };

        if (group.size() == 1) {
            Node copy_node = n;
            copy_node.inputs.clear();
            for (const NodeId input : n.inputs)
                add_input(input);
            copy_node.inputs = std::move(new_inputs);
            const NodeId new_id = fused.add(std::move(copy_node));
            old_to_new[n.id] = new_id;
            continue;
        }

        // Build the fusion node.
        Node fusion_node;
        fusion_node.kind = OpKind::Fusion;
        fusion_node.name = "fusion." +
            std::to_string(fusion_counter++);
        fusion_node.shape = n.shape;
        fusion_node.dtype = n.dtype;

        std::uint64_t flops = 0;
        std::uint64_t bytes = 0;
        std::uint64_t elided = 0;
        bool mxu = false;
        for (const NodeId member : group) {
            const Node &m = nodes[member];
            flops += m.flops;
            bytes += m.bytes;
            mxu = mxu || m.mxu;
            for (const NodeId input : m.inputs) {
                if (groups.find(input) == root) {
                    // Internal edge: producer write + consumer read
                    // both disappear.
                    const Node &p = nodes[input];
                    const std::uint64_t edge =
                        2 * p.shape.numBytes(p.dtype);
                    elided += std::min(edge, bytes);
                    bytes -= std::min(edge, bytes);
                } else {
                    add_input(input);
                }
            }
        }
        fusion_node.inputs = std::move(new_inputs);
        fusion_node.flops = flops;
        fusion_node.bytes = bytes;
        fusion_node.mxu = mxu;

        const NodeId new_id = fused.add(std::move(fusion_node));
        old_to_new[n.id] = new_id;
        ++local.groups_formed;
        local.nodes_fused += group.size() - 1;
        local.bytes_elided += elided;
    }

    fused.validate();
    if (stats)
        *stats = local;
    return fused;
}

} // namespace tpupoint

/**
 * @file
 * The op-graph IR. A Graph is a DAG of operator Nodes held in
 * topological order (builders may only reference already-created
 * nodes as inputs), annotated with per-op FLOP and HBM-byte costs
 * that drive the TPU timing model.
 */

#ifndef TPUPOINT_GRAPH_GRAPH_HH
#define TPUPOINT_GRAPH_GRAPH_HH

#include <cstdint>
#include <string>
#include <vector>

#include "graph/op.hh"
#include "graph/tensor.hh"

namespace tpupoint {

/** Index of a node within its graph. */
using NodeId = std::uint32_t;

/** Sentinel for "no node". */
inline constexpr NodeId kInvalidNode = 0xffffffffU;

/**
 * One operator instance. `flops` counts floating-point operations;
 * `bytes` counts HBM traffic (operands plus results); `mxu` marks
 * ops dispatched to the matrix units.
 */
struct Node
{
    NodeId id = kInvalidNode;
    OpKind kind = OpKind::Copy;
    std::string name;
    std::vector<NodeId> inputs;
    TensorShape shape;
    DataType dtype = DataType::BF16;
    std::uint64_t flops = 0;
    std::uint64_t bytes = 0;
    bool mxu = false;
};

/**
 * A DAG of operators in topological order.
 */
class Graph
{
  public:
    /** Create a graph with a human-readable name. */
    explicit Graph(std::string graph_name = "graph");

    /**
     * Append a node. Inputs must reference existing nodes, which
     * keeps the node vector topologically sorted by construction.
     * @return the new node's id.
     */
    NodeId add(Node node);

    /** Node lookup. @pre id < size() */
    const Node &node(NodeId id) const;

    /** Number of nodes. */
    std::size_t size() const { return node_list.size(); }

    /** All nodes, topologically ordered. */
    const std::vector<Node> &nodes() const { return node_list; }

    /** Graph name (the model name, e.g. "resnet50"). */
    const std::string &name() const { return graph_name; }

    /** Number of consumers of each node (index = NodeId). */
    std::vector<std::uint32_t> consumerCounts() const;

    /** Sum of flops over all nodes. */
    std::uint64_t totalFlops() const;

    /** Sum of bytes over all nodes. */
    std::uint64_t totalBytes() const;

    /** Count of nodes with a given kind. */
    std::size_t countKind(OpKind kind) const;

    /**
     * Check structural invariants (inputs precede users, ids are
     * consistent); panics on violation. Cheap; used by tests and
     * after graph transformations.
     */
    void validate() const;

  private:
    std::string graph_name;
    std::vector<Node> node_list;
};

} // namespace tpupoint

#endif // TPUPOINT_GRAPH_GRAPH_HH

#include "graph/tensor.hh"

#include "core/logging.hh"

namespace tpupoint {

std::size_t
dataTypeSize(DataType type)
{
    switch (type) {
      case DataType::F32: return 4;
      case DataType::BF16: return 2;
      case DataType::F16: return 2;
      case DataType::I32: return 4;
      case DataType::I64: return 8;
      case DataType::U8: return 1;
      case DataType::Bool: return 1;
    }
    panic("dataTypeSize: unknown DataType");
}

const char *
dataTypeName(DataType type)
{
    switch (type) {
      case DataType::F32: return "f32";
      case DataType::BF16: return "bf16";
      case DataType::F16: return "f16";
      case DataType::I32: return "i32";
      case DataType::I64: return "i64";
      case DataType::U8: return "u8";
      case DataType::Bool: return "bool";
    }
    panic("dataTypeName: unknown DataType");
}

TensorShape::TensorShape(std::initializer_list<std::int64_t> dimensions)
    : dims(dimensions)
{
    for (const auto d : dims) {
        if (d < 0)
            fatal("TensorShape: negative dimension ", d);
    }
}

TensorShape::TensorShape(std::vector<std::int64_t> dimensions)
    : dims(std::move(dimensions))
{
    for (const auto d : dims) {
        if (d < 0)
            fatal("TensorShape: negative dimension ", d);
    }
}

std::int64_t
TensorShape::dim(std::size_t axis) const
{
    if (axis >= dims.size())
        panic("TensorShape::dim: axis ", axis, " out of range");
    return dims[axis];
}

std::int64_t
TensorShape::numElements() const
{
    std::int64_t count = 1;
    for (const auto d : dims)
        count *= d;
    return count;
}

std::uint64_t
TensorShape::numBytes(DataType type) const
{
    return static_cast<std::uint64_t>(numElements()) *
        dataTypeSize(type);
}

std::string
TensorShape::toString() const
{
    std::string out = "[";
    for (std::size_t i = 0; i < dims.size(); ++i) {
        if (i)
            out += ',';
        out += std::to_string(dims[i]);
    }
    out += ']';
    return out;
}

} // namespace tpupoint

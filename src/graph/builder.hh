/**
 * @file
 * GraphBuilder: emits operator nodes with shape inference and the
 * FLOP/HBM-byte cost model. Workload model builders (BERT, ResNet,
 * ...) are written against this API.
 */

#ifndef TPUPOINT_GRAPH_BUILDER_HH
#define TPUPOINT_GRAPH_BUILDER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hh"

namespace tpupoint {

/**
 * Convenience layer over Graph::add. All emitters compute output
 * shape, flops and HBM bytes from the input shapes; weights are
 * implicit (their HBM reads are charged to the consuming op, the way
 * XLA's HLO cost analysis attributes them).
 */
class GraphBuilder
{
  public:
    /** Build into a fresh graph named @p graph_name. */
    explicit GraphBuilder(std::string graph_name,
                          DataType default_type = DataType::BF16);

    /** Finish building and take the graph. */
    Graph finish();

    /** Access the graph under construction. */
    const Graph &graph() const { return building; }

    // ---- Host <-> device boundary -------------------------------

    /** A batch tensor arriving through the infeed queue. */
    NodeId infeed(const TensorShape &shape, const std::string &name,
                  DataType type);
    NodeId infeed(const TensorShape &shape, const std::string &name);

    /** Scalar (loss/metric) tuple leaving through the outfeed. */
    NodeId outfeed(NodeId value, const std::string &name);

    // ---- MXU compute --------------------------------------------

    /**
     * Dense projection of the last axis: [..., k] -> [..., units].
     * Weight reads (k x units) are charged to the op.
     */
    NodeId matmul(NodeId x, std::int64_t units,
                  const std::string &name);

    /**
     * Batched matmul of two activation tensors (attention):
     * [b, m, k] x [b, k, n] -> [b, m, n]. Ranks must match and be
     * >= 2; leading dims must agree.
     */
    NodeId batchMatmul(NodeId a, NodeId b, const std::string &name);

    /**
     * NHWC convolution with square kernel/stride and SAME padding:
     * [n, h, w, c] -> [n, h/stride, w/stride, out_channels].
     */
    NodeId conv2d(NodeId x, std::int64_t out_channels,
                  std::int64_t kernel, std::int64_t stride,
                  const std::string &name);

    /** Gradient wrt the conv filter; same flops as forward. */
    NodeId conv2dBackpropFilter(NodeId activations, NodeId grads,
                                std::int64_t kernel,
                                const std::string &name);

    /** Gradient wrt the conv input; same flops as forward. */
    NodeId conv2dBackpropInput(NodeId grads,
                               const TensorShape &input_shape,
                               std::int64_t kernel,
                               const std::string &name);

    // ---- Vector compute -----------------------------------------

    /** Unary element-wise op (Relu, Tanh, Cast, ...). */
    NodeId unary(OpKind kind, NodeId x, const std::string &name);

    /** Binary element-wise op; shapes must match (or b broadcast). */
    NodeId binary(OpKind kind, NodeId a, NodeId b,
                  const std::string &name);

    /** BiasAdd along the last axis. */
    NodeId biasAdd(NodeId x, const std::string &name);

    /** Softmax over the last axis. */
    NodeId softmax(NodeId x, const std::string &name);

    /** Reduction to scalar (Sum, Mean, L2Loss). */
    NodeId reduceAll(OpKind kind, NodeId x, const std::string &name);

    /** Reduce the last axis away (e.g. BiasAddGrad). */
    NodeId reduceLastAxis(OpKind kind, NodeId x,
                          const std::string &name);

    /** Fused batch normalization (training mode). */
    NodeId batchNorm(NodeId x, const std::string &name);

    /** Batch-norm gradient. */
    NodeId batchNormGrad(NodeId grads, const std::string &name);

    /** Layer normalization over the last axis. */
    NodeId layerNorm(NodeId x, const std::string &name);

    /** Layer-norm gradient. */
    NodeId layerNormGrad(NodeId grads, const std::string &name);

    /** Parameter update op; @p param_count weights touched. */
    NodeId applyOptimizer(OpKind kind, NodeId grads_in,
                          std::uint64_t param_count,
                          const std::string &name);

    // ---- Data movement ------------------------------------------

    /** Reshape; element count must be preserved. Full HBM copy. */
    NodeId reshape(NodeId x, const TensorShape &shape,
                   const std::string &name);

    /** Transpose with permutation @p perm. Full HBM copy. */
    NodeId transpose(NodeId x, const std::vector<int> &perm,
                     const std::string &name);

    /** Device-to-device copy. */
    NodeId copy(NodeId x, const std::string &name);

    /** Concatenate along @p axis; shapes must agree elsewhere. */
    NodeId concat(const std::vector<NodeId> &parts, std::size_t axis,
                  const std::string &name);

    /** Contiguous slice of @p count rows along the first axis. */
    NodeId slice(NodeId x, std::int64_t count,
                 const std::string &name);

    /** Pad the spatial dims by @p amount on each side. */
    NodeId pad(NodeId x, std::int64_t amount,
               const std::string &name);

    /** Embedding lookup: ids [b, s] -> [b, s, width]. */
    NodeId gather(NodeId ids, std::int64_t width,
                  const std::string &name);

    /** One-hot expansion: [...] -> [..., depth]. */
    NodeId oneHot(NodeId ids, std::int64_t depth,
                  const std::string &name);

    // ---- Pooling -------------------------------------------------

    /** Square-window pooling on NHWC input. */
    NodeId pool(OpKind kind, NodeId x, std::int64_t window,
                std::int64_t stride, const std::string &name);

    /** Nearest-neighbour upsampling by @p factor (FPN upsample). */
    NodeId resizeNearest(NodeId x, std::int64_t factor,
                         const std::string &name);

    // ---- Collectives ---------------------------------------------

    /** Cross-replica gradient all-reduce over @p param_count values. */
    NodeId allReduce(NodeId after, std::uint64_t param_count,
                     const std::string &name);

    // ---- Cost-model escapes --------------------------------------

    /**
     * L2 regularization over the model's @p param_count weights
     * (weight decay); reads every parameter once.
     */
    NodeId l2Loss(NodeId after, std::uint64_t param_count,
                  const std::string &name);

    /**
     * Generic op with an explicit output shape: used by gradient
     * emitters whose output shape differs from the input (pooling /
     * upsampling backward, embedding scatter). Costs one flop per
     * output element plus input+output HBM traffic.
     */
    NodeId shapeOp(OpKind kind, NodeId x, const TensorShape &shape,
                   const std::string &name);

    /** Output shape of an existing node (for layer libraries). */
    const TensorShape &outputShape(NodeId id) const
    {
        return shapeOf(id);
    }

  private:
    NodeId emit(OpKind kind, std::string name,
                std::vector<NodeId> inputs, TensorShape shape,
                DataType type, std::uint64_t flops,
                std::uint64_t bytes, bool mxu);

    const TensorShape &shapeOf(NodeId id) const;
    DataType typeOf(NodeId id) const;
    std::uint64_t bytesOf(NodeId id) const;

    Graph building;
    DataType default_dtype;
};

} // namespace tpupoint

#endif // TPUPOINT_GRAPH_BUILDER_HH

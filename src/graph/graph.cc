#include "graph/graph.hh"

#include "core/logging.hh"

namespace tpupoint {

Graph::Graph(std::string name_arg) : graph_name(std::move(name_arg))
{
}

NodeId
Graph::add(Node node)
{
    const NodeId id = static_cast<NodeId>(node_list.size());
    for (const NodeId input : node.inputs) {
        if (input >= id) {
            panic("Graph::add: node '", node.name, "' references ",
                  "input ", input, " which does not precede it");
        }
    }
    node.id = id;
    node_list.push_back(std::move(node));
    return id;
}

const Node &
Graph::node(NodeId id) const
{
    if (id >= node_list.size())
        panic("Graph::node: id ", id, " out of range");
    return node_list[id];
}

std::vector<std::uint32_t>
Graph::consumerCounts() const
{
    std::vector<std::uint32_t> counts(node_list.size(), 0);
    for (const auto &n : node_list)
        for (const NodeId input : n.inputs)
            ++counts[input];
    return counts;
}

std::uint64_t
Graph::totalFlops() const
{
    std::uint64_t total = 0;
    for (const auto &n : node_list)
        total += n.flops;
    return total;
}

std::uint64_t
Graph::totalBytes() const
{
    std::uint64_t total = 0;
    for (const auto &n : node_list)
        total += n.bytes;
    return total;
}

std::size_t
Graph::countKind(OpKind kind) const
{
    std::size_t count = 0;
    for (const auto &n : node_list)
        if (n.kind == kind)
            ++count;
    return count;
}

void
Graph::validate() const
{
    for (std::size_t i = 0; i < node_list.size(); ++i) {
        const Node &n = node_list[i];
        if (n.id != static_cast<NodeId>(i))
            panic("Graph::validate: node ", i, " has wrong id");
        for (const NodeId input : n.inputs) {
            if (input >= n.id) {
                panic("Graph::validate: node '", n.name,
                      "' input does not precede it");
            }
        }
    }
}

} // namespace tpupoint

#include "optimizer/program_analysis.hh"

namespace tpupoint {

ProgramAnalysis
analyzeProgram(const RuntimeWorkload &workload,
               const PipelineConfig &config, const HostSpec &host)
{
    ProgramAnalysis analysis;
    for (const TunableParam param : allTunableParams()) {
        bool has_valid_neighbor = false;
        for (const int direction : {+1, -1}) {
            const auto candidate =
                neighborValue(config, param, direction);
            if (!candidate)
                continue;
            PipelineConfig probe = config;
            setParam(probe, param, *candidate);
            if (isValidConfig(probe, workload.dataset, host)) {
                has_valid_neighbor = true;
                break;
            }
        }
        if (has_valid_neighbor)
            analysis.adjustable.push_back(param);
        else
            analysis.rejected.push_back(param);
    }

    // Instrumentation: a checkpoint before each stage call of the
    // profiled input program (Section VII-A).
    analysis.instrumentation_points = {
        "dataset.read", "dataset.map", "dataset.batch",
        "dataset.prefetch", "infeed.transfer", "train.step",
    };
    return analysis;
}

} // namespace tpupoint

#include "optimizer/tuner.hh"

#include <algorithm>

#include "core/logging.hh"
#include "core/strings.hh"

namespace tpupoint {

namespace {

/** The common operator pattern of Section VI (Observations 3-4). */
bool
matchesCommonPattern(const OpStatsMap &tpu, const OpStatsMap &host)
{
    // Merge and rank by duration.
    std::vector<std::pair<std::string, SimTime>> ranked;
    for (const auto &[name, stats] : tpu)
        ranked.emplace_back("tpu:" + name, stats.total_duration);
    for (const auto &[name, stats] : host)
        ranked.emplace_back("host:" + name, stats.total_duration);
    std::sort(ranked.begin(), ranked.end(),
              [](const auto &a, const auto &b) {
                  return a.second > b.second;
              });
    if (ranked.size() > 5)
        ranked.resize(5);

    static const char *pattern[] = {
        "tpu:fusion", "tpu:Reshape", "tpu:Infeed",
        "tpu:InfeedDequeueTuple", "tpu:Outfeed",
        "host:OutfeedDequeueTuple",
        "host:TransferBufferToInfeedLocked",
    };
    int hits = 0;
    for (const auto &[name, duration] : ranked) {
        for (const char *candidate : pattern) {
            if (name == candidate) {
                ++hits;
                break;
            }
        }
    }
    return hits >= 2;
}

} // namespace

OnlineTuner::OnlineTuner(Simulator &simulator,
                         TrainingSession &session_ref,
                         TpuPointProfiler &profiler_ref,
                         const std::vector<TunableParam> &adjustable,
                         const TunerOptions &options)
    : sim(simulator), session(session_ref), profiler(profiler_ref),
      opts(options), params(adjustable),
      ols(OlsOptions{options.ols_threshold})
{
    status.initial_config = session.pipeline().config();
    status.best_config = status.initial_config;
}

void
OnlineTuner::note(std::string message)
{
    status.log.push_back("[" + formatDuration(sim.now()) + "] " +
                         std::move(message));
}

void
OnlineTuner::start()
{
    session.setStepCallback(
        [this](StepId step, SimTime step_time) {
            onStep(step, step_time);
        });
    poll_event = sim.schedule(opts.poll_interval,
                              [this]() { pollRecords(); });
    note("tuner armed: waiting for the performance-critical phase");
}

void
OnlineTuner::stop()
{
    if (poll_event) {
        sim.cancel(poll_event);
        poll_event = 0;
    }
    session.setStepCallback(nullptr);
    // A trial may still be in flight when the program ends; the
    // best known configuration is what the program keeps.
    if (state != State::Done && !measuring_baseline &&
        status.critical_phase_detected) {
        session.pipeline().setConfig(status.best_config);
    }
}

void
OnlineTuner::pollRecords()
{
    poll_event = 0;
    const auto &records = profiler.records();

    // Track phases over newly arrived records.
    for (; records_seen < records.size(); ++records_seen) {
        const ProfileRecord &record = records[records_seen];
        for (const StepStats &step : record.steps) {
            observed_time += step.span();

            if (have_prev_step) {
                const double similarity =
                    OnlineLinearScan::stepSimilarity(prev_step,
                                                     step);
                if (similarity < opts.ols_threshold) {
                    // Phase boundary: reset the running phase.
                    current_phase_time = 0;
                    phase_tpu_ops.clear();
                    phase_host_ops.clear();
                }
            }
            current_phase_time += step.span();
            for (const auto &[name, stats] : step.tpu_ops)
                phase_tpu_ops[name].merge(stats);
            for (const auto &[name, stats] : step.host_ops)
                phase_host_ops[name].merge(stats);
            prev_step = step;
            have_prev_step = true;

            if (state == State::WaitCritical) {
                const bool dominant = observed_time > 0 &&
                    static_cast<double>(current_phase_time) /
                        static_cast<double>(observed_time) >
                        opts.critical_share;
                const bool pattern = matchesCommonPattern(
                    phase_tpu_ops, phase_host_ops);
                if (dominant || pattern) {
                    status.critical_phase_detected = true;
                    status.critical_detected_at = sim.now();
                    note(std::string("performance-critical phase "
                                     "detected (") +
                         (dominant ? "dominant share"
                                   : "common operator pattern") +
                         "); tuning begins");
                    beginWindow(true);
                }
            }
        }
    }

    if (state != State::Done && !session.finished()) {
        poll_event = sim.schedule(opts.poll_interval,
                                  [this]() { pollRecords(); });
    }
}

void
OnlineTuner::beginWindow(bool is_baseline)
{
    measuring_baseline = is_baseline;
    state = State::Settle;
    steps_in_state = 0;
    window_accum = 0.0;
}

void
OnlineTuner::onStep(StepId step, SimTime step_time)
{
    guard.onStep(step);
    switch (state) {
      case State::WaitCritical:
      case State::Done:
        return;
      case State::Settle:
        if (++steps_in_state >= opts.settle_steps) {
            state = State::Measure;
            steps_in_state = 0;
            window_accum = 0.0;
        }
        return;
      case State::Measure:
        window_accum += static_cast<double>(step_time);
        if (++steps_in_state >= opts.window_steps) {
            windowComplete(window_accum);
        }
        return;
    }
}

bool
OnlineTuner::advanceToNextCandidate()
{
    while (param_index < params.size()) {
        const TunableParam param = params[param_index];
        if (OutputQualityGuard::preservesOutput(param)) {
            const auto candidate = neighborValue(
                status.best_config, param, direction);
            if (candidate) {
                PipelineConfig probe = status.best_config;
                setParam(probe, param, *candidate);
                if (isValidConfig(probe,
                                  session.workload().dataset,
                                  session.sessionConfig().host)) {
                    pending_config = probe;
                    pending_param = param;
                    pending_value = *candidate;
                    return true;
                }
            }
        }
        // Exhausted this direction: flip, then move on.
        if (direction > 0) {
            direction = -1;
        } else {
            direction = +1;
            ++param_index;
        }
    }
    return false;
}

void
OnlineTuner::applyCandidate()
{
    session.pipeline().setConfig(pending_config);
    note(std::string("trial: ") + tunableParamName(pending_param) +
         " -> " + std::to_string(pending_value));
    beginWindow(false);
}

void
OnlineTuner::windowComplete(double window_time)
{
    if (measuring_baseline) {
        best_window_time = window_time;
        note("baseline window: " +
             formatDuration(static_cast<SimTime>(window_time)));
        if (advanceToNextCandidate()) {
            applyCandidate();
        } else {
            state = State::Done;
            status.finished = true;
            note("no adjustable parameters; keeping defaults");
        }
        return;
    }

    ++status.trials;
    const bool improved = window_time <
        best_window_time * (1.0 - opts.min_improvement);
    if (improved && guard.consistent()) {
        best_window_time = window_time;
        status.best_config = pending_config;
        ++status.accepted;
        note(std::string("accepted ") +
             tunableParamName(pending_param) + " = " +
             std::to_string(pending_value) + " (window " +
             formatDuration(static_cast<SimTime>(window_time)) +
             ")");
        // Keep pushing the same parameter in the same direction.
    } else {
        session.pipeline().setConfig(status.best_config);
        note(std::string("rejected ") +
             tunableParamName(pending_param) + " = " +
             std::to_string(pending_value));
        if (direction > 0) {
            direction = -1;
        } else {
            direction = +1;
            ++param_index;
        }
    }

    if (advanceToNextCandidate()) {
        applyCandidate();
    } else {
        state = State::Done;
        status.finished = true;
        note("tuning complete: " + status.best_config.toString());
        session.pipeline().setConfig(status.best_config);
    }
}

} // namespace tpupoint

/**
 * @file
 * TPUPoint-Optimizer (Section VII): the automatic, online workload
 * tuner. It (1) analyzes and instruments the program, (2) tunes
 * adjustable parameters online without a complete execution cycle,
 * and (3) controls output quality. runOptimizationExperiment() is
 * the harness behind Figures 14-16: one run with the optimizer
 * attached versus one without.
 */

#ifndef TPUPOINT_OPTIMIZER_OPTIMIZER_HH
#define TPUPOINT_OPTIMIZER_OPTIMIZER_HH

#include <memory>

#include "optimizer/program_analysis.hh"
#include "optimizer/tuner.hh"
#include "profiler/profiler.hh"
#include "runtime/session.hh"

namespace tpupoint {

/** Optimizer configuration. */
struct OptimizerOptions
{
    TunerOptions tuner;
    ProfilerOptions profiler;

    /**
     * Post-processing time charged when the run completes (the
     * reason very short workloads "can actually take a performance
     * hit" from the optimizer — Section VII-C).
     */
    SimTime post_processing_base = 15 * kSec;
    SimTime post_processing_per_record = 10 * kMsec;
};

/**
 * One optimizer instance drives one TrainingSession. Construct
 * after the session, call start() before the simulator runs.
 */
class TpuPointOptimizer
{
  public:
    TpuPointOptimizer(Simulator &simulator,
                      TrainingSession &session,
                      const OptimizerOptions &options = {});

    /**
     * Run program analysis, instrument the pipeline, start the
     * embedded profiler (analyzer disabled: records stay in host
     * memory) and arm the online tuner.
     */
    void start();

    /** Detach everything. */
    void stop();

    /** The program-analysis result. */
    const ProgramAnalysis &programAnalysis() const
    {
        return analysis;
    }

    /** The tuner's report. */
    const OnlineTuner::Report &report() const;

    /** Post-processing time this run will be charged. */
    SimTime postProcessingTime() const;

  private:
    Simulator &sim;
    TrainingSession &session;
    OptimizerOptions opts;
    ProgramAnalysis analysis;
    std::unique_ptr<TpuPointProfiler> profiler;
    std::unique_ptr<OnlineTuner> tuner;
    bool started = false;
};

/** The Figures 14-16 comparison harness. */
struct OptimizationOutcome
{
    SessionResult baseline;   ///< Without TPUPoint-Optimizer.
    SessionResult optimized;  ///< With TPUPoint-Optimizer.
    SimTime optimized_wall_with_post = 0; ///< Incl. post-processing.
    PipelineConfig initial_config;
    PipelineConfig tuned_config;
    OnlineTuner::Report tuner_report;
    bool output_quality_ok = true;

    /** Baseline wall over optimized wall (incl. post time). */
    double speedup() const;
};

/**
 * Run @p workload twice under @p base_config — once untouched, once
 * with TPUPoint-Optimizer attached — and report both.
 */
OptimizationOutcome runOptimizationExperiment(
    const RuntimeWorkload &workload, const SessionConfig &base,
    const OptimizerOptions &options = {});

} // namespace tpupoint

#endif // TPUPOINT_OPTIMIZER_OPTIMIZER_HH

/**
 * @file
 * The adjustable parameters TPUPoint-Optimizer discovers and tunes
 * (Section VII-A): "buffer size, the number of threads dedicated to
 * an operation, and the order of operations that can be rearranged
 * while maintaining correctness". In the TensorFlow input pipeline
 * these map onto parallel reads, parallel map calls, prefetch
 * depth, the shuffle buffer, and map/batch fusion.
 */

#ifndef TPUPOINT_OPTIMIZER_PARAMETERS_HH
#define TPUPOINT_OPTIMIZER_PARAMETERS_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "host/dataset.hh"
#include "host/pipeline.hh"
#include "host/spec.hh"

namespace tpupoint {

/** Identity of one tunable pipeline parameter. */
enum class TunableParam
{
    ParallelReads,    ///< Storage streams (thread count).
    ParallelCalls,    ///< Decode/preprocess workers (threads).
    PrefetchDepth,    ///< Prefetch buffer size.
    ShuffleBuffer,    ///< Shuffle buffer size.
    MapAndBatchFusion ///< Operation-order rearrangement.
};

/** All candidate parameters, in tuning priority order. */
std::vector<TunableParam> allTunableParams();

/** Printable parameter name. */
const char *tunableParamName(TunableParam param);

/** Read a parameter's value out of a configuration. */
std::int64_t getParam(const PipelineConfig &config,
                      TunableParam param);

/** Write a parameter's value into a configuration. */
void setParam(PipelineConfig &config, TunableParam param,
              std::int64_t value);

/**
 * The next candidate value in @p direction (+1 up the ladder, -1
 * down), or nullopt at the boundary. Integer parameters move on a
 * power-of-two ladder; the fusion flag toggles (up = fused).
 */
std::optional<std::int64_t>
neighborValue(const PipelineConfig &config, TunableParam param,
              int direction);

/**
 * Whether @p config is executable on this host/dataset. Candidate
 * values that would error (too many threads, shuffle buffer beyond
 * the dataset) are rejected — per the paper, parameters whose
 * alteration causes errors are not treated as adjustable.
 */
bool isValidConfig(const PipelineConfig &config,
                   const DatasetSpec &dataset,
                   const HostSpec &host);

} // namespace tpupoint

#endif // TPUPOINT_OPTIMIZER_PARAMETERS_HH

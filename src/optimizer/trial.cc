#include "optimizer/trial.hh"

#include "core/logging.hh"
#include "core/strings.hh"

namespace tpupoint {

TrialRunner::TrialRunner(const RuntimeWorkload &workload,
                         const SessionConfig &base,
                         StepId start_step,
                         std::uint64_t trial_steps)
    : work(workload), base_config(base), restart_step(start_step),
      steps_per_trial(trial_steps)
{
    if (trial_steps == 0)
        fatal("TrialRunner: need at least one trial step");
    if (start_step + trial_steps > work.schedule.train_steps) {
        fatal("TrialRunner: trial window [", start_step, ", ",
              start_step + trial_steps,
              ") exceeds the training run");
    }
}

TrialResult
TrialRunner::evaluate(const PipelineConfig &config) const
{
    Simulator sim;
    SessionConfig trial_config = base_config;
    trial_config.pipeline = config;
    trial_config.start_step = restart_step;
    trial_config.stop_at_step = restart_step + steps_per_trial;

    TrainingSession session(sim, trial_config, work);
    session.start(nullptr);
    sim.run();
    ++trials;

    const SessionResult &result = session.result();
    TrialResult out;
    out.config = config;
    out.wall_time = result.wall_time;
    out.train_window = result.train_window;
    out.steps = result.steps_completed;
    if (out.steps > 0) {
        out.seconds_per_step = toSeconds(out.train_window) /
            static_cast<double>(out.steps);
    }
    return out;
}

TrialSearchResult
searchFromCheckpoint(const TrialRunner &runner,
                     const PipelineConfig &initial,
                     const std::vector<TunableParam> &adjustable,
                     const DatasetSpec &dataset,
                     const HostSpec &host, double min_improvement)
{
    TrialSearchResult result;
    result.best_config = initial;

    const TrialResult baseline = runner.evaluate(initial);
    result.baseline_seconds_per_step = baseline.seconds_per_step;
    result.best_seconds_per_step = baseline.seconds_per_step;
    result.log.push_back(
        "baseline: " +
        formatDouble(1e3 * baseline.seconds_per_step, 3) +
        " ms/step (" + initial.toString() + ")");

    for (const TunableParam param : adjustable) {
        for (const int direction : {+1, -1}) {
            while (true) {
                const auto candidate = neighborValue(
                    result.best_config, param, direction);
                if (!candidate)
                    break;
                PipelineConfig probe = result.best_config;
                setParam(probe, param, *candidate);
                if (!isValidConfig(probe, dataset, host))
                    break;
                const TrialResult trial = runner.evaluate(probe);
                ++result.trials;
                const bool improved = trial.seconds_per_step <
                    result.best_seconds_per_step *
                        (1.0 - min_improvement);
                result.log.push_back(
                    std::string(improved ? "accepted "
                                         : "rejected ") +
                    tunableParamName(param) + " = " +
                    std::to_string(*candidate) + " (" +
                    formatDouble(1e3 * trial.seconds_per_step,
                                 3) +
                    " ms/step)");
                if (!improved)
                    break;
                result.best_config = probe;
                result.best_seconds_per_step =
                    trial.seconds_per_step;
            }
        }
    }
    result.log.push_back("best: " +
                         result.best_config.toString());
    return result;
}

} // namespace tpupoint

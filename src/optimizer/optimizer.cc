#include "optimizer/optimizer.hh"

#include "core/logging.hh"

namespace tpupoint {

TpuPointOptimizer::TpuPointOptimizer(Simulator &simulator,
                                     TrainingSession &session_ref,
                                     const OptimizerOptions &options)
    : sim(simulator), session(session_ref), opts(options)
{
}

void
TpuPointOptimizer::start()
{
    if (started)
        panic("TpuPointOptimizer::start called twice");
    started = true;

    // (1) Program analysis and instrumentation.
    analysis = analyzeProgram(session.workload(),
                              session.pipeline().config(),
                              session.sessionConfig().host);

    // (2) Online profiling with records buffered in host memory
    // (the analyzer flag is false on this path — Section III-B).
    profiler = std::make_unique<TpuPointProfiler>(
        sim, session, opts.profiler);
    profiler->start(/*analyzer=*/false);

    // (3) The online tuner with output-quality control.
    tuner = std::make_unique<OnlineTuner>(
        sim, session, *profiler, analysis.adjustable, opts.tuner);
    tuner->start();
}

void
TpuPointOptimizer::stop()
{
    if (tuner)
        tuner->stop();
    if (profiler)
        profiler->stop();
}

const OnlineTuner::Report &
TpuPointOptimizer::report() const
{
    if (!tuner)
        panic("TpuPointOptimizer::report before start");
    return tuner->report();
}

SimTime
TpuPointOptimizer::postProcessingTime() const
{
    const std::uint64_t records =
        profiler ? profiler->records().size() : 0;
    return opts.post_processing_base +
        static_cast<SimTime>(records) *
        opts.post_processing_per_record;
}

double
OptimizationOutcome::speedup() const
{
    if (optimized_wall_with_post <= 0)
        return 0.0;
    return static_cast<double>(baseline.wall_time) /
        static_cast<double>(optimized_wall_with_post);
}

OptimizationOutcome
runOptimizationExperiment(const RuntimeWorkload &workload,
                          const SessionConfig &base,
                          const OptimizerOptions &options)
{
    OptimizationOutcome outcome;
    outcome.initial_config = base.pipeline;

    {
        // Baseline: the program exactly as the user wrote it.
        Simulator sim;
        TrainingSession session(sim, base, workload);
        session.start(nullptr);
        sim.run();
        outcome.baseline = session.result();
    }
    {
        // With TPUPoint-Optimizer attached.
        Simulator sim;
        TrainingSession session(sim, base, workload);
        TpuPointOptimizer optimizer(sim, session, options);
        optimizer.start();
        session.start(nullptr);
        sim.run();
        optimizer.stop();
        outcome.optimized = session.result();
        outcome.optimized_wall_with_post =
            outcome.optimized.wall_time +
            optimizer.postProcessingTime();
        outcome.tuned_config = session.pipeline().config();
        outcome.tuner_report = optimizer.report();
        outcome.output_quality_ok =
            outcome.optimized.steps_completed ==
            outcome.baseline.steps_completed;
    }
    return outcome;
}

} // namespace tpupoint

#include "optimizer/quality.hh"

namespace tpupoint {

void
OutputQualityGuard::onStep(StepId step)
{
    ++observed;
    if (have_last && step <= last_step) {
        // Duplicate or reordered result tuple: output changed.
        intact = false;
    }
    last_step = step;
    have_last = true;
}

bool
OutputQualityGuard::preservesOutput(TunableParam param)
{
    switch (param) {
      case TunableParam::ParallelReads:
      case TunableParam::ParallelCalls:
      case TunableParam::PrefetchDepth:
      case TunableParam::ShuffleBuffer:
      case TunableParam::MapAndBatchFusion:
        return true;
    }
    return false;
}

} // namespace tpupoint

#include "optimizer/parameters.hh"

#include <algorithm>

#include "core/logging.hh"

namespace tpupoint {

std::vector<TunableParam>
allTunableParams()
{
    return {TunableParam::ParallelCalls,
            TunableParam::PrefetchDepth,
            TunableParam::ParallelReads,
            TunableParam::MapAndBatchFusion,
            TunableParam::ShuffleBuffer};
}

const char *
tunableParamName(TunableParam param)
{
    switch (param) {
      case TunableParam::ParallelReads: return "num_parallel_reads";
      case TunableParam::ParallelCalls: return "num_parallel_calls";
      case TunableParam::PrefetchDepth: return "prefetch_depth";
      case TunableParam::ShuffleBuffer: return "shuffle_buffer";
      case TunableParam::MapAndBatchFusion:
        return "map_and_batch_fusion";
    }
    panic("tunableParamName: unknown parameter");
}

std::int64_t
getParam(const PipelineConfig &config, TunableParam param)
{
    switch (param) {
      case TunableParam::ParallelReads:
        return config.num_parallel_reads;
      case TunableParam::ParallelCalls:
        return config.num_parallel_calls;
      case TunableParam::PrefetchDepth:
        return static_cast<std::int64_t>(config.prefetch_depth);
      case TunableParam::ShuffleBuffer:
        return static_cast<std::int64_t>(config.shuffle_buffer);
      case TunableParam::MapAndBatchFusion:
        return config.map_and_batch_fused ? 1 : 0;
    }
    panic("getParam: unknown parameter");
}

void
setParam(PipelineConfig &config, TunableParam param,
         std::int64_t value)
{
    switch (param) {
      case TunableParam::ParallelReads:
        config.num_parallel_reads = static_cast<int>(value);
        return;
      case TunableParam::ParallelCalls:
        config.num_parallel_calls = static_cast<int>(value);
        return;
      case TunableParam::PrefetchDepth:
        config.prefetch_depth = static_cast<std::size_t>(value);
        return;
      case TunableParam::ShuffleBuffer:
        config.shuffle_buffer = static_cast<std::size_t>(value);
        return;
      case TunableParam::MapAndBatchFusion:
        config.map_and_batch_fused = value != 0;
        return;
    }
    panic("setParam: unknown parameter");
}

std::optional<std::int64_t>
neighborValue(const PipelineConfig &config, TunableParam param,
              int direction)
{
    const std::int64_t current = getParam(config, param);
    if (param == TunableParam::MapAndBatchFusion) {
        const std::int64_t target = direction > 0 ? 1 : 0;
        if (target == current)
            return std::nullopt;
        return target;
    }
    if (direction > 0)
        return current * 2;
    if (current <= 1)
        return std::nullopt;
    return current / 2;
}

bool
isValidConfig(const PipelineConfig &config,
              const DatasetSpec &dataset, const HostSpec &host)
{
    if (config.num_parallel_reads < 1 ||
        config.num_parallel_calls < 1)
        return false;
    if (config.prefetch_depth < 1)
        return false;
    if (config.shuffle_buffer < 1)
        return false;
    // More worker threads than the host schedules is an error the
    // runtime rejects.
    if (config.num_parallel_calls > 2 * host.threads())
        return false;
    if (config.num_parallel_reads > 128)
        return false;
    // A shuffle buffer beyond the dataset raises OutOfRange.
    if (dataset.num_examples &&
        config.shuffle_buffer > dataset.num_examples)
        return false;
    // Prefetching more than 64 batches exhausts host memory for
    // the large-batch image workloads.
    if (config.prefetch_depth > 64)
        return false;
    return true;
}

} // namespace tpupoint

/**
 * @file
 * Output-quality control (Section VII: TPUPoint-Optimizer "controls
 * the output quality" and only keeps a parameter change when
 * "performance improves and output does not change"). The guard
 * checks two things: the tuned parameter is semantics-preserving,
 * and the training output stream (one result tuple per step,
 * strictly ordered) is unperturbed by the change.
 */

#ifndef TPUPOINT_OPTIMIZER_QUALITY_HH
#define TPUPOINT_OPTIMIZER_QUALITY_HH

#include <cstdint>

#include "core/types.hh"
#include "optimizer/parameters.hh"

namespace tpupoint {

/**
 * Watches the outfeed result stream for gaps, duplicates or
 * reordering — any of which would mean an optimization changed
 * program output.
 */
class OutputQualityGuard
{
  public:
    /** Observe one completed step (outfeed order). */
    void onStep(StepId step);

    /** True while the output stream is intact. */
    bool consistent() const { return intact; }

    /** Steps observed. */
    std::uint64_t stepsObserved() const { return observed; }

    /**
     * Whether altering @p param can change program output. All of
     * the pipeline parameters TPUPoint-Optimizer considers are
     * execution-level; none alter computed results.
     */
    static bool preservesOutput(TunableParam param);

  private:
    bool intact = true;
    bool have_last = false;
    StepId last_step = 0;
    std::uint64_t observed = 0;
};

} // namespace tpupoint

#endif // TPUPOINT_OPTIMIZER_QUALITY_HH

/**
 * @file
 * TPUPoint-Optimizer's program-analysis pass (Section VII-A): scan
 * the program between the profiler's Start()/Stop() calls, identify
 * the user-defined adjustable parameters (dropping any whose
 * alteration would error), and plan instrumentation — a checkpoint
 * before each function call of the profiled program.
 */

#ifndef TPUPOINT_OPTIMIZER_PROGRAM_ANALYSIS_HH
#define TPUPOINT_OPTIMIZER_PROGRAM_ANALYSIS_HH

#include <string>
#include <vector>

#include "optimizer/parameters.hh"
#include "runtime/workload.hh"

namespace tpupoint {

/** Result of analyzing one TensorFlow program. */
struct ProgramAnalysis
{
    /** Parameters that survived the validity probes. */
    std::vector<TunableParam> adjustable;

    /** Parameters rejected because altering them errors. */
    std::vector<TunableParam> rejected;

    /** Pipeline stages instrumented with pre-call checkpoints. */
    std::vector<std::string> instrumentation_points;
};

/**
 * Analyze @p workload's input program under @p config. Each
 * candidate parameter is probed by checking that at least one
 * neighbouring value is executable; parameters with no valid
 * neighbour are not adjustable.
 */
ProgramAnalysis analyzeProgram(const RuntimeWorkload &workload,
                               const PipelineConfig &config,
                               const HostSpec &host);

} // namespace tpupoint

#endif // TPUPOINT_OPTIMIZER_PROGRAM_ANALYSIS_HH

/**
 * @file
 * TPUPoint-Optimizer's online tuner (Section VII-B). It watches the
 * profiler's statistical records until the workload enters its
 * performance-critical phase — detected either by the common
 * pattern of operators (reshape, infeed, fusion, outfeed) topping
 * the current phase, or by the current phase exceeding half of the
 * aggregated execution time — then hill-climbs the adjustable
 * parameters: keep moving a value in a direction while performance
 * improves and output is unchanged, revert otherwise, and finish
 * the run with the best configuration found.
 */

#ifndef TPUPOINT_OPTIMIZER_TUNER_HH
#define TPUPOINT_OPTIMIZER_TUNER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "analyzer/ols.hh"
#include "optimizer/parameters.hh"
#include "optimizer/quality.hh"
#include "profiler/profiler.hh"
#include "runtime/session.hh"
#include "sim/simulator.hh"

namespace tpupoint {

/** Tuning knobs. */
struct TunerOptions
{
    /** Steps skipped after applying a change before measuring. */
    std::uint64_t settle_steps = 5;

    /** Steps in one measurement window. */
    std::uint64_t window_steps = 30;

    /** Required relative improvement to keep a change. */
    double min_improvement = 0.03;

    /** Phase share that marks the performance-critical phase. */
    double critical_share = 0.5;

    /** How often the tuner polls the profiler's records. */
    SimTime poll_interval = 500 * kMsec;

    /** OLS threshold for the tuner's phase tracking. */
    double ols_threshold = 0.70;
};

/**
 * The online tuner. Owns no threads: everything runs on simulator
 * events and the session's step callback.
 */
class OnlineTuner
{
  public:
    /** What the tuner did, for reporting and tests. */
    struct Report
    {
        PipelineConfig initial_config;
        PipelineConfig best_config;
        bool critical_phase_detected = false;
        SimTime critical_detected_at = 0;
        std::uint64_t trials = 0;
        std::uint64_t accepted = 0;
        bool finished = false;
        std::vector<std::string> log;
    };

    OnlineTuner(Simulator &simulator, TrainingSession &session,
                TpuPointProfiler &profiler,
                const std::vector<TunableParam> &adjustable,
                const TunerOptions &options = {});

    /** Install callbacks and begin watching for the critical
     * phase. */
    void start();

    /** Detach (no further changes are applied). */
    void stop();

    /** Tuning report so far. */
    const Report &report() const { return status; }

  private:
    enum class State
    {
        WaitCritical,
        Settle,
        Measure,
        Done,
    };

    void pollRecords();
    void onStep(StepId step, SimTime step_time);
    void beginWindow(bool is_baseline);
    void windowComplete(double window_time);
    bool advanceToNextCandidate();
    void applyCandidate();
    void note(std::string message);

    Simulator &sim;
    TrainingSession &session;
    TpuPointProfiler &profiler;
    TunerOptions opts;
    std::vector<TunableParam> params;
    OutputQualityGuard guard;

    // Phase tracking (the OLS three-step sliding window).
    OnlineLinearScan ols;
    std::size_t records_seen = 0;
    SimTime observed_time = 0;
    SimTime current_phase_time = 0;
    StepStats prev_step;
    bool have_prev_step = false;
    OpStatsMap phase_tpu_ops;
    OpStatsMap phase_host_ops;

    // Hill climbing.
    State state = State::WaitCritical;
    bool measuring_baseline = true;
    double best_window_time = 0.0;
    std::size_t param_index = 0;
    int direction = +1;
    std::uint64_t steps_in_state = 0;
    double window_accum = 0.0;
    EventId poll_event = 0;
    PipelineConfig pending_config;
    TunableParam pending_param = TunableParam::ParallelCalls;
    std::int64_t pending_value = 0;

    Report status;
};

} // namespace tpupoint

#endif // TPUPOINT_OPTIMIZER_TUNER_HH

/**
 * @file
 * Checkpoint-based trial runs. Section VII-A: TPUPoint-Optimizer
 * "instruments code to produce checkpoints before each function
 * call", which is what "allows for online tuning without the need
 * for complete program execution" — a candidate configuration can
 * be evaluated by replaying a short window of training from a saved
 * checkpoint instead of a whole run. TrialRunner packages that
 * replay loop; searchFromCheckpoint() hill-climbs a configuration
 * entirely out of trial windows.
 */

#ifndef TPUPOINT_OPTIMIZER_TRIAL_HH
#define TPUPOINT_OPTIMIZER_TRIAL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "optimizer/parameters.hh"
#include "runtime/session.hh"

namespace tpupoint {

/** One trial's outcome. */
struct TrialResult
{
    PipelineConfig config;
    SimTime wall_time = 0;        ///< Whole trial (incl. restore).
    SimTime train_window = 0;     ///< First to last step.
    std::uint64_t steps = 0;
    double seconds_per_step = 0.0; ///< The tuning objective.
};

/**
 * Replays short training windows from a checkpoint under candidate
 * configurations.
 */
class TrialRunner
{
  public:
    /**
     * @param base Platform configuration the trials inherit
     *     (device, host, seed); the pipeline field is replaced per
     *     trial.
     * @param start_step Checkpoint step to restart from.
     * @param trial_steps Steps to replay per trial.
     */
    TrialRunner(const RuntimeWorkload &workload,
                const SessionConfig &base, StepId start_step,
                std::uint64_t trial_steps);

    /** Evaluate one candidate configuration. */
    TrialResult evaluate(const PipelineConfig &config) const;

    /** Trials executed so far. */
    std::uint64_t trialsRun() const { return trials; }

  private:
    RuntimeWorkload work;
    SessionConfig base_config;
    StepId restart_step;
    std::uint64_t steps_per_trial;
    mutable std::uint64_t trials = 0;
};

/** Result of a checkpoint-based configuration search. */
struct TrialSearchResult
{
    PipelineConfig best_config;
    double best_seconds_per_step = 0.0;
    double baseline_seconds_per_step = 0.0;
    std::uint64_t trials = 0;
    std::vector<std::string> log;

    /** Projected steady-state speedup of the tuned config. */
    double
    projectedSpeedup() const
    {
        return best_seconds_per_step > 0
            ? baseline_seconds_per_step / best_seconds_per_step
            : 0.0;
    }
};

/**
 * Coordinate-descent search over @p adjustable using checkpoint
 * trials only: the same accept/revert policy as the online tuner
 * (keep moving while the trial improves by @p min_improvement),
 * but each measurement is an isolated replay from the checkpoint —
 * no full training run is ever needed.
 */
TrialSearchResult searchFromCheckpoint(
    const TrialRunner &runner, const PipelineConfig &initial,
    const std::vector<TunableParam> &adjustable,
    const DatasetSpec &dataset, const HostSpec &host,
    double min_improvement = 0.03);

} // namespace tpupoint

#endif // TPUPOINT_OPTIMIZER_TRIAL_HH

#include "sim/simulator.hh"

#include "core/logging.hh"

namespace tpupoint {

EventId
Simulator::schedule(SimTime delay, Callback fn)
{
    if (delay < 0)
        panic("Simulator::schedule: negative delay ", delay);
    return events.schedule(current_time + delay, std::move(fn));
}

EventId
Simulator::scheduleAt(SimTime when, Callback fn)
{
    if (when < current_time) {
        panic("Simulator::scheduleAt: timestamp ", when,
              " is in the past (now ", current_time, ")");
    }
    return events.schedule(when, std::move(fn));
}

bool
Simulator::cancel(EventId id)
{
    return events.cancel(id);
}

std::uint64_t
Simulator::run()
{
    return runUntil(kTimeForever);
}

std::uint64_t
Simulator::runUntil(SimTime deadline)
{
    stop_requested = false;
    std::uint64_t count = 0;
    while (!events.empty() && !stop_requested) {
        if (events.nextTime() > deadline) {
            current_time = deadline;
            break;
        }
        auto [when, fn] = events.pop();
        current_time = when;
        fn();
        ++count;
        ++executed;
    }
    return count;
}

} // namespace tpupoint

/**
 * @file
 * Pending-event set for the discrete-event simulator: a binary heap
 * ordered by (timestamp, insertion sequence) with O(log n) insertion
 * and lazy cancellation.
 */

#ifndef TPUPOINT_SIM_EVENT_QUEUE_HH
#define TPUPOINT_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/types.hh"

namespace tpupoint {

/** Opaque handle to a scheduled event, used for cancellation. */
using EventId = std::uint64_t;

/**
 * Time-ordered queue of callbacks. Events with equal timestamps fire
 * in insertion order, which makes simulations deterministic.
 * Cancellation is lazy: heap entries whose callback was cancelled are
 * skipped on pop.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Insert an event; returns a handle usable with cancel(). */
    EventId schedule(SimTime when, Callback fn);

    /**
     * Cancel a pending event.
     * @return true when the event existed and had not yet fired.
     */
    bool cancel(EventId id);

    /** True when no live events remain. */
    bool empty() const { return pending.empty(); }

    /** Number of live (non-cancelled, unfired) events. */
    std::size_t size() const { return pending.size(); }

    /** Timestamp of the earliest live event; kTimeForever if none. */
    SimTime nextTime() const;

    /**
     * Remove and return the earliest live event.
     * @pre !empty()
     */
    std::pair<SimTime, Callback> pop();

  private:
    struct Entry
    {
        SimTime when;
        EventId id;

        bool
        operator>(const Entry &other) const
        {
            if (when != other.when)
                return when > other.when;
            return id > other.id;
        }
    };

    /** Discard heap entries whose callbacks were cancelled. */
    void purgeDead() const;

    mutable std::priority_queue<Entry, std::vector<Entry>,
                                std::greater<Entry>> heap;
    std::unordered_map<EventId, Callback> pending;
    EventId next_id = 1;
};

} // namespace tpupoint

#endif // TPUPOINT_SIM_EVENT_QUEUE_HH

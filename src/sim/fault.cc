#include "sim/fault.hh"

#include <algorithm>

#include "core/logging.hh"

namespace tpupoint {

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::None: return "none";
      case FaultKind::TransientError: return "transient-error";
      case FaultKind::LatencySpike: return "latency-spike";
      case FaultKind::StreamReset: return "stream-reset";
    }
    panic("faultKindName: unknown kind");
}

bool
FaultSpec::enabled() const
{
    for (const auto &window : windows) {
        if (!window.quiet())
            return true;
    }
    return false;
}

FaultSpec
FaultSpec::uniform(double error_rate, double spike_rate,
                   double reset_rate)
{
    FaultWindow window;
    window.error_rate = error_rate;
    window.spike_rate = spike_rate;
    window.reset_rate = reset_rate;
    FaultSpec spec;
    spec.windows.push_back(window);
    return spec;
}

const char *
preemptionKindName(PreemptionKind kind)
{
    switch (kind) {
      case PreemptionKind::Eviction: return "eviction";
      case PreemptionKind::Maintenance: return "maintenance";
    }
    panic("preemptionKindName: unknown kind");
}

bool
PreemptionSpec::enabled() const
{
    return !events.empty() || rate_per_hour > 0;
}

PreemptionSpec
PreemptionSpec::at(SimTime when, PreemptionKind kind)
{
    PreemptionSpec spec;
    spec.events.push_back({when, kind});
    return spec;
}

PreemptionSpec
PreemptionSpec::poisson(double per_hour, std::uint64_t seed)
{
    PreemptionSpec spec;
    spec.rate_per_hour = per_hour;
    spec.seed = seed;
    return spec;
}

PreemptionPlan::PreemptionPlan(const PreemptionSpec &spec,
                               std::uint64_t fallback_seed)
    : schedule(spec.events),
      rng(spec.seed ? spec.seed : fallback_seed)
{
    if (spec.rate_per_hour < 0)
        fatal("PreemptionPlan: rate must be non-negative");
    if (spec.maintenance_share < 0 || spec.maintenance_share > 1)
        fatal("PreemptionPlan: maintenance share must lie in [0, 1]");
    for (const auto &event : schedule) {
        if (event.at < 0)
            fatal("PreemptionPlan: events cannot predate the run");
    }
    if (spec.rate_per_hour > 0) {
        // Materialize the Poisson arrivals up front — exponential
        // inter-arrival gaps at the configured hourly rate — so the
        // whole schedule is a pure function of the seed, however
        // many attempts end up consulting it.
        constexpr SimTime kHour = 3600 * kSec;
        const SimTime horizon = spec.horizon > 0
            ? spec.horizon : 30 * 24 * kHour;
        double t_hours = 0;
        for (;;) {
            t_hours += rng.exponential(spec.rate_per_hour);
            const SimTime at = static_cast<SimTime>(
                t_hours * static_cast<double>(kHour));
            if (at >= horizon)
                break;
            PreemptionEvent event;
            event.at = at;
            event.kind = rng.bernoulli(spec.maintenance_share)
                ? PreemptionKind::Maintenance
                : PreemptionKind::Eviction;
            schedule.push_back(event);
        }
    }
    std::stable_sort(schedule.begin(), schedule.end(),
                     [](const PreemptionEvent &a,
                        const PreemptionEvent &b) {
                         return a.at < b.at;
                     });
}

const PreemptionEvent *
PreemptionPlan::poll(SimTime now)
{
    if (cursor >= schedule.size() || schedule[cursor].at > now)
        return nullptr;
    ++fired;
    return &schedule[cursor++];
}

void
PreemptionPlan::discardUntil(SimTime now)
{
    while (cursor < schedule.size() && schedule[cursor].at <= now) {
        ++cursor;
        ++skipped;
    }
}

std::string
PreemptionPlan::summary() const
{
    return std::to_string(schedule.size()) + " scheduled, " +
        std::to_string(fired) + " triggered, " +
        std::to_string(skipped) + " discarded";
}

FaultPlan::FaultPlan(const FaultSpec &spec,
                     std::uint64_t fallback_seed)
    : plan(spec), rng(spec.seed ? spec.seed : fallback_seed)
{
    for (const auto &window : plan.windows) {
        if (window.error_rate < 0 || window.error_rate > 1 ||
            window.spike_rate < 0 || window.spike_rate > 1 ||
            window.reset_rate < 0 || window.reset_rate > 1)
            fatal("FaultPlan: rates must lie in [0, 1]");
        if (window.end <= window.begin)
            fatal("FaultPlan: window end must follow its begin");
    }
}

FaultDecision
FaultPlan::sample(SimTime now)
{
    ++sampled;
    FaultDecision decision;
    const FaultWindow *active = nullptr;
    for (const auto &window : plan.windows) {
        if (window.active(now) && !window.quiet()) {
            active = &window;
            break;
        }
    }
    if (!active)
        return decision;

    // One class per attempt, errors taking precedence over resets
    // over spikes; each draw comes from the plan's own stream so
    // the schedule is a pure function of the seed.
    if (rng.bernoulli(active->error_rate)) {
        decision.kind = FaultKind::TransientError;
    } else if (rng.bernoulli(active->reset_rate)) {
        decision.kind = FaultKind::StreamReset;
        decision.completed_fraction = rng.nextDouble();
    } else if (rng.bernoulli(active->spike_rate)) {
        decision.kind = FaultKind::LatencySpike;
        decision.extra_latency = static_cast<SimTime>(
            static_cast<double>(active->spike_latency) *
            rng.exponential(1.0));
    }
    ++counts[static_cast<std::size_t>(decision.kind)];
    return decision;
}

std::uint64_t
FaultPlan::injected(FaultKind kind) const
{
    return counts[static_cast<std::size_t>(kind)];
}

std::uint64_t
FaultPlan::injectedTotal() const
{
    return injected(FaultKind::TransientError) +
        injected(FaultKind::LatencySpike) +
        injected(FaultKind::StreamReset);
}

std::string
FaultPlan::summary() const
{
    std::string out;
    out += "errors=" +
        std::to_string(injected(FaultKind::TransientError));
    out += " spikes=" +
        std::to_string(injected(FaultKind::LatencySpike));
    out += " resets=" +
        std::to_string(injected(FaultKind::StreamReset));
    out += " of " + std::to_string(sampled) + " samples";
    return out;
}

} // namespace tpupoint

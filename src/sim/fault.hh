/**
 * @file
 * Transient-fault injection for Resource-backed services. A real
 * cloud bucket is not a steady-state pipe: requests fail with
 * retryable errors, tail latency spikes, and long transfers are
 * reset mid-stream. A FaultPlan is a deterministic, seeded schedule
 * of such events keyed to simulated time; services sample it once
 * per operation attempt and react (retry, stall, resume), so whole
 * fault experiments replay bit-for-bit from one seed.
 */

#ifndef TPUPOINT_SIM_FAULT_HH
#define TPUPOINT_SIM_FAULT_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/rng.hh"
#include "core/types.hh"

namespace tpupoint {

/** Classes of injected behaviour, sampled per operation attempt. */
enum class FaultKind : std::uint8_t {
    None,           ///< The attempt proceeds normally.
    TransientError, ///< The request fails after its round trip.
    LatencySpike,   ///< The attempt succeeds but pays tail latency.
    StreamReset,    ///< The transfer dies partway through.
};

/** Printable fault-kind name. */
const char *faultKindName(FaultKind kind);

/**
 * One window of the schedule. Rates are per-attempt probabilities;
 * a window with all rates zero is quiet. Windows are keyed to sim
 * time so experiments can model, e.g., a five-minute brown-out in
 * the middle of a run.
 */
struct FaultWindow
{
    SimTime begin = 0;
    SimTime end = kTimeForever;

    /** P(retryable request error) per attempt. */
    double error_rate = 0.0;

    /** P(tail-latency spike) per attempt. */
    double spike_rate = 0.0;

    /** Mean added latency of a spike (exponential tail). */
    SimTime spike_latency = 80 * kMsec;

    /** P(mid-transfer stream reset) per attempt. */
    double reset_rate = 0.0;

    /** True when @p now falls inside [begin, end). */
    bool
    active(SimTime now) const
    {
        return now >= begin && now < end;
    }

    /** True when every rate is zero. */
    bool
    quiet() const
    {
        return error_rate <= 0 && spike_rate <= 0 && reset_rate <= 0;
    }
};

/** The full injection schedule plus its seed — a config value. */
struct FaultSpec
{
    std::vector<FaultWindow> windows;

    /** Plan seed; 0 derives one from the owning session's seed. */
    std::uint64_t seed = 0;

    /** True when any window can actually inject something. */
    bool enabled() const;

    /** One always-active window with the given rates. */
    static FaultSpec uniform(double error_rate,
                             double spike_rate = 0.0,
                             double reset_rate = 0.0);
};

/** Outcome of sampling the plan for one operation attempt. */
struct FaultDecision
{
    FaultKind kind = FaultKind::None;

    /** LatencySpike: latency added on top of the clean attempt. */
    SimTime extra_latency = 0;

    /**
     * StreamReset: fraction of the transfer paid before the reset
     * killed it, in [0, 1).
     */
    double completed_fraction = 0.0;

    /** True when the attempt must be retried. */
    bool
    failed() const
    {
        return kind == FaultKind::TransientError ||
            kind == FaultKind::StreamReset;
    }
};

/**
 * A live, seeded instance of a FaultSpec. Sampling order is the
 * simulator's (single-threaded, deterministic) event order, so a
 * fixed seed yields the same fault sequence every run. One plan is
 * shared by every service it is injected into; counters record what
 * was actually injected for tests and reports.
 */
class FaultPlan
{
  public:
    /** A quiet plan: sample() always returns None. */
    FaultPlan() : rng(0) {}

    /**
     * @param fallback_seed Used when @p spec.seed is zero, so every
     *     session derives a distinct-but-reproducible stream from
     *     its own seed.
     */
    FaultPlan(const FaultSpec &spec, std::uint64_t fallback_seed);

    /** Sample the outcome of one operation attempt starting now. */
    FaultDecision sample(SimTime now);

    /**
     * Deterministic jitter draw in [0, 1) for retry backoff. Drawn
     * from the same stream as the faults so one seed fixes the
     * whole experiment.
     */
    double jitter() { return rng.nextDouble(); }

    /** True when some window can inject. */
    bool enabled() const { return plan.enabled(); }

    /** Attempts sampled (including ones that drew None). */
    std::uint64_t samples() const { return sampled; }

    /** Faults injected of @p kind. */
    std::uint64_t injected(FaultKind kind) const;

    /** Faults injected across all kinds (None excluded). */
    std::uint64_t injectedTotal() const;

    /** "errors=3 spikes=1 resets=0 of 512 samples". */
    std::string summary() const;

  private:
    FaultSpec plan;
    Rng rng;
    std::uint64_t sampled = 0;
    std::array<std::uint64_t, 4> counts{};
};

} // namespace tpupoint

#endif // TPUPOINT_SIM_FAULT_HH

/**
 * @file
 * Transient-fault injection for Resource-backed services. A real
 * cloud bucket is not a steady-state pipe: requests fail with
 * retryable errors, tail latency spikes, and long transfers are
 * reset mid-stream. A FaultPlan is a deterministic, seeded schedule
 * of such events keyed to simulated time; services sample it once
 * per operation attempt and react (retry, stall, resume), so whole
 * fault experiments replay bit-for-bit from one seed.
 *
 * Interruption of the device itself — preemptible-instance
 * eviction, maintenance restarts — is modeled the same way: a
 * PreemptionSpec is a deterministic schedule of PreemptionEvents a
 * running TrainingSession consults at safe boundaries, aborting
 * with a partial result when one has landed (the robustness layer
 * ResilientRunner recovers from).
 */

#ifndef TPUPOINT_SIM_FAULT_HH
#define TPUPOINT_SIM_FAULT_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/rng.hh"
#include "core/types.hh"

namespace tpupoint {

/** Classes of injected behaviour, sampled per operation attempt. */
enum class FaultKind : std::uint8_t {
    None,           ///< The attempt proceeds normally.
    TransientError, ///< The request fails after its round trip.
    LatencySpike,   ///< The attempt succeeds but pays tail latency.
    StreamReset,    ///< The transfer dies partway through.
};

/** Printable fault-kind name. */
const char *faultKindName(FaultKind kind);

/**
 * One window of the schedule. Rates are per-attempt probabilities;
 * a window with all rates zero is quiet. Windows are keyed to sim
 * time so experiments can model, e.g., a five-minute brown-out in
 * the middle of a run.
 */
struct FaultWindow
{
    SimTime begin = 0;
    SimTime end = kTimeForever;

    /** P(retryable request error) per attempt. */
    double error_rate = 0.0;

    /** P(tail-latency spike) per attempt. */
    double spike_rate = 0.0;

    /** Mean added latency of a spike (exponential tail). */
    SimTime spike_latency = 80 * kMsec;

    /** P(mid-transfer stream reset) per attempt. */
    double reset_rate = 0.0;

    /** True when @p now falls inside [begin, end). */
    bool
    active(SimTime now) const
    {
        return now >= begin && now < end;
    }

    /** True when every rate is zero. */
    bool
    quiet() const
    {
        return error_rate <= 0 && spike_rate <= 0 && reset_rate <= 0;
    }
};

/** The full injection schedule plus its seed — a config value. */
struct FaultSpec
{
    std::vector<FaultWindow> windows;

    /** Plan seed; 0 derives one from the owning session's seed. */
    std::uint64_t seed = 0;

    /** True when any window can actually inject something. */
    bool enabled() const;

    /** One always-active window with the given rates. */
    static FaultSpec uniform(double error_rate,
                             double spike_rate = 0.0,
                             double reset_rate = 0.0);
};

/** Outcome of sampling the plan for one operation attempt. */
struct FaultDecision
{
    FaultKind kind = FaultKind::None;

    /** LatencySpike: latency added on top of the clean attempt. */
    SimTime extra_latency = 0;

    /**
     * StreamReset: fraction of the transfer paid before the reset
     * killed it, in [0, 1).
     */
    double completed_fraction = 0.0;

    /** True when the attempt must be retried. */
    bool
    failed() const
    {
        return kind == FaultKind::TransientError ||
            kind == FaultKind::StreamReset;
    }
};

/** Classes of device interruption a Cloud TPU job can suffer. */
enum class PreemptionKind : std::uint8_t {
    Eviction,    ///< Preemptible-instance eviction; the device is gone.
    Maintenance, ///< Host maintenance event; the device restarts.
};

/** Printable preemption-kind name. */
const char *preemptionKindName(PreemptionKind kind);

/** One scheduled device interruption, keyed to simulated time. */
struct PreemptionEvent
{
    SimTime at = 0;
    PreemptionKind kind = PreemptionKind::Eviction;
};

/**
 * The device-interruption schedule — a config value, like
 * FaultSpec. Explicit events model known maintenance windows;
 * `rate_per_hour` adds seeded Poisson arrivals (the preemptible-TPU
 * eviction model) materialized deterministically over `horizon`.
 * Sessions consult the live PreemptionPlan at safe boundaries (the
 * host-loop joins where TPUEstimator regains control) and abort
 * with a partial result when an event has landed.
 */
struct PreemptionSpec
{
    /** Explicit interruptions (any order; the plan sorts them). */
    std::vector<PreemptionEvent> events;

    /** Mean Poisson eviction arrivals per simulated hour. */
    double rate_per_hour = 0.0;

    /** P(a sampled arrival is Maintenance rather than Eviction). */
    double maintenance_share = 0.0;

    /** Sampling horizon for rate arrivals; 0 = 30 simulated days. */
    SimTime horizon = 0;

    /** Plan seed; 0 derives one from the owning session's seed. */
    std::uint64_t seed = 0;

    /** True when the spec can interrupt anything. */
    bool enabled() const;

    /** One explicit interruption at @p when. */
    static PreemptionSpec at(
        SimTime when, PreemptionKind kind = PreemptionKind::Eviction);

    /** Poisson evictions at @p per_hour mean arrivals. */
    static PreemptionSpec poisson(double per_hour,
                                  std::uint64_t seed = 0);
};

/**
 * A live, seeded instance of a PreemptionSpec: the full
 * interruption schedule, materialized at construction so a fixed
 * seed yields the same interruptions every run. Events are consumed
 * in time order with poll(); events that land while no device is
 * held (between attempts of a restarted run) are dropped with
 * discardUntil(). One plan spans every attempt of a resilient run,
 * so a consumed interruption never fires twice.
 */
class PreemptionPlan
{
  public:
    /** A quiet plan: poll() always returns nullptr. */
    PreemptionPlan() : rng(0) {}

    /**
     * @param fallback_seed Used when @p spec.seed is zero, so every
     *     session derives a distinct-but-reproducible stream from
     *     its own seed.
     */
    PreemptionPlan(const PreemptionSpec &spec,
                   std::uint64_t fallback_seed);

    /** True when any interruption is scheduled at all. */
    bool enabled() const { return !schedule.empty(); }

    /** The full materialized schedule, ascending by time. */
    const std::vector<PreemptionEvent> &events() const
    {
        return schedule;
    }

    /**
     * The earliest unconsumed event with `at <= now`, or nullptr.
     * The returned event is consumed: it will interrupt exactly one
     * attempt. The pointer stays valid for the plan's lifetime.
     */
    const PreemptionEvent *poll(SimTime now);

    /**
     * Drop unconsumed events with `at <= now`: an interruption that
     * lands while no device is held (restart backoff) evicts
     * nothing.
     */
    void discardUntil(SimTime now);

    /** Events consumed by poll() so far. */
    std::uint64_t triggered() const { return fired; }

    /** Events dropped by discardUntil() so far. */
    std::uint64_t discarded() const { return skipped; }

    /**
     * Deterministic jitter draw in [0, 1) for restart backoff,
     * from the plan's own stream — one seed fixes the whole
     * preemption experiment, arrivals and backoffs alike.
     */
    double jitter() { return rng.nextDouble(); }

    /** "2 scheduled, 1 triggered, 0 discarded". */
    std::string summary() const;

  private:
    std::vector<PreemptionEvent> schedule;
    std::size_t cursor = 0;
    Rng rng;
    std::uint64_t fired = 0;
    std::uint64_t skipped = 0;
};

/**
 * A live, seeded instance of a FaultSpec. Sampling order is the
 * simulator's (single-threaded, deterministic) event order, so a
 * fixed seed yields the same fault sequence every run. One plan is
 * shared by every service it is injected into; counters record what
 * was actually injected for tests and reports.
 */
class FaultPlan
{
  public:
    /** A quiet plan: sample() always returns None. */
    FaultPlan() : rng(0) {}

    /**
     * @param fallback_seed Used when @p spec.seed is zero, so every
     *     session derives a distinct-but-reproducible stream from
     *     its own seed.
     */
    FaultPlan(const FaultSpec &spec, std::uint64_t fallback_seed);

    /** Sample the outcome of one operation attempt starting now. */
    FaultDecision sample(SimTime now);

    /**
     * Deterministic jitter draw in [0, 1) for retry backoff. Drawn
     * from the same stream as the faults so one seed fixes the
     * whole experiment.
     */
    double jitter() { return rng.nextDouble(); }

    /** True when some window can inject. */
    bool enabled() const { return plan.enabled(); }

    /** Attempts sampled (including ones that drew None). */
    std::uint64_t samples() const { return sampled; }

    /** Faults injected of @p kind. */
    std::uint64_t injected(FaultKind kind) const;

    /** Faults injected across all kinds (None excluded). */
    std::uint64_t injectedTotal() const;

    /** "errors=3 spikes=1 resets=0 of 512 samples". */
    std::string summary() const;

  private:
    FaultSpec plan;
    Rng rng;
    std::uint64_t sampled = 0;
    std::array<std::uint64_t, 4> counts{};
};

} // namespace tpupoint

#endif // TPUPOINT_SIM_FAULT_HH

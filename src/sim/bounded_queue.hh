/**
 * @file
 * A bounded producer/consumer channel for the event-driven platform
 * model. Blocking semantics are expressed with continuations: a full
 * queue parks the producer's continuation, an empty queue parks the
 * consumer's. The infeed pipeline (host -> PCIe -> TPU) is built from
 * these, and TPU idle time *is* the time a consumer spends parked.
 */

#ifndef TPUPOINT_SIM_BOUNDED_QUEUE_HH
#define TPUPOINT_SIM_BOUNDED_QUEUE_HH

#include <deque>
#include <functional>
#include <utility>

#include "core/logging.hh"
#include "sim/simulator.hh"

namespace tpupoint {

/**
 * Bounded FIFO channel of T with continuation-passing push/pop.
 * All handoffs are scheduled through the simulator at zero delay so
 * that callbacks never nest re-entrantly.
 */
template <typename T>
class BoundedQueue
{
  public:
    using PushDone = std::function<void()>;
    using PopDone = std::function<void(T)>;

    /**
     * @param simulator The owning simulation kernel.
     * @param capacity Maximum buffered items; must be positive.
     */
    BoundedQueue(Simulator &simulator, std::size_t capacity)
        : sim(simulator), max_items(capacity)
    {
        if (capacity == 0)
            fatal("BoundedQueue capacity must be positive");
    }

    BoundedQueue(const BoundedQueue &) = delete;
    BoundedQueue &operator=(const BoundedQueue &) = delete;

    /**
     * Offer an item. @p on_accepted fires (at zero simulated delay)
     * once the item has entered the queue — immediately when space
     * exists, or later when a consumer frees a slot.
     */
    void
    push(T item, PushDone on_accepted)
    {
        if (!waiting_consumers.empty()) {
            // Hand the item straight to the parked consumer.
            PopDone consumer = std::move(waiting_consumers.front());
            waiting_consumers.pop_front();
            sim.schedule(0, [fn = std::move(consumer),
                             v = std::move(item)]() mutable {
                fn(std::move(v));
            });
            completePush(std::move(on_accepted));
            return;
        }
        if (items.size() < max_items) {
            items.push_back(std::move(item));
            completePush(std::move(on_accepted));
            return;
        }
        waiting_producers.emplace_back(std::move(item),
                                       std::move(on_accepted));
    }

    /**
     * Take an item. @p on_item fires once an item is available —
     * immediately when the queue is non-empty, or when the next
     * producer arrives.
     */
    void
    pop(PopDone on_item)
    {
        if (!items.empty()) {
            T item = std::move(items.front());
            items.pop_front();
            admitParkedProducer();
            sim.schedule(0, [fn = std::move(on_item),
                             v = std::move(item)]() mutable {
                fn(std::move(v));
            });
            return;
        }
        if (!waiting_producers.empty()) {
            // Capacity 0-in-flight case: producer parked on a full
            // queue can only happen when items is non-empty, so a
            // parked producer with an empty queue means direct
            // handoff.
            auto [item, done] = std::move(waiting_producers.front());
            waiting_producers.pop_front();
            completePush(std::move(done));
            sim.schedule(0, [fn = std::move(on_item),
                             v = std::move(item)]() mutable {
                fn(std::move(v));
            });
            return;
        }
        waiting_consumers.emplace_back(std::move(on_item));
    }

    /** Items currently buffered (excludes parked producers). */
    std::size_t size() const { return items.size(); }

    /** True when no buffered items exist. */
    bool empty() const { return items.empty(); }

    /** True when the buffer is at capacity. */
    bool full() const { return items.size() >= max_items; }

    /** Configured capacity. */
    std::size_t capacity() const { return max_items; }

    /**
     * Retarget the capacity at runtime (the optimizer retunes
     * prefetch depths live). Growing admits parked producers;
     * shrinking strands no items — the buffer simply drains down.
     */
    void
    setCapacity(std::size_t new_capacity)
    {
        if (new_capacity == 0)
            fatal("BoundedQueue capacity must be positive");
        max_items = new_capacity;
        while (!waiting_producers.empty() &&
               items.size() < max_items) {
            admitParkedProducer();
        }
    }

    /** Number of producers parked on a full queue. */
    std::size_t blockedProducers() const
    {
        return waiting_producers.size();
    }

    /** Number of consumers parked on an empty queue. */
    std::size_t blockedConsumers() const
    {
        return waiting_consumers.size();
    }

  private:
    void
    completePush(PushDone done)
    {
        if (done)
            sim.schedule(0, std::move(done));
    }

    /** A slot freed up: admit the oldest parked producer, if any. */
    void
    admitParkedProducer()
    {
        if (waiting_producers.empty() || items.size() >= max_items)
            return;
        auto [item, done] = std::move(waiting_producers.front());
        waiting_producers.pop_front();
        items.push_back(std::move(item));
        completePush(std::move(done));
    }

    Simulator &sim;
    std::size_t max_items;
    std::deque<T> items;
    std::deque<std::pair<T, PushDone>> waiting_producers;
    std::deque<PopDone> waiting_consumers;
};

} // namespace tpupoint

#endif // TPUPOINT_SIM_BOUNDED_QUEUE_HH

#include "sim/event_queue.hh"

#include "core/logging.hh"

namespace tpupoint {

EventId
EventQueue::schedule(SimTime when, Callback fn)
{
    if (!fn)
        panic("EventQueue::schedule: null callback");
    const EventId id = next_id++;
    heap.push(Entry{when, id});
    pending.emplace(id, std::move(fn));
    return id;
}

bool
EventQueue::cancel(EventId id)
{
    return pending.erase(id) > 0;
}

void
EventQueue::purgeDead() const
{
    while (!heap.empty() &&
           pending.find(heap.top().id) == pending.end()) {
        heap.pop();
    }
}

SimTime
EventQueue::nextTime() const
{
    purgeDead();
    return heap.empty() ? kTimeForever : heap.top().when;
}

std::pair<SimTime, EventQueue::Callback>
EventQueue::pop()
{
    purgeDead();
    if (heap.empty())
        panic("EventQueue::pop on an empty queue");
    const Entry entry = heap.top();
    heap.pop();
    auto it = pending.find(entry.id);
    Callback fn = std::move(it->second);
    pending.erase(it);
    return {entry.when, std::move(fn)};
}

} // namespace tpupoint

/**
 * @file
 * A counted resource with FIFO waiters: models the host worker
 * thread pool, the PCIe channel and other contended units.
 */

#ifndef TPUPOINT_SIM_RESOURCE_HH
#define TPUPOINT_SIM_RESOURCE_HH

#include <deque>
#include <functional>

#include "core/logging.hh"
#include "sim/simulator.hh"

namespace tpupoint {

/**
 * N interchangeable units acquired one at a time. acquire() invokes
 * its continuation when a unit is granted; release() returns one.
 */
class Resource
{
  public:
    using Granted = std::function<void()>;

    /**
     * @param simulator The owning simulation kernel.
     * @param units Number of units; must be positive.
     */
    Resource(Simulator &simulator, std::size_t units)
        : sim(simulator), total_units(units), free_units(units)
    {
        if (units == 0)
            fatal("Resource requires at least one unit");
    }

    Resource(const Resource &) = delete;
    Resource &operator=(const Resource &) = delete;

    /** Request one unit; @p fn runs when the unit is granted. */
    void
    acquire(Granted fn)
    {
        if (free_units > 0) {
            --free_units;
            sim.schedule(0, std::move(fn));
        } else {
            waiters.push_back(std::move(fn));
        }
    }

    /** Return one unit, waking the oldest waiter if any. */
    void
    release()
    {
        if (!waiters.empty()) {
            Granted fn = std::move(waiters.front());
            waiters.pop_front();
            sim.schedule(0, std::move(fn));
            return;
        }
        if (free_units >= total_units)
            panic("Resource::release: more releases than acquires");
        ++free_units;
    }

    /**
     * Convenience: acquire, hold for @p duration, then release and
     * invoke @p done.
     */
    void
    use(SimTime duration, Granted done)
    {
        acquire([this, duration, done = std::move(done)]() mutable {
            sim.schedule(duration, [this,
                                    done = std::move(done)]() mutable {
                release();
                if (done)
                    done();
            });
        });
    }

    /** Units not currently held. */
    std::size_t freeUnits() const { return free_units; }

    /** Total configured units. */
    std::size_t totalUnits() const { return total_units; }

    /** Requests parked waiting for a unit. */
    std::size_t waiting() const { return waiters.size(); }

  private:
    Simulator &sim;
    std::size_t total_units;
    std::size_t free_units;
    std::deque<Granted> waiters;
};

} // namespace tpupoint

#endif // TPUPOINT_SIM_RESOURCE_HH

/**
 * @file
 * The discrete-event simulator driving the Cloud-TPU platform model.
 * Single-threaded and fully deterministic: events at the same
 * timestamp fire in scheduling order.
 */

#ifndef TPUPOINT_SIM_SIMULATOR_HH
#define TPUPOINT_SIM_SIMULATOR_HH

#include <cstdint>
#include <functional>

#include "core/types.hh"
#include "sim/event_queue.hh"

namespace tpupoint {

/**
 * Event-driven simulation kernel. Entities (host pipeline stages,
 * infeed transfer, TPU cores) schedule callbacks against this clock.
 */
class Simulator
{
  public:
    using Callback = EventQueue::Callback;

    /** Current simulated time. */
    SimTime now() const { return current_time; }

    /**
     * Schedule @p fn to run @p delay nanoseconds from now.
     * @pre delay >= 0
     */
    EventId schedule(SimTime delay, Callback fn);

    /**
     * Schedule @p fn at an absolute timestamp.
     * @pre when >= now()
     */
    EventId scheduleAt(SimTime when, Callback fn);

    /** Cancel a pending event; true if it had not fired yet. */
    bool cancel(EventId id);

    /**
     * Run until the event set drains or stop() is called.
     * @return number of events executed.
     */
    std::uint64_t run();

    /**
     * Run until simulated time would exceed @p deadline. Events
     * stamped exactly at the deadline still execute; the clock then
     * rests at the deadline if work remains.
     * @return number of events executed.
     */
    std::uint64_t runUntil(SimTime deadline);

    /** Request that run()/runUntil() return after the current event. */
    void stop() { stop_requested = true; }

    /** True when no events are pending. */
    bool idle() const { return events.empty(); }

    /** Total events executed over the simulator's lifetime. */
    std::uint64_t eventsExecuted() const { return executed; }

  private:
    EventQueue events;
    SimTime current_time = 0;
    bool stop_requested = false;
    std::uint64_t executed = 0;
};

} // namespace tpupoint

#endif // TPUPOINT_SIM_SIMULATOR_HH

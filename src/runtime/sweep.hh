/**
 * @file
 * SweepRunner: run N independent profiled training sessions across
 * a thread pool. Each job gets its own Simulator, TrainingSession
 * and TpuPointProfiler, so sessions share nothing and results are
 * bit-identical whatever the thread count or scheduling order —
 * the per-job seed is derived from the job's position in the
 * sweep, never from the worker that happens to execute it. This is
 * what turns the Table-I/figure benchmarks' serial per-workload
 * loops into one parallel sweep.
 */

#ifndef TPUPOINT_RUNTIME_SWEEP_HH
#define TPUPOINT_RUNTIME_SWEEP_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/progress.hh"
#include "profiler/profiler.hh"
#include "runtime/resilient.hh"
#include "runtime/session.hh"

namespace tpupoint {

class ThreadPool;

/** One sweep entry: a workload on a platform configuration. */
struct SweepJob
{
    RuntimeWorkload workload;
    SessionConfig config;
    ProfilerOptions profiler;

    /** Attach TPUPoint-Profiler to this session. */
    bool profile = true;

    /** Restart orchestration used when the job's config schedules
     * preemptions (SessionConfig::preemption). */
    ResilientOptions resilience;
};

/** How one sweep entry ended. */
enum class JobStatus : std::uint8_t {
    Ok,        ///< Ran to completion; the result is full.
    Preempted, ///< Attempt budget exhausted; the result is partial.
    Failed,    ///< Threw; `error` holds the message, result empty.
};

/** Printable job-status name. */
const char *jobStatusName(JobStatus status);

/** Everything one sweep entry produces. */
struct SweepOutcome
{
    std::size_t job_index = 0;

    /** How the job ended; the fields below are only meaningful for
     * Ok (and, partially, Preempted) jobs. */
    JobStatus status = JobStatus::Ok;

    /** Failure message for Failed jobs ("" otherwise). */
    std::string error;

    /** Sessions started (> 1 when preemptions forced restarts). */
    std::uint32_t attempts = 1;

    /** Steps run more than once across restarts. */
    std::uint64_t replayed_steps = 0;

    SessionResult result;
    std::vector<ProfileRecord> records;
    std::vector<CheckpointInfo> checkpoints;
    std::uint64_t profiler_bytes = 0;
    std::uint64_t profile_requests = 0;

    /** True when the job produced a usable (full) result. */
    bool ok() const { return status == JobStatus::Ok; }
};

/** Sweep execution knobs. */
struct SweepOptions
{
    /**
     * Worker threads; 0 resolves through the process-wide knob:
     * TPUPOINT_THREADS if set, else hardware concurrency (see
     * resolveThreadCount()). Ignored when `pool` is given.
     */
    unsigned threads = 0;

    /**
     * Run jobs on this caller-owned pool instead of creating one —
     * the process-wide `--threads N` pool shared with the analysis
     * stack. The runner only borrows it: jobs fan out with
     * ThreadPool::forEach and the pool survives the sweep.
     */
    ThreadPool *pool = nullptr;

    /**
     * Derive a distinct deterministic seed for each job from its
     * configured seed, @ref seed_salt and the job index. Off by
     * default so a sweep reproduces the serial loops it replaces
     * byte for byte; turn on when the same workload appears many
     * times and the runs should differ.
     */
    bool derive_seeds = false;

    /** Extra entropy mixed into derived seeds. */
    std::uint64_t seed_salt = 0;

    /**
     * Rethrow the first job exception after the pool joins,
     * discarding every outcome — the pre-failure-isolation
     * behaviour, for callers that treat any job failure as a sweep
     * failure. Off by default: failures land in their job's
     * SweepOutcome and the rest of the sweep survives.
     */
    bool strict = false;

    /** Extra times a Failed job is re-run before it is recorded as
     * Failed (0 = no retries). Deterministic jobs fail the same
     * way every time; this is for jobs whose failure is injected
     * or environmental. */
    unsigned job_retries = 0;

    /**
     * Invoked on every job start/retry/finish with running totals
     * (obs::ProgressReporter renders a status line or JSONL).
     * Invocations are serialized under the runner's own mutex, so
     * the sink needs no locking; it must not throw. The callback
     * observes wall-clock progress only — job results are
     * bit-identical with or without a sink attached.
     */
    obs::ProgressSink progress;
};

/**
 * The sweep runner. Jobs fan out across a core::ThreadPool (a
 * borrowed SweepOptions::pool or one the runner creates per run);
 * outcomes land at their job's index, so the output order equals
 * the input order regardless of completion order.
 */
class SweepRunner
{
  public:
    explicit SweepRunner(const SweepOptions &options = {});

    /** Worker threads a runner-created pool will use (the borrowed
     * pool's own worker count applies when SweepOptions::pool is
     * set). */
    unsigned threads() const { return thread_count; }

    /**
     * Run every job; blocks until all complete. A throwing job
     * records JobStatus::Failed in its own outcome and the rest of
     * the sweep is returned intact; with SweepOptions::strict the
     * first exception is rethrown after the pool joins instead.
     */
    std::vector<SweepOutcome> run(
        const std::vector<SweepJob> &jobs) const;

    /**
     * The seed job @p index runs with under derive_seeds: a
     * splitmix64 mix of @p base, @p salt and the index. Thread
     * count and scheduling never enter the derivation.
     */
    static std::uint64_t jobSeed(std::uint64_t base,
                                 std::uint64_t salt,
                                 std::size_t index);

  private:
    SweepOptions opts;
    unsigned thread_count;
};

} // namespace tpupoint

#endif // TPUPOINT_RUNTIME_SWEEP_HH

/**
 * @file
 * The runtime's view of a workload: compiled step schedules, the
 * dataset, and the training-loop shape (train/eval/checkpoint
 * cadence). The workload catalog (`workloads/`) builds these from
 * the Table I model definitions.
 */

#ifndef TPUPOINT_RUNTIME_WORKLOAD_HH
#define TPUPOINT_RUNTIME_WORKLOAD_HH

#include <cstdint>
#include <string>

#include "graph/schedule.hh"
#include "host/dataset.hh"

namespace tpupoint {

/** Training-loop shape (the TPUEstimator parameters). */
struct SessionSchedule
{
    std::uint64_t train_steps = 1000;

    /** Run an eval pass after this many train steps (0 = never). */
    std::uint64_t steps_per_eval = 0;

    /** Steps in one eval pass. */
    std::uint64_t eval_steps = 0;

    /** Save a checkpoint every N train steps (0 = final only). */
    std::uint64_t checkpoint_interval = 0;

    /** Steps dispatched per host RunGraph call (TPUEstimator's
     * iterations_per_loop). */
    std::uint64_t iterations_per_loop = 100;
};

/**
 * Everything the TrainingSession needs to execute one workload.
 */
struct RuntimeWorkload
{
    std::string name;             ///< e.g. "resnet-imagenet".
    StepSchedule train_schedule;  ///< Post-fusion training step.
    StepSchedule eval_schedule;   ///< Post-fusion eval step.
    DatasetSpec dataset;
    std::uint64_t batch_size = 0;
    std::uint64_t model_bytes = 0; ///< Checkpoint size.
    SessionSchedule schedule;

    /**
     * Time-scaled-replay factor for fixed costs (TPU system init,
     * XLA compilation, disconnect). 1.0 replays them at full
     * length; the workload catalog lowers it in lock-step with the
     * eval/checkpoint cadences so every overhead keeps its
     * full-scale share of the run.
     */
    double fixed_cost_scale = 1.0;
};

} // namespace tpupoint

#endif // TPUPOINT_RUNTIME_WORKLOAD_HH

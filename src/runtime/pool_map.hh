/**
 * @file
 * The one fan-out idiom behind every independent-item sweep in the
 * repo: run `fn(0..count)` on a pool when that actually buys
 * parallelism, else inline on the calling thread. The k-means k
 * sweep, the DBSCAN min-samples sweep and SweepRunner's job fan-out
 * all used to hand-roll the same pool-vs-serial branch; they (and
 * the incremental analysis path) now share this header, so a change
 * to the dispatch policy lands in one place.
 *
 * Determinism contract (same as ThreadPool::forEach): `fn` must
 * write preassigned, per-index state only — poolMap never reorders
 * results, so pooled and serial execution are bit-identical. The
 * serial fallback runs indices ascending; callers that want a
 * different schedule under the pool (e.g. largest-job-first) fold
 * the mapping into `fn` itself, where it cannot affect outputs.
 *
 * Header-only on purpose: it depends only on core/thread_pool.hh,
 * so the analyzer's sweeps can include it without creating an
 * analyzer -> runtime link edge (the runtime library sits above the
 * analyzer in the target graph).
 */

#ifndef TPUPOINT_RUNTIME_POOL_MAP_HH
#define TPUPOINT_RUNTIME_POOL_MAP_HH

#include <cstddef>

#include "core/thread_pool.hh"

namespace tpupoint {
namespace runtime {

/**
 * Apply @p fn to every index in [0, count), fanning out on @p pool
 * when it exists, has workers, and there is more than one item;
 * otherwise inline, ascending. @p label names the pool tasks in
 * traces/metrics (ignored on the inline path).
 */
template <typename Fn>
void
poolMap(ThreadPool *pool, std::size_t count, Fn &&fn,
        const char *label = nullptr)
{
    if (count == 0)
        return;
    if (pool != nullptr && !pool->inlineMode() && count > 1) {
        pool->forEach(count, fn, label);
        return;
    }
    for (std::size_t i = 0; i < count; ++i)
        fn(i);
}

} // namespace runtime
} // namespace tpupoint

#endif // TPUPOINT_RUNTIME_POOL_MAP_HH

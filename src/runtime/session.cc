#include "runtime/session.hh"

#include <algorithm>

#include "core/logging.hh"
#include "host/host_ops.hh"

namespace tpupoint {

namespace {

/** Steps at which an every-N boundary is crossed in (a, b]. */
std::uint64_t
boundariesCrossed(std::uint64_t a, std::uint64_t b, std::uint64_t n)
{
    if (n == 0)
        return 0;
    return b / n - a / n;
}

} // namespace

TrainingSession::TrainingSession(Simulator &simulator,
                                 const SessionConfig &session_config,
                                 const RuntimeWorkload &workload_def)
    : sim(simulator), config(session_config), work(workload_def),
      fault_plan(session_config.faults,
                 session_config.seed ^ 0x4641554c54ULL /* FAULT */),
      own_preempt(session_config.preemption,
                  session_config.seed ^ 0x505245454d50ULL /* PREEMP */),
      storage(simulator, session_config.storage),
      input(simulator, session_config.host, storage,
            workload_def.dataset, workload_def.batch_size,
            workload_def.train_schedule.infeed_bytes,
            session_config.pipeline, Rng(session_config.seed),
            &hub),
      infeed_q(simulator,
               std::max<std::size_t>(
                   session_config.infeed_queue_depth, 1)),
      outfeed_q(simulator, 4),
      core(simulator, session_config.device, infeed_q, outfeed_q),
      infeed(simulator, input.output(), infeed_q,
             session_config.device.pcie_bandwidth, &hub),
      outfeed(simulator, outfeed_q,
              session_config.device.pcie_bandwidth, &hub),
      ckpt(simulator, storage, workload_def.model_bytes, &hub)
{
    core.setSink(&hub);
    storage.setTraceSink(&hub);
    if (fault_plan.enabled())
        storage.injectFaults(&fault_plan, config.retry);
    next_step = config.start_step;
}

void
TrainingSession::emitHost(const char *type, SimTime start,
                          SimTime duration, StepId step)
{
    TraceEvent event;
    event.type = type;
    event.start = start;
    event.duration = duration;
    event.step = step;
    event.device = EventDevice::Host;
    hub.record(event);
}

std::uint64_t
TrainingSession::totalBatchesNeeded() const
{
    std::uint64_t end = work.schedule.train_steps;
    if (config.stop_at_step && config.stop_at_step < end)
        end = config.stop_at_step;
    const std::uint64_t start = config.start_step;
    const std::uint64_t train = end > start ? end - start : 0;
    std::uint64_t evals = 0;
    if (work.schedule.steps_per_eval && work.schedule.eval_steps) {
        evals = boundariesCrossed(start, end,
                                  work.schedule.steps_per_eval) *
            work.schedule.eval_steps;
    }
    return train + evals;
}

void
TrainingSession::start(std::function<void()> on_complete)
{
    completion = std::move(on_complete);
    initPhase();
}

void
TrainingSession::initPhase()
{
    // The init phase of a Cloud TPU job: system handshake, XLA
    // program compilation, then variable restore. All are charged
    // to the first step so the analyzer sees them as the leading
    // program phase.
    const StepId init_step = next_step;

    const double fixed_scale = work.fixed_cost_scale;
    const SimTime tpu_init = static_cast<SimTime>(
        8.0 * kSec * fixed_scale);
    const SimTime compile = static_cast<SimTime>(
        (1.0 * kSec + static_cast<double>(
             work.train_schedule.size()) * 12.0 * kMsec) *
        fixed_scale);

    const SimTime t0 = sim.now();
    emitHost(hostop::kConfigureDistributedTPU, t0, 500 * kMsec,
             init_step);
    sim.schedule(tpu_init, [this, init_step, t0, compile]() {
        emitHost(hostop::kInitializeHostForDistributedTpu, t0,
                 sim.now() - t0, init_step);
        const SimTime c0 = sim.now();
        sim.schedule(compile, [this, init_step, c0]() {
            emitHost(hostop::kStartProgram, c0, sim.now() - c0,
                     init_step);
            ckpt.restore(config.start_step, [this]() {
                // The init work above is charged to a setup
                // pseudo-step of its own; training steps start at
                // the next id, so phase detectors see a distinct
                // initialization phase the way real profiles do.
                ++next_step;
                // Host threads spin up and training begins.
                input.start(next_step, totalBatchesNeeded());
                infeed.start();
                outfeed.start([this](StepResult result) {
                    const SimTime step_time = last_step_end
                        ? sim.now() - last_step_end
                        : sim.now() - first_step_start;
                    last_step_end = sim.now();
                    last_completed_step = result.step;
                    if (step_cb)
                        step_cb(result.step, step_time);
                });
                first_step_start = sim.now();
                trainLoop();
            });
        });
    });
}

void
TrainingSession::runSteps(std::uint64_t count,
                          const StepSchedule &schedule, bool is_eval,
                          std::function<void()> next)
{
    if (count == 0) {
        if (next)
            next();
        return;
    }
    const StepId step = next_step++;
    if (is_eval) {
        // Eval metrics are computed on the host from the outfed
        // tensors; these operators only ever appear in eval steps.
        emitHost(hostop::kArgMax, sim.now(), 120 * kUsec, step);
        emitHost(hostop::kEqual, sim.now(), 60 * kUsec, step);
        emitHost(hostop::kMean, sim.now(), 60 * kUsec, step);
        emitHost(hostop::kConcatV2, sim.now(), 80 * kUsec, step);
        emitHost(hostop::kSqueeze, sim.now(), 40 * kUsec, step);
    }
    // Capture the schedule by address: it lives in the workload
    // definition, which outlives the session.
    const StepSchedule *sched = &schedule;
    core.runStep(schedule, step,
                 [this, count, sched, is_eval,
                  next = std::move(next)]() mutable {
        runSteps(count - 1, *sched, is_eval, std::move(next));
    });
}

void
TrainingSession::trainLoop()
{
    std::uint64_t end = work.schedule.train_steps;
    if (config.stop_at_step && config.stop_at_step < end)
        end = config.stop_at_step;
    const std::uint64_t gstep = config.start_step + train_done;
    if (gstep >= end) {
        finishRun();
        return;
    }

    // The host-loop join is the safe boundary for device
    // interruption: no step is in flight, so the session can stop
    // with an exact "completed through gstep" result. An
    // interruption that landed mid-loop takes effect here — the
    // loop's steps still ran, just as a real eviction notice
    // observed at the next session checkpoint would.
    if (const PreemptionEvent *event = preempt->poll(sim.now())) {
        abortRun(*event);
        return;
    }

    const std::uint64_t loop_steps =
        std::min(work.schedule.iterations_per_loop, end - gstep);

    // Host-side dispatch of one device loop. These run on the
    // session thread concurrently with device execution.
    emitHost(hostop::kRunGraph, sim.now(), 2 * kMsec, next_step);
    emitHost(hostop::kSend, sim.now(), 300 * kUsec, next_step);

    runSteps(loop_steps, work.train_schedule, false,
             [this, loop_steps, gstep]() {
        emitHost(hostop::kRecv, sim.now(), 300 * kUsec,
                 next_step ? next_step - 1 : 0);
        emitHost(hostop::kLSRAv2, sim.now(), 150 * kUsec,
                 next_step ? next_step - 1 : 0);
        train_done += loop_steps;
        const std::uint64_t new_gstep =
            config.start_step + train_done;

        auto resume = [this]() { trainLoop(); };

        auto maybe_checkpoint = [this, gstep, new_gstep,
                                 resume]() {
            if (boundariesCrossed(gstep, new_gstep,
                                  work.schedule
                                      .checkpoint_interval)) {
                ckpt.save(new_gstep, resume);
            } else {
                resume();
            }
        };

        if (boundariesCrossed(gstep, new_gstep,
                              work.schedule.steps_per_eval) &&
            work.schedule.eval_steps) {
            // TPUEstimator evaluation spins up its own session:
            // it restores the latest checkpoint, then runs the
            // eval program.
            ckpt.restore(next_step, [this, maybe_checkpoint]() {
                runSteps(work.schedule.eval_steps,
                         work.eval_schedule, true,
                         maybe_checkpoint);
            });
        } else {
            maybe_checkpoint();
        }
    });
}

void
TrainingSession::captureMetrics()
{
    outcome.wall_time = sim.now();
    outcome.train_window = last_step_end > first_step_start
        ? last_step_end - first_step_start : 0;
    outcome.steps_completed = train_done;
    outcome.tpu = core.counters();
    outcome.pipeline = input.counters();
    // Idle is wall-based over the whole run: every nanosecond the
    // device is not executing operators — initialization, infeed
    // stalls, eval gaps, checkpoint pauses — counts. TPUPoint
    // profiles the entire duration of an application (Section
    // III), so its reported idle includes these.
    const double window = static_cast<double>(outcome.wall_time);
    if (window > 0) {
        outcome.tpu_idle_fraction = 1.0 -
            static_cast<double>(outcome.tpu.busy) / window;
        if (outcome.tpu_idle_fraction < 0)
            outcome.tpu_idle_fraction = 0;
        outcome.mxu_utilization =
            static_cast<double>(outcome.tpu.mxu_active) / window;
    }
    outcome.checkpoints = ckpt.checkpoints();
}

void
TrainingSession::finishRun()
{
    ckpt.save(config.start_step + train_done, [this]() {
        const SimTime t0 = sim.now();
        const SimTime disconnect = static_cast<SimTime>(
            2.0 * kSec * work.fixed_cost_scale);
        sim.schedule(disconnect, [this, t0]() {
            emitHost(hostop::kDisconnectHostFromDistributedTPUSystem,
                     t0, sim.now() - t0,
                     next_step ? next_step - 1 : 0);
            captureMetrics();
            done = true;
            if (completion)
                completion();
        });
    });
}

void
TrainingSession::abortRun(const PreemptionEvent &event)
{
    // The device is gone: no final checkpoint save, no orderly
    // disconnect — just the teardown notice the host observes. The
    // result is partial; whatever checkpoints were saved before the
    // interruption are all a restart can build on.
    const StepId gstep = config.start_step + train_done;
    emitHost(hostop::kDevicePreempted, event.at,
             sim.now() > event.at ? sim.now() - event.at : 0, gstep);
    const SimTime teardown = static_cast<SimTime>(
        200 * kMsec * work.fixed_cost_scale);
    sim.schedule(teardown, [this, event, gstep]() {
        captureMetrics();
        outcome.preempted = true;
        outcome.preemption_kind = event.kind;
        outcome.preempted_at = gstep;
        done = true;
        if (completion)
            completion();
    });
}

const SessionResult &
TrainingSession::result() const
{
    if (!done)
        panic("TrainingSession::result before completion");
    return outcome;
}

} // namespace tpupoint

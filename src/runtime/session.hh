/**
 * @file
 * TrainingSession: the TPUEstimator.train() equivalent. Wires the
 * storage bucket, input pipeline, infeed/outfeed threads and the
 * TPU core into one event-driven training run, emitting the full
 * host+device trace through a TraceHub the profiler can attach to.
 */

#ifndef TPUPOINT_RUNTIME_SESSION_HH
#define TPUPOINT_RUNTIME_SESSION_HH

#include <cstdint>
#include <functional>
#include <memory>

#include "host/checkpoint.hh"
#include "host/infeed.hh"
#include "host/pipeline.hh"
#include "host/spec.hh"
#include "host/storage.hh"
#include "proto/event.hh"
#include "runtime/workload.hh"
#include "sim/fault.hh"
#include "sim/simulator.hh"
#include "tpu/core.hh"
#include "tpu/queues.hh"
#include "tpu/spec.hh"

namespace tpupoint {

/** Platform-level session parameters. */
struct SessionConfig
{
    TpuDeviceSpec device = TpuDeviceSpec::v2();
    HostSpec host = HostSpec::standard();
    StorageSpec storage;
    PipelineConfig pipeline;

    /** Transient-fault schedule for the storage service (quiet by
     * default). Seeded from `seed` unless the spec carries its
     * own, so fault runs replay bit-for-bit. */
    FaultSpec faults;

    /** How storage transfers retry under the fault plan. */
    RetryPolicy retry;

    /** Device-interruption schedule (quiet by default). Seeded
     * from `seed` unless the spec carries its own. A session
     * checks the plan at each host-loop boundary and aborts with a
     * partial result when an interruption has landed. */
    PreemptionSpec preemption;

    /** On-device infeed buffer depth (batches). */
    std::size_t infeed_queue_depth = 2;

    /** Resume training from this global step (checkpoint restart). */
    StepId start_step = 0;

    /** Stop early at this step; 0 disables (profiler breakpoint /
     * optimizer trial runs). */
    StepId stop_at_step = 0;

    /** Seed for all simulated variability. */
    std::uint64_t seed = 0x54505550; // "TPUP"
};

/** Outcome of a completed (or preempted) session. */
struct SessionResult
{
    SimTime wall_time = 0;        ///< Total simulated run time.
    SimTime train_window = 0;     ///< First to last step activity.
    std::uint64_t steps_completed = 0;
    TpuCore::Counters tpu;
    InputPipeline::Counters pipeline;
    double tpu_idle_fraction = 0.0; ///< idle / (busy + idle).
    double mxu_utilization = 0.0;   ///< mxu_active / (busy + idle).
    std::vector<CheckpointInfo> checkpoints;

    /** True when the run was cut short by a device interruption;
     * the result is then *partial* and the fields below apply. */
    bool preempted = false;
    PreemptionKind preemption_kind = PreemptionKind::Eviction;

    /** Last global step completed before the interruption. */
    StepId preempted_at = 0;
};

/**
 * One training run of one workload on one Cloud TPU instance.
 * Asynchronous: construct, optionally attach a profiler to
 * traceHub(), then start() and run the simulator.
 */
class TrainingSession
{
  public:
    using StepCallback =
        std::function<void(StepId step, SimTime step_time)>;

    TrainingSession(Simulator &simulator,
                    const SessionConfig &session_config,
                    const RuntimeWorkload &workload_def);

    /** Event fan-in point; attach the profiler here. */
    TraceHub &traceHub() { return hub; }

    /** Observe per-step completion (the optimizer's feed). */
    void setStepCallback(StepCallback cb) { step_cb = std::move(cb); }

    /** Begin the run; @p on_complete fires after disconnect. */
    void start(std::function<void()> on_complete);

    /** The input pipeline (live-tunable). */
    InputPipeline &pipeline() { return input; }

    /** Checkpoint registry. */
    CheckpointManager &checkpoints() { return ckpt; }

    /** Storage bucket (shared by dataset + checkpoints). */
    StorageBucket &storageBucket() { return storage; }

    /** The live fault plan injected into the storage service. */
    FaultPlan &faultPlan() { return fault_plan; }

    /** The live device-interruption plan being consulted. */
    PreemptionPlan &preemptionPlan() { return *preempt; }

    /**
     * Consult an external interruption plan instead of the
     * config-derived one. ResilientRunner shares one plan across
     * every attempt of a run so a consumed interruption never
     * fires twice. Call before start().
     */
    void injectPreemptions(PreemptionPlan *plan) { preempt = plan; }

    /** TPU device model. */
    TpuCore &tpu() { return core; }

    /** Global step of the most recently completed step. */
    StepId currentStep() const { return last_completed_step; }

    /** True once the run (and disconnect) finished. */
    bool finished() const { return done; }

    /** Result summary. @pre finished() */
    const SessionResult &result() const;

    /** The workload definition in use. */
    const RuntimeWorkload &workload() const { return work; }

    /** The session's platform configuration. */
    const SessionConfig &sessionConfig() const { return config; }

  private:
    void initPhase();
    void trainLoop();
    void runSteps(std::uint64_t count, const StepSchedule &schedule,
                  bool is_eval, std::function<void()> next);
    void finishRun();
    void abortRun(const PreemptionEvent &event);
    void captureMetrics();

    void emitHost(const char *type, SimTime start, SimTime duration,
                  StepId step);

    std::uint64_t totalBatchesNeeded() const;

    Simulator &sim;
    SessionConfig config;
    RuntimeWorkload work;

    TraceHub hub;
    FaultPlan fault_plan;
    PreemptionPlan own_preempt; ///< Config-derived default plan.
    PreemptionPlan *preempt = &own_preempt;
    StorageBucket storage;
    InputPipeline input;
    InfeedQueue infeed_q;
    OutfeedQueue outfeed_q;
    TpuCore core;
    InfeedDriver infeed;
    OutfeedDrain outfeed;
    CheckpointManager ckpt;

    StepCallback step_cb;
    std::function<void()> completion;

    StepId next_step = 0;        ///< Next step id to dispatch.
    std::uint64_t train_done = 0; ///< Train steps completed.
    StepId last_completed_step = 0;
    SimTime last_step_end = 0;
    SimTime first_step_start = 0;
    bool done = false;
    SessionResult outcome;
};

} // namespace tpupoint

#endif // TPUPOINT_RUNTIME_SESSION_HH

#include "runtime/sweep.hh"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "core/logging.hh"

namespace tpupoint {

namespace {

/** One complete, self-contained session: build, run, harvest. */
SweepOutcome
runJob(const SweepJob &job, std::size_t index,
       std::uint64_t seed_override, bool use_override)
{
    SessionConfig config = job.config;
    if (use_override)
        config.seed = seed_override;

    Simulator sim;
    TrainingSession session(sim, config, job.workload);
    std::unique_ptr<TpuPointProfiler> profiler;
    if (job.profile) {
        profiler = std::make_unique<TpuPointProfiler>(
            sim, session, job.profiler);
        profiler->start(/*analyzer=*/true);
    }
    session.start(nullptr);
    sim.run();
    if (profiler)
        profiler->stop();

    SweepOutcome outcome;
    outcome.job_index = index;
    outcome.result = session.result();
    outcome.checkpoints = session.checkpoints().checkpoints();
    if (profiler) {
        outcome.records = profiler->records();
        outcome.profiler_bytes = profiler->bytesRecorded();
        outcome.profile_requests = profiler->requestsIssued();
    }
    return outcome;
}

} // namespace

SweepRunner::SweepRunner(const SweepOptions &options)
    : opts(options), thread_count(options.threads)
{
    if (thread_count == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        thread_count = hw ? hw : 1;
    }
}

std::uint64_t
SweepRunner::jobSeed(std::uint64_t base, std::uint64_t salt,
                     std::size_t index)
{
    // splitmix64: the finalizer scrambles even adjacent indices
    // into unrelated seeds.
    std::uint64_t z = base ^ (salt * 0x9e3779b97f4a7c15ULL) ^
        (static_cast<std::uint64_t>(index) + 1);
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::vector<SweepOutcome>
SweepRunner::run(const std::vector<SweepJob> &jobs) const
{
    std::vector<SweepOutcome> outcomes(jobs.size());
    if (jobs.empty())
        return outcomes;

    const unsigned workers = static_cast<unsigned>(
        std::min<std::size_t>(thread_count, jobs.size()));

    std::atomic<std::size_t> next_job{0};
    std::exception_ptr first_error;
    std::mutex error_mutex;

    auto worker = [&]() {
        for (;;) {
            const std::size_t index =
                next_job.fetch_add(1, std::memory_order_relaxed);
            if (index >= jobs.size())
                return;
            try {
                outcomes[index] = runJob(
                    jobs[index], index,
                    jobSeed(jobs[index].config.seed,
                            opts.seed_salt, index),
                    opts.derive_seeds);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!first_error)
                    first_error = std::current_exception();
            }
        }
    };

    if (workers <= 1) {
        // Single-threaded sweeps run inline: same code path, no
        // pool, convenient under a debugger.
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (unsigned i = 0; i < workers; ++i)
            pool.emplace_back(worker);
        for (auto &thread : pool)
            thread.join();
    }

    if (first_error)
        std::rethrow_exception(first_error);
    return outcomes;
}

} // namespace tpupoint

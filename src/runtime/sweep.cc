#include "runtime/sweep.hh"

#include <algorithm>
#include <chrono>
#include <exception>
#include <mutex>

#include "core/logging.hh"
#include "core/thread_pool.hh"
#include "obs/metrics.hh"
#include "obs/pool_metrics.hh"
#include "obs/span.hh"
#include "runtime/pool_map.hh"

namespace tpupoint {

namespace {

/** Checkpoint-restart path: the job's config schedules device
 * interruptions, so a ResilientRunner orchestrates the attempts and
 * a fresh attempt-stamped profiler covers each one, with
 * attempt-boundary records interleaved for the analyzer. */
SweepOutcome
runResilientJob(const SweepJob &job, std::size_t index,
                const SessionConfig &config)
{
    SweepOutcome outcome;
    outcome.job_index = index;

    Simulator sim;
    ResilientRunner runner(sim, config, job.workload,
                           job.resilience);
    std::unique_ptr<TpuPointProfiler> profiler;

    auto harvest = [&outcome, &profiler]() {
        if (!profiler)
            return;
        const auto &records = profiler->records();
        outcome.records.insert(outcome.records.end(),
                               records.begin(), records.end());
        outcome.profiler_bytes += profiler->bytesRecorded();
        outcome.profile_requests += profiler->requestsIssued();
        profiler.reset();
    };

    if (job.profile) {
        runner.setAttemptHook(
            [&sim, &job, &profiler](TrainingSession &session,
                                    std::uint32_t attempt) {
            ProfilerOptions popts = job.profiler;
            popts.attempt = attempt;
            popts.retain_records = true;
            profiler = std::make_unique<TpuPointProfiler>(
                sim, session, popts);
            profiler->start(/*analyzer=*/true);
        });
        runner.setBoundaryHook(
            [&outcome, &harvest](const AttemptOutcome &failed,
                                 StepId resume) {
            // The preempted attempt's records, then its boundary
            // marker, then (next iteration) the restarted
            // attempt's records.
            harvest();
            ProfileRecord boundary;
            boundary.attempt = failed.index + 1;
            boundary.attempt_boundary = true;
            boundary.preempted_at_step = failed.reached_step;
            boundary.resume_step = resume;
            boundary.window_begin = failed.ended_at;
            boundary.window_end = failed.ended_at;
            outcome.records.push_back(boundary);
        });
    }

    const ResilientResult res = runner.run();
    harvest();

    outcome.status = res.completed ? JobStatus::Ok
                                   : JobStatus::Preempted;
    outcome.attempts = res.attempts;
    outcome.replayed_steps = res.replayed_steps;
    outcome.result = res.final_result;
    // The per-attempt result only counts its own steps; callers of
    // a sweep want the run's total useful progress.
    outcome.result.steps_completed = res.useful_steps;
    outcome.checkpoints = res.checkpoints;
    return outcome;
}

/** One complete, self-contained session: build, run, harvest. */
SweepOutcome
runJob(const SweepJob &job, std::size_t index,
       std::uint64_t seed_override, bool use_override)
{
    SessionConfig config = job.config;
    if (use_override)
        config.seed = seed_override;

    if (config.preemption.enabled())
        return runResilientJob(job, index, config);

    Simulator sim;
    TrainingSession session(sim, config, job.workload);
    std::unique_ptr<TpuPointProfiler> profiler;
    if (job.profile) {
        profiler = std::make_unique<TpuPointProfiler>(
            sim, session, job.profiler);
        profiler->start(/*analyzer=*/true);
    }
    session.start(nullptr);
    sim.run();
    if (profiler)
        profiler->stop();

    SweepOutcome outcome;
    outcome.job_index = index;
    outcome.result = session.result();
    outcome.checkpoints = session.checkpoints().checkpoints();
    if (profiler) {
        outcome.records = profiler->records();
        outcome.profiler_bytes = profiler->bytesRecorded();
        outcome.profile_requests = profiler->requestsIssued();
    }
    return outcome;
}

/**
 * Owns the sweep's running totals and serializes ProgressSink
 * invocations, so worker threads emit progress without coordinating
 * and sinks never observe torn counts.
 */
class ProgressBroker
{
  public:
    ProgressBroker(const obs::ProgressSink &sink_fn,
                   std::size_t total_jobs)
        : sink(sink_fn), total(total_jobs)
    {
    }

    void
    jobStarted(std::size_t index)
    {
        if (!sink)
            return;
        std::lock_guard<std::mutex> lock(guard);
        ++started;
        emit(obs::ProgressEvent::Kind::Start, index, 1, "", 0);
    }

    void
    jobRetried(std::size_t index, unsigned attempt)
    {
        if (!sink)
            return;
        std::lock_guard<std::mutex> lock(guard);
        ++retried;
        emit(obs::ProgressEvent::Kind::Retry, index, attempt, "",
             0);
    }

    void
    jobFinished(std::size_t index, unsigned attempt,
                JobStatus status, double wall_seconds)
    {
        if (!sink)
            return;
        std::lock_guard<std::mutex> lock(guard);
        switch (status) {
          case JobStatus::Ok: ++succeeded; break;
          case JobStatus::Preempted: ++preempted; break;
          case JobStatus::Failed: ++failed; break;
        }
        emit(obs::ProgressEvent::Kind::Finish, index, attempt,
             jobStatusName(status), wall_seconds);
    }

  private:
    void
    emit(obs::ProgressEvent::Kind kind, std::size_t index,
         unsigned attempt, const char *status, double wall_seconds)
    {
        obs::ProgressEvent event;
        event.kind = kind;
        event.item = index;
        event.total = total;
        event.attempt = attempt;
        event.status = status;
        event.wall_seconds = wall_seconds;
        event.started = started;
        event.succeeded = succeeded;
        event.preempted = preempted;
        event.failed = failed;
        event.retried = retried;
        sink(event);
    }

    const obs::ProgressSink &sink;
    std::mutex guard;
    std::size_t total;
    std::size_t started = 0;
    std::size_t succeeded = 0;
    std::size_t preempted = 0;
    std::size_t failed = 0;
    std::size_t retried = 0;
};

} // namespace

const char *
jobStatusName(JobStatus status)
{
    switch (status) {
      case JobStatus::Ok: return "ok";
      case JobStatus::Preempted: return "preempted";
      case JobStatus::Failed: return "failed";
    }
    panic("jobStatusName: unknown status");
}

SweepRunner::SweepRunner(const SweepOptions &options)
    : opts(options),
      thread_count(resolveThreadCount(options.threads))
{
}

std::uint64_t
SweepRunner::jobSeed(std::uint64_t base, std::uint64_t salt,
                     std::size_t index)
{
    // splitmix64: the finalizer scrambles even adjacent indices
    // into unrelated seeds.
    std::uint64_t z = base ^ (salt * 0x9e3779b97f4a7c15ULL) ^
        (static_cast<std::uint64_t>(index) + 1);
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::vector<SweepOutcome>
SweepRunner::run(const std::vector<SweepJob> &jobs) const
{
    std::vector<SweepOutcome> outcomes(jobs.size());
    if (jobs.empty())
        return outcomes;

    std::exception_ptr first_error;
    std::mutex error_mutex;
    ProgressBroker progress(opts.progress, jobs.size());
    auto &registry = obs::MetricsRegistry::global();

    auto run_index = [&](std::size_t index) {
        const unsigned tries = opts.job_retries + 1;
        unsigned tries_used = 1;
        progress.jobStarted(index);
        const auto job_begin = std::chrono::steady_clock::now();
        obs::TraceSpan job_span("sweep.job");
        job_span.arg("job", static_cast<std::uint64_t>(index));
        for (unsigned t = 0; t < tries; ++t) {
            tries_used = t + 1;
            std::exception_ptr err;
            try {
                outcomes[index] = runJob(
                    jobs[index], index,
                    jobSeed(jobs[index].config.seed,
                            opts.seed_salt, index),
                    opts.derive_seeds);
            } catch (...) {
                err = std::current_exception();
            }
            if (!err)
                break;
            if (t + 1 < tries) {
                // Per-job retry budget remains; announce the
                // upcoming try before it begins.
                registry.counter("sweep.jobs_retried").add(1);
                progress.jobRetried(index, t + 2);
                continue;
            }
            // Failure isolation: the job's outcome carries its
            // own status and message; the rest of the sweep is
            // unaffected.
            SweepOutcome failed;
            failed.job_index = index;
            failed.status = JobStatus::Failed;
            failed.attempts = tries;
            try {
                std::rethrow_exception(err);
            } catch (const std::exception &e) {
                failed.error = e.what();
            } catch (...) {
                failed.error = "unknown error";
            }
            outcomes[index] = std::move(failed);
            if (opts.strict) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!first_error)
                    first_error = err;
            }
        }
        const JobStatus status = outcomes[index].status;
        switch (status) {
          case JobStatus::Ok:
            registry.counter("sweep.jobs_completed").add(1);
            break;
          case JobStatus::Preempted:
            registry.counter("sweep.jobs_preempted").add(1);
            break;
          case JobStatus::Failed:
            registry.counter("sweep.jobs_failed").add(1);
            break;
        }
        const double wall_seconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - job_begin)
                .count();
        job_span.arg("status", jobStatusName(status));
        job_span.arg("tries",
                     static_cast<std::uint64_t>(tries_used));
        job_span.finish();
        progress.jobFinished(index, tries_used, status,
                             wall_seconds);
    };

    // Jobs never throw out of run_index (failure isolation above),
    // so the pool's rethrow path stays cold. Each job already opens
    // its own "sweep.job" span, so the fan-out itself is unlabeled
    // to keep traces single-spanned per job.
    if (opts.pool != nullptr) {
        runtime::poolMap(opts.pool, jobs.size(), run_index);
    } else {
        // A runner-created pool sized to the work: a 1-thread (or
        // 1-job) sweep runs inline on this thread — same code
        // path, no pool threads, convenient under a debugger.
        ThreadPoolOptions pool_opts;
        pool_opts.workers = static_cast<unsigned>(
            std::min<std::size_t>(thread_count, jobs.size()));
        pool_opts.hooks = obs::instrumentedPoolHooks("sweep");
        ThreadPool job_pool(pool_opts);
        runtime::poolMap(&job_pool, jobs.size(), run_index);
    }

    // Strict mode keeps the pre-isolation contract: any job
    // failure fails the whole sweep.
    if (opts.strict && first_error)
        std::rethrow_exception(first_error);
    return outcomes;
}

} // namespace tpupoint

/**
 * @file
 * ResilientRunner: checkpoint-restart orchestration for preemptible
 * Cloud TPU jobs. A TrainingSession aborted by a device
 * interruption (sim/fault.hh PreemptionPlan) leaves a partial
 * result; the runner restarts a fresh session from the nearest
 * saved checkpoint (CheckpointManager::nearest), charging the
 * restore and re-warm to the same simulated clock, until the
 * requested steps complete or the attempt budget runs out. Restart
 * backoff reuses the RetryPolicy semantics of the storage layer:
 * capped geometric delay with deterministic jitter drawn from the
 * preemption plan's own stream, so a whole preemption experiment
 * replays bit-for-bit from one seed.
 *
 * Accounting is exact by construction: each attempt's *useful*
 * steps are the progress beyond the furthest step any earlier
 * attempt reached, everything else is replay, and the useful totals
 * across attempts sum to exactly the steps the run requested.
 */

#ifndef TPUPOINT_RUNTIME_RESILIENT_HH
#define TPUPOINT_RUNTIME_RESILIENT_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "runtime/session.hh"

namespace tpupoint {

/** Restart-orchestration knobs. */
struct ResilientOptions
{
    /**
     * Sessions started, the first included. Exhausting the budget
     * with the run still incomplete is not an error: the result
     * reports completed = false and everything that did finish.
     */
    std::uint32_t max_attempts = 8;

    /** Delay before restart attempt k: min(initial * multiplier^k,
     * max), jittered like storage retries. */
    SimTime initial_backoff = 1 * kSec;
    double backoff_multiplier = 2.0;
    SimTime max_backoff = 60 * kSec;

    /** Jitter fraction in [0, 1]: backoff *= 1 +/- jitter. */
    double jitter = 0.25;
};

/** What one attempt did, for reports and boundary records. */
struct AttemptOutcome
{
    std::uint32_t index = 0;       ///< 0-based attempt number.
    StepId start_step = 0;         ///< Step the attempt resumed at.
    bool preempted = false;
    PreemptionKind kind = PreemptionKind::Eviction;
    StepId reached_step = 0;       ///< Last global step completed.
    std::uint64_t steps_run = 0;   ///< Train steps executed.
    std::uint64_t useful_steps = 0; ///< New progress contributed.
    std::uint64_t replayed_steps = 0; ///< steps_run - useful.
    SimTime began_at = 0;
    SimTime ended_at = 0;
};

/** Outcome of the whole resilient run. */
struct ResilientResult
{
    /** True when the requested steps all completed. */
    bool completed = false;

    std::uint32_t attempts = 0;    ///< Sessions actually started.
    std::uint64_t total_steps_run = 0; ///< Across all attempts.
    std::uint64_t useful_steps = 0;    ///< == requested on success.
    std::uint64_t replayed_steps = 0;  ///< Work run twice.
    SimTime wall_time = 0;         ///< Sim clock at the end.
    SimTime backoff_time = 0;      ///< Spent waiting to restart.

    /** Final attempt's session result (partial if !completed). */
    SessionResult final_result;

    /** Per-attempt log, ascending by index. */
    std::vector<AttemptOutcome> attempt_log;

    /** Checkpoints accumulated across every attempt. */
    std::vector<CheckpointInfo> checkpoints;
};

/**
 * Drives a training run to completion across preemptions. One
 * PreemptionPlan spans all attempts (a consumed interruption never
 * fires twice) and one Simulator carries the clock through
 * attempts, restores and backoff, so the reported wall time is the
 * real cost of the preempted run.
 */
class ResilientRunner
{
  public:
    /**
     * Called just before each attempt's session starts, with the
     * session and the attempt index: the hook point for attaching a
     * per-attempt profiler.
     */
    using AttemptHook =
        std::function<void(TrainingSession &session,
                           std::uint32_t attempt)>;

    /**
     * Called right after attempt @p failed was preempted, with the
     * step the next attempt will resume from — the hook point for
     * emitting an attempt-boundary record into a streamed profile.
     * Not called when the attempt budget is already exhausted.
     */
    using BoundaryHook =
        std::function<void(const AttemptOutcome &failed,
                           StepId resume_step)>;

    ResilientRunner(Simulator &simulator,
                    const SessionConfig &session_config,
                    const RuntimeWorkload &workload_def,
                    const ResilientOptions &options = {});

    void setAttemptHook(AttemptHook hook)
    {
        attempt_hook = std::move(hook);
    }

    void setBoundaryHook(BoundaryHook hook)
    {
        boundary_hook = std::move(hook);
    }

    /**
     * Run to completion (or budget exhaustion). Drives the
     * simulator itself: each attempt's event set drains fully
     * before the next starts. @pre the simulator is idle.
     */
    ResilientResult run();

    /** The shared interruption plan (for tests and reports). */
    PreemptionPlan &preemptionPlan() { return plan; }

  private:
    SimTime backoffDelay(std::uint32_t restart_index);

    Simulator &sim;
    SessionConfig base_config;
    RuntimeWorkload work;
    ResilientOptions opts;
    PreemptionPlan plan;
    AttemptHook attempt_hook;
    BoundaryHook boundary_hook;
};

} // namespace tpupoint

#endif // TPUPOINT_RUNTIME_RESILIENT_HH

#include "runtime/resilient.hh"

#include <algorithm>

#include "core/logging.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"

namespace tpupoint {

ResilientRunner::ResilientRunner(Simulator &simulator,
                                 const SessionConfig &session_config,
                                 const RuntimeWorkload &workload_def,
                                 const ResilientOptions &options)
    : sim(simulator), base_config(session_config),
      work(workload_def), opts(options),
      plan(session_config.preemption,
           session_config.seed ^ 0x505245454d50ULL /* PREEMP */)
{
    if (opts.max_attempts < 1)
        fatal("ResilientRunner: attempt budget needs >= 1 attempt");
    if (opts.backoff_multiplier < 1)
        fatal("ResilientRunner: backoff multiplier must be >= 1");
    if (opts.jitter < 0 || opts.jitter > 1)
        fatal("ResilientRunner: jitter must lie in [0, 1]");
    if (opts.initial_backoff < 0)
        fatal("ResilientRunner: backoff must be non-negative");
}

SimTime
ResilientRunner::backoffDelay(std::uint32_t restart_index)
{
    double delay = static_cast<double>(opts.initial_backoff);
    for (std::uint32_t i = 0; i < restart_index; ++i)
        delay *= opts.backoff_multiplier;
    delay = std::min(delay, static_cast<double>(opts.max_backoff));
    if (opts.jitter > 0) {
        // Deterministic jitter from the preemption plan's own
        // stream: one seed fixes the whole restart schedule.
        const double swing = opts.jitter * (2.0 * plan.jitter() - 1.0);
        delay *= 1.0 + swing;
    }
    return static_cast<SimTime>(delay);
}

ResilientResult
ResilientRunner::run()
{
    if (!sim.idle())
        fatal("ResilientRunner::run: simulator has pending events");

    ResilientResult out;
    const StepId base = base_config.start_step;
    StepId resume = base;
    StepId furthest = base; ///< Highest global step any attempt hit.

    for (std::uint32_t attempt = 0; attempt < opts.max_attempts;
         ++attempt) {
        AttemptOutcome log;
        log.index = attempt;
        log.start_step = resume;
        log.began_at = sim.now();

        obs::MetricsRegistry::global()
            .counter("resilient.attempts")
            .add(1);
        obs::TraceSpan attempt_span("resilient.attempt");
        attempt_span.arg("attempt",
                         static_cast<std::uint64_t>(attempt));
        attempt_span.arg("resume_step", resume);

        StepId next_resume = base;
        {
            SessionConfig cfg = base_config;
            cfg.start_step = resume;
            // The session consults the runner's shared plan, not a
            // per-attempt one: interruptions already consumed by a
            // dead attempt must never fire again.
            cfg.preemption = PreemptionSpec();
            TrainingSession session(sim, cfg, work);
            session.injectPreemptions(&plan);
            if (attempt_hook)
                attempt_hook(session, attempt);

            bool attempt_done = false;
            session.start([&attempt_done]() {
                attempt_done = true;
            });
            // Drain the whole event set: the session's completion
            // (or preemption teardown) plus any residual pipeline
            // activity, so the session can be destroyed safely.
            sim.run();
            if (!attempt_done)
                panic("ResilientRunner: attempt wedged without "
                      "completing");

            const SessionResult &res = session.result();
            ++out.attempts;
            const StepId reached = resume + res.steps_completed;
            log.preempted = res.preempted;
            log.kind = res.preemption_kind;
            log.reached_step = reached;
            log.steps_run = res.steps_completed;
            // Useful progress is everything beyond the furthest
            // step any earlier attempt completed; the rest is
            // replay. Summed across attempts this equals the
            // requested steps exactly once the run completes.
            log.useful_steps =
                reached > furthest ? reached - furthest : 0;
            log.replayed_steps = log.steps_run - log.useful_steps;
            log.ended_at = sim.now();
            furthest = std::max(furthest, reached);

            out.total_steps_run += log.steps_run;
            out.useful_steps += log.useful_steps;
            out.replayed_steps += log.replayed_steps;
            out.checkpoints.insert(out.checkpoints.end(),
                                   res.checkpoints.begin(),
                                   res.checkpoints.end());
            out.final_result = res;
            out.attempt_log.push_back(log);

            attempt_span.arg("reached_step", reached);
            attempt_span.arg("preempted", res.preempted ?
                             "true" : "false");
            attempt_span.finish();

            if (!res.preempted) {
                out.completed = true;
                break;
            }
            obs::MetricsRegistry::global()
                .counter("resilient.preemptions")
                .add(1);

            // Restart point: the checkpoint nearest the preempted
            // step from this attempt's registry, improved by any
            // checkpoint an earlier attempt saved closer to (but
            // not past) the interruption. Resuming past the
            // preempted step would skip work, so it is clamped.
            obs::TraceSpan restore_span("checkpoint.restore");
            restore_span.arg("preempted_at", res.preempted_at);
            const CheckpointInfo *ck =
                session.checkpoints().nearest(res.preempted_at);
            next_resume = ck ? ck->step : base;
            for (const auto &info : out.checkpoints) {
                if (info.step <= res.preempted_at &&
                    info.step > next_resume)
                    next_resume = info.step;
            }
            next_resume = std::min(next_resume, res.preempted_at);
            next_resume = std::max(next_resume, base);
            restore_span.arg("resume_step", next_resume);
        } // session destroyed; the event set is drained

        if (attempt + 1 >= opts.max_attempts)
            break; // budget exhausted with the run incomplete

        if (boundary_hook)
            boundary_hook(log, next_resume);

        // Capped, jittered restart backoff (RetryPolicy semantics):
        // provisioning a replacement TPU takes real wall time,
        // charged to the same sim clock the attempts run on.
        const SimTime delay = backoffDelay(attempt);
        sim.schedule(delay, []() {});
        sim.run();
        out.backoff_time += delay;
        // Interruptions that landed while no device was held would
        // have evicted nothing; drop them.
        plan.discardUntil(sim.now());

        resume = next_resume;
    }

    out.wall_time = sim.now();
    return out;
}

} // namespace tpupoint

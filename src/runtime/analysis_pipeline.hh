/**
 * @file
 * AnalysisPipeline: the shared load → salvage → analyze wiring
 * behind tpupoint-analyze, tpupoint-export and tpupoint-compare.
 * Each tool used to hand-roll the same sequence — open the profile,
 * stream records through a (possibly salvaging) ProfileReader,
 * charge salvage damage to the metrics registry, reject empty
 * profiles, finalize the analysis — with the same error wording and
 * subtly diverging details. The pipeline owns that sequence once;
 * the tools keep only their presentation.
 *
 * The pipeline also owns the process's analysis ThreadPool: one
 * `--threads N` knob builds one pool (instrumented under
 * `pool.analysis.*`) that finalize() fans detectors and sweeps out
 * on. Callers that already have a pool lend it via
 * PipelineOptions::pool instead.
 */

#ifndef TPUPOINT_RUNTIME_ANALYSIS_PIPELINE_HH
#define TPUPOINT_RUNTIME_ANALYSIS_PIPELINE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "analyzer/analyzer.hh"
#include "core/thread_pool.hh"

namespace tpupoint {
namespace runtime {

/** Pipeline configuration. */
struct PipelineOptions
{
    AnalyzerOptions analyzer;

    /** Skip damaged chunks instead of failing on the first one. */
    bool salvage = false;

    /**
     * Session label for ingest metrics. Empty (the batch CLIs)
     * keeps the historical unlabeled
     * `analyzer.ingest_bytes_per_sec` gauge; non-empty (one label
     * per concurrent serve session) lands the rate in
     * `analyzer.ingest_bytes_per_sec{session=LABEL}` instead, so
     * concurrent sessions never clobber one another's gauge. The
     * aggregate `analyzer.ingest_bytes_per_sec` histogram records
     * every pass either way.
     */
    std::string session_label;

    /**
     * Worker threads for the pipeline-owned pool; 0 resolves via
     * resolveThreadCount() (TPUPOINT_THREADS, else hardware
     * concurrency). 1 runs everything inline — the serial path.
     * Ignored when `pool` is set.
     */
    unsigned threads = 1;

    /** Borrow this caller-owned pool instead of creating one. */
    ThreadPool *pool = nullptr;
};

/** How a pipeline stage failed. */
enum class PipelineError : std::uint8_t {
    None,       ///< Success.
    OpenFailed, ///< The profile could not be opened.
    Unreadable, ///< Decoding failed (and salvage was off or hopeless).
    Empty,      ///< The profile decoded to zero records.

    /**
     * A live stream has produced no complete records *yet* — the
     * tail is truncated but the writer may still be appending.
     * Only the streaming layer (tpupoint-serve's tail-following
     * sessions) reports this; the batch paths, for which a
     * zero-record file is final, keep reporting Empty.
     */
    Pending,
};

/** Printable PipelineError name ("none", "pending", ...). */
const char *pipelineErrorName(PipelineError error);

/**
 * Charge one streaming pass's ingest volume to the metrics
 * registry: total events summarized by the ingested records, and
 * the raw profile-read rate of this pass. The rate always lands in
 * the aggregate `analyzer.ingest_bytes_per_sec` histogram (honest
 * across concurrent sessions: every pass is one observation); the
 * last-write-wins gauge is either per-session-labeled
 * (`analyzer.ingest_bytes_per_sec{session=LABEL}`) or, for the
 * single-session batch CLIs (empty label), the historical unlabeled
 * name. The one thing that never happens anymore is two sessions
 * racing on the same gauge. Shared by the pipeline's batch passes
 * and tpupoint-serve's incremental tail polls so both report under
 * one metric contract.
 */
void chargeIngestMetrics(const std::string &session_label,
                         std::uint64_t events, std::uint64_t bytes,
                         double seconds);

/** Outcome of one profile load (plus salvage bookkeeping). */
struct PipelineReport
{
    PipelineError error = PipelineError::None;

    /**
     * Human-readable failure description, phrased for an "error: "
     * prefix ("cannot open profile 'x'"). Empty on success.
     */
    std::string message;

    /** Records successfully decoded and delivered. */
    std::uint64_t records = 0;

    /** Sum of ProfileRecord::events_dropped over all records. */
    std::uint64_t events_dropped = 0;

    /** Salvage tallies (all zero for an intact profile). */
    bool saw_damage = false;
    std::uint64_t chunks_dropped = 0;
    std::uint64_t records_dropped = 0;
    std::uint64_t bytes_skipped = 0;
    bool truncated_tail = false;

    bool ok() const { return error == PipelineError::None; }

    /**
     * The canonical salvage report line: "salvage: dropped N
     * chunks, M records, skipped B bytes[, truncated tail]" after
     * damage, "salvage: profile is intact" otherwise. No trailing
     * newline.
     */
    std::string salvageSummary() const;
};

/** The shared tool pipeline. */
class AnalysisPipeline
{
  public:
    using RecordHook = std::function<void(const ProfileRecord &)>;
    using ColumnarHook =
        std::function<void(const ColumnarRecord &)>;

    explicit AnalysisPipeline(const PipelineOptions &options = {});

    /**
     * Stream the profile at @p path through @p hook, one decoded
     * record at a time (memory stays bounded by one chunk). No
     * analysis happens; this is the export path. Salvage damage is
     * charged to the metrics registry either way.
     */
    PipelineReport streamProfile(const std::string &path,
                                 const RecordHook &hook) const;

    /**
     * Stream the profile at @p path into an AnalysisSession
     * (optionally observing each record via @p hook) and finalize
     * it on the pipeline's pool. On failure @p result is left
     * untouched and the report carries the error.
     */
    PipelineReport analyzeProfile(
        const std::string &path, AnalysisResult *result,
        const std::vector<CheckpointInfo> &checkpoints = {},
        const RecordHook &hook = nullptr) const;

    /**
     * Columnar analyze path: records are decoded straight into a
     * reusable ColumnarRecord (names interned, no per-record maps
     * or string allocation) and folded id-to-id into the step
     * table. This is what a null-RecordHook analyzeProfile runs;
     * pass a ColumnarHook to observe each record without forcing
     * the row-oriented decode.
     */
    PipelineReport analyzeProfile(
        const std::string &path, AnalysisResult *result,
        const std::vector<CheckpointInfo> &checkpoints,
        const ColumnarHook &hook) const;

    /** The pool finalize() runs on (owned or borrowed). */
    ThreadPool &pool() const { return *active_pool; }

    const PipelineOptions &options() const { return opts; }

  private:
    /** Shared columnar streaming loop behind analyzeProfile. */
    PipelineReport streamColumnar(const std::string &path,
                                  AnalysisSession &session,
                                  const ColumnarHook &hook) const;

    PipelineOptions opts;
    std::unique_ptr<ThreadPool> owned_pool;
    ThreadPool *active_pool;
};

} // namespace runtime
} // namespace tpupoint

#endif // TPUPOINT_RUNTIME_ANALYSIS_PIPELINE_HH

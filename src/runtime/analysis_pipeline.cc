#include "runtime/analysis_pipeline.hh"

#include <exception>
#include <fstream>
#include <sstream>

#include "obs/metrics.hh"
#include "obs/pool_metrics.hh"
#include "proto/serialize.hh"

namespace tpupoint {
namespace runtime {

namespace {

/** Charge a salvaging reader's damage to the metrics registry. */
void
chargeSalvageMetrics(const ProfileReader &reader)
{
    if (!reader.sawDamage())
        return;
    auto &registry = obs::MetricsRegistry::global();
    registry.counter("salvage.chunks_dropped")
        .add(reader.chunksDropped());
    registry.counter("salvage.records_dropped")
        .add(reader.recordsDropped());
    registry.counter("salvage.bytes_skipped")
        .add(reader.bytesSkipped());
}

} // namespace

std::string
PipelineReport::salvageSummary() const
{
    if (!saw_damage)
        return "salvage: profile is intact";
    std::ostringstream out;
    out << "salvage: dropped " << chunks_dropped << " chunks, "
        << records_dropped << " records, skipped " << bytes_skipped
        << " bytes";
    if (truncated_tail)
        out << ", truncated tail";
    return out.str();
}

AnalysisPipeline::AnalysisPipeline(const PipelineOptions &options)
    : opts(options)
{
    if (opts.pool != nullptr) {
        active_pool = opts.pool;
    } else {
        ThreadPoolOptions pool_opts;
        pool_opts.workers = resolveThreadCount(opts.threads);
        pool_opts.hooks = obs::instrumentedPoolHooks("analysis");
        owned_pool = std::make_unique<ThreadPool>(pool_opts);
        active_pool = owned_pool.get();
    }
}

PipelineReport
AnalysisPipeline::streamProfile(const std::string &path,
                                const RecordHook &hook) const
{
    PipelineReport report;
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        report.error = PipelineError::OpenFailed;
        report.message = "cannot open profile '" + path + "'";
        return report;
    }
    try {
        ProfileReader reader(in, opts.salvage);
        ProfileRecord record;
        while (reader.read(record)) {
            ++report.records;
            report.events_dropped += record.events_dropped;
            if (hook)
                hook(record);
        }
        chargeSalvageMetrics(reader);
        report.saw_damage = reader.sawDamage();
        report.chunks_dropped = reader.chunksDropped();
        report.records_dropped = reader.recordsDropped();
        report.bytes_skipped = reader.bytesSkipped();
        report.truncated_tail = reader.truncatedTail();
    } catch (const std::exception &error) {
        report.error = PipelineError::Unreadable;
        report.message = "unreadable profile '" + path +
            "': " + error.what();
        return report;
    }
    if (report.records == 0) {
        report.error = PipelineError::Empty;
        report.message =
            "profile '" + path + "' contains no records";
    }
    return report;
}

PipelineReport
AnalysisPipeline::analyzeProfile(
    const std::string &path, AnalysisResult *result,
    const std::vector<CheckpointInfo> &checkpoints,
    const RecordHook &hook) const
{
    AnalysisSession session(opts.analyzer);
    const PipelineReport report = streamProfile(
        path, [&session, &hook](const ProfileRecord &record) {
            if (hook)
                hook(record);
            session.ingest(record);
        });
    if (!report.ok())
        return report;
    *result = session.finalize(checkpoints, *active_pool);
    return report;
}

} // namespace runtime
} // namespace tpupoint

#include "runtime/analysis_pipeline.hh"

#include <chrono>
#include <exception>
#include <fstream>
#include <sstream>

#include "obs/metrics.hh"
#include "obs/pool_metrics.hh"
#include "proto/serialize.hh"

namespace tpupoint {
namespace runtime {

namespace {

/** Charge a salvaging reader's damage to the metrics registry. */
void
chargeSalvageMetrics(const ProfileReader &reader)
{
    if (!reader.sawDamage())
        return;
    auto &registry = obs::MetricsRegistry::global();
    registry.counter("salvage.chunks_dropped")
        .add(reader.chunksDropped());
    registry.counter("salvage.records_dropped")
        .add(reader.recordsDropped());
    registry.counter("salvage.bytes_skipped")
        .add(reader.bytesSkipped());
}

/** Seconds elapsed since @p start. */
double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

void
chargeIngestMetrics(const std::string &session_label,
                    std::uint64_t events, std::uint64_t bytes,
                    double seconds)
{
    auto &registry = obs::MetricsRegistry::global();
    registry.counter("analyzer.events_ingested").add(events);
    if (seconds <= 0.0)
        return;
    const auto rate = static_cast<std::int64_t>(
        static_cast<double>(bytes) / seconds);
    // 64 KiB/s .. ~4 TiB/s in x4 buckets.
    obs::HistogramOptions buckets;
    buckets.first_bound = 64 * 1024;
    buckets.growth = 4;
    buckets.buckets = 14;
    registry.histogram("analyzer.ingest_bytes_per_sec", buckets)
        .observe(static_cast<std::uint64_t>(rate < 0 ? 0 : rate));
    const std::string gauge_name =
        session_label.empty()
            ? "analyzer.ingest_bytes_per_sec"
            : "analyzer.ingest_bytes_per_sec{session=" +
                session_label + "}";
    registry.gauge(gauge_name).set(rate);
}

const char *
pipelineErrorName(PipelineError error)
{
    switch (error) {
      case PipelineError::None: return "none";
      case PipelineError::OpenFailed: return "open-failed";
      case PipelineError::Unreadable: return "unreadable";
      case PipelineError::Empty: return "empty";
      case PipelineError::Pending: return "pending";
    }
    return "unknown";
}

std::string
PipelineReport::salvageSummary() const
{
    if (!saw_damage)
        return "salvage: profile is intact";
    std::ostringstream out;
    out << "salvage: dropped " << chunks_dropped << " chunks, "
        << records_dropped << " records, skipped " << bytes_skipped
        << " bytes";
    if (truncated_tail)
        out << ", truncated tail";
    return out.str();
}

AnalysisPipeline::AnalysisPipeline(const PipelineOptions &options)
    : opts(options)
{
    if (opts.pool != nullptr) {
        active_pool = opts.pool;
    } else {
        ThreadPoolOptions pool_opts;
        pool_opts.workers = resolveThreadCount(opts.threads);
        pool_opts.hooks = obs::instrumentedPoolHooks("analysis");
        owned_pool = std::make_unique<ThreadPool>(pool_opts);
        active_pool = owned_pool.get();
    }
}

PipelineReport
AnalysisPipeline::streamProfile(const std::string &path,
                                const RecordHook &hook) const
{
    PipelineReport report;
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        report.error = PipelineError::OpenFailed;
        report.message = "cannot open profile '" + path + "'";
        return report;
    }
    try {
        const auto start = std::chrono::steady_clock::now();
        std::uint64_t events = 0;
        ProfileReader reader(in, opts.salvage);
        ProfileRecord record;
        while (reader.read(record)) {
            ++report.records;
            report.events_dropped += record.events_dropped;
            events += record.event_count;
            if (hook)
                hook(record);
        }
        chargeSalvageMetrics(reader);
        chargeIngestMetrics(opts.session_label, events,
                            reader.bytesRead(),
                            secondsSince(start));
        report.saw_damage = reader.sawDamage();
        report.chunks_dropped = reader.chunksDropped();
        report.records_dropped = reader.recordsDropped();
        report.bytes_skipped = reader.bytesSkipped();
        report.truncated_tail = reader.truncatedTail();
    } catch (const std::exception &error) {
        report.error = PipelineError::Unreadable;
        report.message = "unreadable profile '" + path +
            "': " + error.what();
        return report;
    }
    if (report.records == 0) {
        report.error = PipelineError::Empty;
        report.message =
            "profile '" + path + "' contains no records";
    }
    return report;
}

PipelineReport
AnalysisPipeline::streamColumnar(const std::string &path,
                                 AnalysisSession &session,
                                 const ColumnarHook &hook) const
{
    PipelineReport report;
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        report.error = PipelineError::OpenFailed;
        report.message = "cannot open profile '" + path + "'";
        return report;
    }
    try {
        const auto start = std::chrono::steady_clock::now();
        std::uint64_t events = 0;
        ProfileReader reader(in, opts.salvage);
        // One record reused across the whole stream: per-step
        // columns and op runs land in the same buffers every
        // iteration, so the steady-state loop allocates nothing.
        ColumnarRecord record;
        while (reader.read(record)) {
            ++report.records;
            report.events_dropped += record.events_dropped;
            events += record.event_count;
            if (hook)
                hook(record);
            session.ingest(record);
        }
        chargeSalvageMetrics(reader);
        chargeIngestMetrics(opts.session_label, events,
                            reader.bytesRead(),
                            secondsSince(start));
        report.saw_damage = reader.sawDamage();
        report.chunks_dropped = reader.chunksDropped();
        report.records_dropped = reader.recordsDropped();
        report.bytes_skipped = reader.bytesSkipped();
        report.truncated_tail = reader.truncatedTail();
    } catch (const std::exception &error) {
        report.error = PipelineError::Unreadable;
        report.message = "unreadable profile '" + path +
            "': " + error.what();
        return report;
    }
    if (report.records == 0) {
        report.error = PipelineError::Empty;
        report.message =
            "profile '" + path + "' contains no records";
    }
    return report;
}

PipelineReport
AnalysisPipeline::analyzeProfile(
    const std::string &path, AnalysisResult *result,
    const std::vector<CheckpointInfo> &checkpoints,
    const RecordHook &hook) const
{
    if (!hook) {
        // No row-oriented observer: take the columnar fast path.
        return analyzeProfile(path, result, checkpoints,
                              ColumnarHook(nullptr));
    }
    AnalysisSession session(opts.analyzer);
    const PipelineReport report = streamProfile(
        path, [&session, &hook](const ProfileRecord &record) {
            hook(record);
            session.ingest(record);
        });
    if (!report.ok())
        return report;
    *result = session.finalize(checkpoints, *active_pool);
    return report;
}

PipelineReport
AnalysisPipeline::analyzeProfile(
    const std::string &path, AnalysisResult *result,
    const std::vector<CheckpointInfo> &checkpoints,
    const ColumnarHook &hook) const
{
    AnalysisSession session(opts.analyzer);
    const PipelineReport report =
        streamColumnar(path, session, hook);
    if (!report.ok())
        return report;
    *result = session.finalize(checkpoints, *active_pool);
    return report;
}

} // namespace runtime
} // namespace tpupoint

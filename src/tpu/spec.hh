/**
 * @file
 * Cloud TPU device specifications. Numbers follow Section II of the
 * paper and Google's published system-architecture figures: a TPUv2
 * chip has two MXUs with 8 GiB of HBM each and 45 TFLOPS; a TPUv3
 * chip doubles the MXUs and HBM for 90 TFLOPS. A Cloud TPU instance
 * is one board of four chips (v2-8 / v3-8).
 */

#ifndef TPUPOINT_TPU_SPEC_HH
#define TPUPOINT_TPU_SPEC_HH

#include <cstdint>
#include <string>

#include "core/types.hh"

namespace tpupoint {

/** Cloud TPU generation offered through Google Cloud (Section II). */
enum class TpuGeneration { V2, V3 };

/** Printable generation name: "TPUv2" / "TPUv3". */
const char *tpuGenerationName(TpuGeneration gen);

/**
 * Aggregate capability description of one Cloud TPU instance
 * (a board), used by the roofline op-timing model.
 */
struct TpuDeviceSpec
{
    std::string name;            ///< e.g. "TPUv2-8".
    TpuGeneration generation = TpuGeneration::V2;
    int num_chips = 4;           ///< Chips per board.
    int mxus_per_chip = 2;       ///< Matrix units per chip.

    double peak_flops = 0.0;     ///< Board peak FLOP/s (MXU).
    double mxu_efficiency = 0.6; ///< Achievable fraction of peak.
    double vector_flops = 0.0;   ///< Vector/scalar unit FLOP/s.

    std::uint64_t hbm_bytes = 0; ///< Total HBM capacity.
    double hbm_bandwidth = 0.0;  ///< HBM bytes/s (board).
    double pcie_bandwidth = 0.0; ///< Host link bytes/s (board).
    double ici_bandwidth = 0.0;  ///< Interconnect bytes/s.

    SimTime op_overhead = 0;     ///< Fixed per-op launch cost.

    /** Total matrix units on the board. */
    int totalMxus() const { return num_chips * mxus_per_chip; }

    /** The TPUv2-8 instance used throughout the paper. */
    static TpuDeviceSpec v2();

    /** The TPUv3-8 instance used throughout the paper. */
    static TpuDeviceSpec v3();

    /** Lookup by generation. */
    static TpuDeviceSpec forGeneration(TpuGeneration gen);
};

} // namespace tpupoint

#endif // TPUPOINT_TPU_SPEC_HH

#include "tpu/timing.hh"

#include <algorithm>
#include <cmath>

namespace tpupoint {

namespace {

SimTime
secondsToSim(double seconds)
{
    return static_cast<SimTime>(seconds * 1e9 + 0.5);
}

} // namespace

SimTime
opDuration(const TpuDeviceSpec &spec, const ScheduledOp &op)
{
    const double flops = static_cast<double>(op.flops);
    const double bytes = static_cast<double>(op.bytes);
    const double hbm_seconds = bytes / spec.hbm_bandwidth;

    double compute_seconds = 0.0;
    switch (opKindClass(op.kind)) {
      case OpClass::MxuCompute:
        compute_seconds =
            flops / (spec.peak_flops * spec.mxu_efficiency);
        break;
      case OpClass::VectorCompute:
        if (op.mxu) {
            // A fusion rooted at a matmul/conv: the dominant flops
            // run on the MXUs.
            compute_seconds =
                flops / (spec.peak_flops * spec.mxu_efficiency);
        } else {
            compute_seconds = flops / spec.vector_flops;
        }
        break;
      case OpClass::Memory:
        compute_seconds = 0.0; // bandwidth bound
        break;
      case OpClass::InfeedOutfeed:
        compute_seconds = 0.0; // staging cost is HBM traffic
        break;
      case OpClass::Collective:
        return secondsToSim(bytes / spec.ici_bandwidth) +
            spec.op_overhead;
    }

    return secondsToSim(std::max(compute_seconds, hbm_seconds)) +
        spec.op_overhead;
}

SimTime
mxuActiveTime(const TpuDeviceSpec &spec, const ScheduledOp &op)
{
    if (!op.mxu)
        return 0;
    const double seconds =
        static_cast<double>(op.flops) / spec.peak_flops;
    return secondsToSim(seconds);
}

SimTime
hbmTime(const TpuDeviceSpec &spec, std::uint64_t bytes)
{
    return secondsToSim(static_cast<double>(bytes) /
                        spec.hbm_bandwidth);
}

SimTime
pcieTime(const TpuDeviceSpec &spec, std::uint64_t bytes)
{
    return secondsToSim(static_cast<double>(bytes) /
                        spec.pcie_bandwidth);
}

} // namespace tpupoint

/**
 * @file
 * The TPU core executor: runs one StepSchedule per training step,
 * pulling batches from the infeed queue and pushing results through
 * the outfeed. Idle time (stalls at either queue) and MXU activity
 * are accounted here and surface in profile records — they are
 * emergent properties of the host/device balance, not configured
 * numbers.
 */

#ifndef TPUPOINT_TPU_CORE_HH
#define TPUPOINT_TPU_CORE_HH

#include <cstdint>
#include <functional>

#include "graph/schedule.hh"
#include "proto/event.hh"
#include "sim/simulator.hh"
#include "tpu/queues.hh"
#include "tpu/spec.hh"

namespace tpupoint {

/**
 * Event-driven model of one Cloud TPU instance executing compiled
 * step programs.
 */
class TpuCore
{
  public:
    /** Cumulative device counters (profile meta-data source). */
    struct Counters
    {
        SimTime busy = 0;       ///< Time executing operators.
        SimTime idle = 0;       ///< Time stalled on infeed/outfeed.
        SimTime mxu_active = 0; ///< Equivalent full-MXU time.
        std::uint64_t steps_completed = 0;
        std::uint64_t ops_executed = 0;
    };

    /**
     * @param simulator Owning kernel.
     * @param device_spec Capability description (v2/v3).
     * @param infeed_queue Host-filled batch queue.
     * @param outfeed_queue Result queue drained by the host.
     */
    TpuCore(Simulator &simulator, const TpuDeviceSpec &device_spec,
            InfeedQueue &infeed_queue, OutfeedQueue &outfeed_queue);

    /** Route trace events to @p new_sink (profiler attach/detach). */
    void setSink(TraceSink *new_sink) { sink = new_sink; }

    /**
     * Extra per-op cost while profiling instrumentation is active
     * (the source of TPUPoint's small runtime overhead; Section
     * VII-C measures it at under 10%).
     */
    void setTraceOverhead(SimTime per_op) { trace_overhead = per_op; }

    /** Current per-op instrumentation cost. */
    SimTime traceOverhead() const { return trace_overhead; }

    /**
     * Execute @p schedule as global step @p step. Asynchronous: @p
     * done fires when the last operator (and outfeed push) retires.
     * Only one step may be in flight at a time.
     */
    void runStep(const StepSchedule &schedule, StepId step,
                 std::function<void()> done);

    /** Device counters. */
    const Counters &counters() const { return stats; }

    /** Device specification. */
    const TpuDeviceSpec &spec() const { return device; }

  private:
    void execute(const StepSchedule *schedule, std::size_t index,
                 StepId step, std::function<void()> done);

    void emit(const char *type, SimTime start, SimTime duration,
              StepId step, bool mxu, SimTime mxu_active = 0);

    Simulator &sim;
    TpuDeviceSpec device;
    InfeedQueue &infeed;
    OutfeedQueue &outfeed;
    TraceSink *sink = nullptr;
    Counters stats;
    SimTime trace_overhead = 0;
    bool step_in_flight = false;
};

} // namespace tpupoint

#endif // TPUPOINT_TPU_CORE_HH

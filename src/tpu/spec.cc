#include "tpu/spec.hh"

#include "core/logging.hh"

namespace tpupoint {

const char *
tpuGenerationName(TpuGeneration gen)
{
    switch (gen) {
      case TpuGeneration::V2: return "TPUv2";
      case TpuGeneration::V3: return "TPUv3";
    }
    panic("tpuGenerationName: unknown generation");
}

TpuDeviceSpec
TpuDeviceSpec::v2()
{
    TpuDeviceSpec spec;
    spec.name = "TPUv2-8";
    spec.generation = TpuGeneration::V2;
    spec.num_chips = 4;
    spec.mxus_per_chip = 2;
    // 45 TFLOPS per chip (Section II-A) -> 180 TFLOPS per board.
    spec.peak_flops = 180e12;
    spec.mxu_efficiency = 0.57;
    spec.vector_flops = 4e12;
    // 8 GiB HBM per MXU -> 64 GiB per board.
    spec.hbm_bytes = 64ULL * kGiB;
    spec.hbm_bandwidth = 2400e9; // 600 GB/s per chip.
    spec.pcie_bandwidth = 16e9;  // Shared host link.
    spec.ici_bandwidth = 496e9;
    spec.op_overhead = 4 * kUsec;
    return spec;
}

TpuDeviceSpec
TpuDeviceSpec::v3()
{
    TpuDeviceSpec spec;
    spec.name = "TPUv3-8";
    spec.generation = TpuGeneration::V3;
    spec.num_chips = 4;
    spec.mxus_per_chip = 4; // Twice as many MXUs as TPUv2.
    // 90 TFLOPS per chip -> 360 TFLOPS per board.
    spec.peak_flops = 360e12;
    // Doubling the MXUs doubles peak, but the same per-step tile
    // sizes fill the wider arrays less effectively, so achievable
    // efficiency drops — this is why the paper sees MXU utilization
    // roughly halve on TPUv3 while idle time grows only modestly
    // (Observation 5).
    spec.mxu_efficiency = 0.36;
    spec.vector_flops = 6e12;
    // Twice the HBM of TPUv2: 32 GiB per chip.
    spec.hbm_bytes = 128ULL * kGiB;
    spec.hbm_bandwidth = 3600e9; // 900 GB/s per chip.
    spec.pcie_bandwidth = 16e9;  // Host link unchanged.
    spec.ici_bandwidth = 656e9;
    spec.op_overhead = 4 * kUsec;
    return spec;
}

TpuDeviceSpec
TpuDeviceSpec::forGeneration(TpuGeneration gen)
{
    switch (gen) {
      case TpuGeneration::V2: return v2();
      case TpuGeneration::V3: return v3();
    }
    panic("TpuDeviceSpec::forGeneration: unknown generation");
}

} // namespace tpupoint

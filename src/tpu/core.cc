#include "tpu/core.hh"

#include <utility>
#include <vector>

#include "core/logging.hh"
#include "tpu/timing.hh"

namespace tpupoint {

TpuCore::TpuCore(Simulator &simulator,
                 const TpuDeviceSpec &device_spec,
                 InfeedQueue &infeed_queue,
                 OutfeedQueue &outfeed_queue)
    : sim(simulator), device(device_spec), infeed(infeed_queue),
      outfeed(outfeed_queue)
{
}

void
TpuCore::emit(const char *type, SimTime start, SimTime duration,
              StepId step, bool mxu, SimTime mxu_active)
{
    if (!sink)
        return;
    TraceEvent event;
    event.type = type;
    event.start = start;
    event.duration = duration;
    event.step = step;
    event.device = EventDevice::Tpu;
    event.mxu = mxu;
    event.mxu_active = mxu_active;
    sink->record(event);
}

void
TpuCore::runStep(const StepSchedule &schedule, StepId step,
                 std::function<void()> done)
{
    if (step_in_flight)
        panic("TpuCore::runStep: a step is already in flight");
    step_in_flight = true;
    execute(&schedule, 0, step, std::move(done));
}

void
TpuCore::execute(const StepSchedule *schedule, std::size_t index,
                 StepId step, std::function<void()> done)
{
    const auto &ops = schedule->ops;
    if (index >= ops.size()) {
        step_in_flight = false;
        ++stats.steps_completed;
        if (done)
            done();
        return;
    }

    const ScheduledOp &op = ops[index];

    if (op.kind == OpKind::InfeedDequeueTuple ||
        op.kind == OpKind::Infeed) {
        // Wait for the host to deliver the batch; stall time is TPU
        // idle and appears in profiles as an `Infeed` event.
        const SimTime wait_start = sim.now();
        infeed.pop([this, schedule, index, step,
                    done = std::move(done),
                    wait_start](DeviceBatch batch) mutable {
            const SimTime wait = sim.now() - wait_start;
            if (wait > 0) {
                emit(opKindName(OpKind::Infeed), wait_start, wait,
                     step, false);
                stats.idle += wait;
            }
            // Stage the batch from the infeed buffer into HBM.
            const SimTime stage =
                hbmTime(device, batch.bytes) + device.op_overhead;
            const SimTime start = sim.now();
            sim.schedule(stage, [this, schedule, index, step,
                                 done = std::move(done), start,
                                 stage]() mutable {
                emit(opKindName(OpKind::InfeedDequeueTuple), start,
                     stage, step, false);
                stats.busy += stage;
                ++stats.ops_executed;
                execute(schedule, index + 1, step, std::move(done));
            });
        });
        return;
    }

    if (op.kind == OpKind::OutfeedEnqueueTuple ||
        op.kind == OpKind::Outfeed) {
        const std::uint64_t result_bytes =
            op.bytes ? op.bytes : schedule->outfeed_bytes;
        const SimTime enqueue =
            hbmTime(device, result_bytes) + device.op_overhead;
        const SimTime start = sim.now();
        sim.schedule(enqueue, [this, schedule, index, step,
                               done = std::move(done), start,
                               enqueue, result_bytes]() mutable {
            emit(opKindName(OpKind::OutfeedEnqueueTuple), start,
                 enqueue, step, false);
            stats.busy += enqueue;
            ++stats.ops_executed;
            // Push the result; a full outfeed stalls the device.
            const SimTime push_start = sim.now();
            StepResult result;
            result.step = step;
            result.bytes = result_bytes;
            result.tpu_finished = sim.now();
            outfeed.push(result, [this, schedule, index, step,
                                  done = std::move(done),
                                  push_start]() mutable {
                const SimTime wait = sim.now() - push_start;
                if (wait > 0) {
                    emit(opKindName(OpKind::Outfeed), push_start,
                         wait, step, false);
                    stats.idle += wait;
                }
                execute(schedule, index + 1, step, std::move(done));
            });
        });
        return;
    }

    // A run of regular operators: execute back to back, then emit
    // their events once the run retires (timestamps are exact).
    struct PendingEvent
    {
        const char *type;
        SimTime start;
        SimTime duration;
        bool mxu;
        SimTime mxu_active;
    };
    std::vector<PendingEvent> batch_events;
    SimTime cursor = sim.now();
    std::size_t next = index;
    while (next < ops.size()) {
        const ScheduledOp &run_op = ops[next];
        if (run_op.kind == OpKind::InfeedDequeueTuple ||
            run_op.kind == OpKind::Infeed ||
            run_op.kind == OpKind::OutfeedEnqueueTuple ||
            run_op.kind == OpKind::Outfeed)
            break;
        const SimTime duration =
            opDuration(device, run_op) + trace_overhead;
        const SimTime active = mxuActiveTime(device, run_op);
        batch_events.push_back(PendingEvent{run_op.typeName(),
                                            cursor, duration,
                                            run_op.mxu, active});
        cursor += duration;
        stats.mxu_active += active;
        ++next;
    }

    const SimTime total = cursor - sim.now();
    sim.schedule(total, [this, schedule, next, step,
                         done = std::move(done), total,
                         events = std::move(batch_events)]() mutable {
        for (const auto &e : events)
            emit(e.type, e.start, e.duration, step, e.mxu,
                 e.mxu_active);
        stats.busy += total;
        stats.ops_executed += events.size();
        execute(schedule, next, step, std::move(done));
    });
}

} // namespace tpupoint

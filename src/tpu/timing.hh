/**
 * @file
 * Roofline op-timing model: each operator's duration is the larger
 * of its compute time (flops over the relevant unit's throughput)
 * and its HBM time (bytes over bandwidth), plus a fixed launch
 * overhead.
 */

#ifndef TPUPOINT_TPU_TIMING_HH
#define TPUPOINT_TPU_TIMING_HH

#include "core/types.hh"
#include "graph/schedule.hh"
#include "tpu/spec.hh"

namespace tpupoint {

/** Duration of @p op when executed on @p spec. */
SimTime opDuration(const TpuDeviceSpec &spec, const ScheduledOp &op);

/**
 * Equivalent full-MXU activity time of @p op: the time the board's
 * matrix units would need at peak throughput. mxu_active / elapsed
 * is the MXU-utilization metric the profiler reports (Fig. 11).
 */
SimTime mxuActiveTime(const TpuDeviceSpec &spec,
                      const ScheduledOp &op);

/** HBM-copy time for @p bytes (used for infeed dequeue staging). */
SimTime hbmTime(const TpuDeviceSpec &spec, std::uint64_t bytes);

/** PCIe transfer time for @p bytes across the host link. */
SimTime pcieTime(const TpuDeviceSpec &spec, std::uint64_t bytes);

} // namespace tpupoint

#endif // TPUPOINT_TPU_TIMING_HH

/**
 * @file
 * Payload types of the host<->TPU queues. The host's infeed thread
 * pushes DeviceBatch items; the TPU pushes StepResult items back
 * through the outfeed.
 */

#ifndef TPUPOINT_TPU_QUEUES_HH
#define TPUPOINT_TPU_QUEUES_HH

#include <cstdint>

#include "core/types.hh"
#include "sim/bounded_queue.hh"

namespace tpupoint {

/** One training batch staged in the device's infeed buffer. */
struct DeviceBatch
{
    StepId step = kNoStep;
    std::uint64_t bytes = 0;
    SimTime host_ready = 0; ///< When the host finished preparing it.
};

/** One step's outfeed tuple (loss/metrics) awaiting the host. */
struct StepResult
{
    StepId step = kNoStep;
    std::uint64_t bytes = 0;
    SimTime tpu_finished = 0;
};

using InfeedQueue = BoundedQueue<DeviceBatch>;
using OutfeedQueue = BoundedQueue<StepResult>;

} // namespace tpupoint

#endif // TPUPOINT_TPU_QUEUES_HH

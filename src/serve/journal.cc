#include "serve/journal.hh"

#include <filesystem>
#include <fstream>

#include "core/io_faults.hh"
#include "trace/bytes.hh"
#include "trace/checksum.hh"
#include "trace/wire.hh"

namespace tpupoint {
namespace serve {

namespace {

/** Fixed-size prefix of every entry: marker, count, size, crc. */
constexpr std::uint64_t kEntryHeaderBytes = 16;

/** Journal header: magic + version. */
constexpr std::uint64_t kHeaderBytes = 8;

std::string
frameEntry(std::string_view payload)
{
    ByteWriter frame;
    frame.putU32(wire::kChunkMarker);
    frame.putU32(1); // One entry per frame.
    frame.putU32(static_cast<std::uint32_t>(payload.size()));
    frame.putU32(crc32(payload));
    frame.putBytes(payload);
    return std::move(frame).str();
}

std::string
journalHeader()
{
    std::string header(kJournalMagic, sizeof(kJournalMagic));
    ByteWriter version;
    version.putU32(kJournalVersion);
    header += version.str();
    return header;
}

} // namespace

std::string
encodeJournalEntry(const SessionStatus &status)
{
    ByteWriter w;
    w.putString(status.name);
    w.putString(status.path);
    w.putU32(static_cast<std::uint32_t>(status.state));
    w.putU32((status.pending ? 1u : 0u) |
             (status.complete ? 2u : 0u));
    w.putU64(status.records);
    w.putU64(status.events);
    w.putU64(status.bytes);
    w.putU64(status.chunks);
    w.putU64(status.chunks_dropped);
    w.putU64(status.bytes_skipped);
    w.putU64(status.records_dropped);
    w.putU64(status.decode_failures);
    w.putString(status.error);
    w.putString(status.algorithm);
    w.putU64(status.steps);
    w.putF64(status.top3_coverage);
    w.putU32(static_cast<std::uint32_t>(status.phases.size()));
    for (const PhaseSummary &phase : status.phases) {
        w.putI64(phase.id);
        w.putU64(phase.first_step);
        w.putU64(phase.last_step);
        w.putU64(phase.steps);
        w.putF64(phase.duration_ms);
        w.putU32(phase.noise ? 1u : 0u);
    }
    return std::move(w).str();
}

bool
decodeJournalEntry(std::string_view payload,
                   SessionStatus *status)
{
    ByteReader r(payload);
    SessionStatus out;
    std::uint32_t state = 0;
    std::uint32_t flags = 0;
    std::uint32_t phase_count = 0;
    if (!r.getString(out.name) || !r.getString(out.path) ||
        !r.getU32(state) || !r.getU32(flags) ||
        !r.getU64(out.records) || !r.getU64(out.events) ||
        !r.getU64(out.bytes) || !r.getU64(out.chunks) ||
        !r.getU64(out.chunks_dropped) ||
        !r.getU64(out.bytes_skipped) ||
        !r.getU64(out.records_dropped) ||
        !r.getU64(out.decode_failures) ||
        !r.getString(out.error) ||
        !r.getString(out.algorithm) || !r.getU64(out.steps) ||
        !r.getF64(out.top3_coverage) || !r.getU32(phase_count))
        return false;
    if (state > static_cast<std::uint32_t>(
                    SessionState::Quarantined))
        return false;
    out.state = static_cast<SessionState>(state);
    out.pending = (flags & 1u) != 0;
    out.complete = (flags & 2u) != 0;
    // An implausible phase count must not drive a huge reserve.
    if (phase_count > payload.size())
        return false;
    out.phases.reserve(phase_count);
    for (std::uint32_t i = 0; i < phase_count; ++i) {
        PhaseSummary phase;
        std::int64_t id = 0;
        std::uint32_t noise = 0;
        if (!r.getI64(id) || !r.getU64(phase.first_step) ||
            !r.getU64(phase.last_step) ||
            !r.getU64(phase.steps) ||
            !r.getF64(phase.duration_ms) || !r.getU32(noise))
            return false;
        phase.id = static_cast<int>(id);
        phase.noise = noise != 0;
        out.phases.push_back(phase);
    }
    if (!r.atEnd())
        return false;
    *status = std::move(out);
    return true;
}

bool
replayJournal(const std::string &path, JournalReplay *out,
              std::string *error)
{
    *out = JournalReplay{};
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return true; // First start: nothing to replay.
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    if (bytes.empty())
        return true;
    if (bytes.size() < kHeaderBytes ||
        bytes.compare(0, sizeof(kJournalMagic), kJournalMagic,
                      sizeof(kJournalMagic)) != 0) {
        if (error != nullptr)
            *error = "'" + path +
                "' is not a TPUPoint session journal";
        return false;
    }

    ByteReader header(std::string_view(bytes).substr(
        sizeof(kJournalMagic), 4));
    std::uint32_t version = 0;
    header.getU32(version);
    if (version == 0 || version > kJournalVersion) {
        if (error != nullptr)
            *error = "unsupported journal version " +
                std::to_string(version);
        return false;
    }

    std::uint64_t at = kHeaderBytes;
    const std::uint64_t size = bytes.size();
    const auto torn = [&](const std::string &why) {
        out->damaged = true;
        out->detail = why;
        return true; // Entries so far stand; later bytes dropped.
    };
    while (at < size) {
        if (size - at < kEntryHeaderBytes)
            return torn("torn entry header at byte " +
                        std::to_string(at));
        ByteReader frame(
            std::string_view(bytes).substr(at,
                                           kEntryHeaderBytes));
        std::uint32_t marker = 0, count = 0, payload_size = 0,
                      checksum = 0;
        frame.getU32(marker);
        frame.getU32(count);
        frame.getU32(payload_size);
        frame.getU32(checksum);
        if (marker != wire::kChunkMarker || count != 1 ||
            payload_size > wire::kMaxChunkPayload)
            return torn("corrupt entry framing at byte " +
                        std::to_string(at));
        if (size - at - kEntryHeaderBytes < payload_size)
            return torn("torn entry payload at byte " +
                        std::to_string(at));
        const std::string_view payload =
            std::string_view(bytes).substr(
                at + kEntryHeaderBytes, payload_size);
        if (crc32(payload) != checksum)
            return torn("entry checksum mismatch at byte " +
                        std::to_string(at));
        SessionStatus status;
        if (!decodeJournalEntry(payload, &status))
            return torn("undecodable entry at byte " +
                        std::to_string(at));
        out->entries.push_back(std::move(status));
        at += kEntryHeaderBytes + payload_size;
        out->bytes_replayed = at;
    }
    out->bytes_replayed = at;
    return true;
}

std::vector<SessionStatus>
foldJournalEntries(const std::vector<SessionStatus> &entries)
{
    std::vector<SessionStatus> folded;
    for (const SessionStatus &entry : entries) {
        bool known = false;
        for (SessionStatus &existing : folded) {
            if (existing.name == entry.name) {
                existing = entry; // Last wins.
                known = true;
                break;
            }
        }
        if (!known)
            folded.push_back(entry);
    }
    return folded;
}

JournalWriter::JournalWriter(std::string path)
    : file_path(std::move(path))
{
}

JournalWriter::~JournalWriter()
{
    std::lock_guard<std::mutex> lock(mu);
    if (file != nullptr) {
        std::fflush(file);
        std::fclose(file);
    }
}

bool
JournalWriter::open()
{
    std::lock_guard<std::mutex> lock(mu);
    if (file != nullptr)
        return true;
    std::error_code ec;
    const std::uint64_t existing =
        std::filesystem::exists(file_path, ec) && !ec
        ? std::filesystem::file_size(file_path, ec)
        : 0;
    file = std::fopen(file_path.c_str(), "ab");
    if (file == nullptr) {
        ++error_count;
        detail = "cannot open journal '" + file_path + "'";
        return false;
    }
    file_bytes = ec ? 0 : existing;
    if (file_bytes == 0) {
        const std::string header = journalHeader();
        if (!writeRaw(header.data(), header.size()))
            return false;
    }
    return true;
}

bool
JournalWriter::writeRaw(const char *bytes, std::size_t size)
{
    // Caller holds `mu`.
    if (std::fwrite(bytes, 1, size, file) != size) {
        ++error_count;
        detail = "journal write failed";
        return false;
    }
    file_bytes += size;
    return true;
}

bool
JournalWriter::append(const SessionStatus &status)
{
    const std::string framed =
        frameEntry(encodeJournalEntry(status));
    std::lock_guard<std::mutex> lock(mu);
    if (file == nullptr) {
        ++error_count;
        detail = "journal is not open";
        return false;
    }
    const io::FaultKind fault =
        io::FaultInjector::global().sample(
            "serve.journal_append");
    if (fault != io::FaultKind::None) {
        // A failed append only makes the journal lag reality;
        // recovery re-ingests the gap from the spool file.
        ++error_count;
        detail = std::string("injected ") +
            io::faultKindName(fault) + " appending to journal";
        if (fault == io::FaultKind::DiskFull ||
            fault == io::FaultKind::ShortWrite) {
            // A partial frame lands — exactly the torn tail
            // replay must tolerate.
            writeRaw(framed.data(), framed.size() / 2);
        }
        return false;
    }
    if (!writeRaw(framed.data(), framed.size()))
        return false;
    ++appended;
    return true;
}

bool
JournalWriter::commit()
{
    std::lock_guard<std::mutex> lock(mu);
    if (file == nullptr)
        return false;
    if (std::fflush(file) != 0) {
        ++error_count;
        detail = "journal flush failed";
        return false;
    }
    return true;
}

bool
JournalWriter::compact(const std::vector<SessionStatus> &snapshot)
{
    std::string compacted = journalHeader();
    for (const SessionStatus &status : snapshot)
        compacted += frameEntry(encodeJournalEntry(status));

    std::lock_guard<std::mutex> lock(mu);
    const std::string tmp = file_path + ".tmp";
    std::string why;
    if (!io::writeFileWithFaults("serve.journal_checkpoint", tmp,
                                 compacted, &why)) {
        ++error_count;
        detail = "journal checkpoint failed: " + why;
        std::error_code ec;
        std::filesystem::remove(tmp, ec); // No stale litter.
        return false;
    }
    if (!io::renameWithFaults("serve.journal_rename", tmp,
                              file_path, &why)) {
        ++error_count;
        detail = "journal checkpoint rename failed: " + why;
        std::error_code ec;
        std::filesystem::remove(tmp, ec);
        return false;
    }
    // The old handle points at the unlinked inode; reopen on the
    // compact file before the next append.
    if (file != nullptr) {
        std::fflush(file);
        std::fclose(file);
    }
    file = std::fopen(file_path.c_str(), "ab");
    if (file == nullptr) {
        ++error_count;
        detail = "cannot reopen compacted journal";
        file_bytes = 0;
        return false;
    }
    file_bytes = compacted.size();
    return true;
}

std::uint64_t
JournalWriter::size() const
{
    std::lock_guard<std::mutex> lock(mu);
    return file_bytes;
}

std::uint64_t
JournalWriter::entriesAppended() const
{
    std::lock_guard<std::mutex> lock(mu);
    return appended;
}

std::uint64_t
JournalWriter::errors() const
{
    std::lock_guard<std::mutex> lock(mu);
    return error_count;
}

std::string
JournalWriter::error() const
{
    std::lock_guard<std::mutex> lock(mu);
    return detail;
}

} // namespace serve
} // namespace tpupoint

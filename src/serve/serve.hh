/**
 * @file
 * The tpupoint-serve session manager: long-running, concurrent
 * ingest of profile streams as they appear and grow in a spool
 * directory. Every batch tool in the repo assumes a finished file;
 * a fleet deployment instead points TPUPoint at the directory its
 * recording threads spool into and wants phase answers *while*
 * training runs write. SessionManager owns that loop:
 *
 *  - discovery: each poll() scans the spool for new `*.tpp` files
 *    and opens one session per trace;
 *  - ingest: every live session tail-follows its file with a
 *    TailReader (trace/tail_reader), decoding records straight into
 *    an incremental AnalysisSession via the columnar path; sessions
 *    ingest concurrently, sharded over one shared core::ThreadPool;
 *  - lifecycle: Discovering → Ingesting → Quiescent → Finalized →
 *    Evicted. A stream finalizes the moment its end marker lands,
 *    or after an idle TTL with no growth (the writer died; analyze
 *    what salvage recovered). Finalized results are retained for
 *    queries until an eviction TTL, after which the heavy state
 *    (step table, analysis result, tail buffers) is released and
 *    only a compact summary survives — the knob that bounds the
 *    daemon's memory under session churn;
 *  - observability: per-session labeled ingest-rate gauges (shared
 *    contract with runtime::chargeIngestMetrics), an aggregate
 *    rate histogram, and a p99-able per-chunk ingest-latency
 *    histogram (`serve.ingest_chunk_us`);
 *  - queries: writeStatusJson() emits one document whose top-level
 *    sections ("sessions", "phases", "coverage", "stats") are what
 *    `tpupoint-serve --query` extracts via extractStatusSection().
 *
 * Threading contract: poll(), the accessors and the JSON writers
 * are control-plane calls from one thread (the daemon loop). The
 * data plane — per-session ingest and capped finalizes — fans out
 * on the pool inside poll(), touching disjoint sessions plus the
 * thread-safe process-wide interner and metrics registry.
 */

#ifndef TPUPOINT_SERVE_SERVE_HH
#define TPUPOINT_SERVE_SERVE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "analyzer/analyzer.hh"
#include "core/thread_pool.hh"

namespace tpupoint {
namespace serve {

/** Where a session is in its life. */
enum class SessionState {
    Discovering, ///< File seen; no complete chunk ingested yet.
    Ingesting,   ///< Records are flowing.
    Quiescent,   ///< No growth for the idle TTL; finalize pending.
    Finalized,   ///< Analysis ran; result held for queries.
    Evicted,     ///< Heavy state released; summary only.
    Shed,        ///< Admission refused at the load limit; parked.
    Quarantined, ///< Repeated ingest errors; isolated, not fatal.
};

/** Printable state name ("discovering", "ingesting", ...). */
const char *sessionStateName(SessionState state);

/** Compact per-phase summary that survives eviction. */
struct PhaseSummary
{
    int id = 0;
    std::uint64_t first_step = 0;
    std::uint64_t last_step = 0;
    std::uint64_t steps = 0;
    double duration_ms = 0.0;
    bool noise = false;
};

/** Queryable per-session status (compact; survives eviction). */
struct SessionStatus
{
    std::string name; ///< File stem; the metric session label.
    std::string path;
    SessionState state = SessionState::Discovering;

    /**
     * Live stream with no complete records *yet* — the streaming
     * layer's "no data yet" outcome (PipelineError::Pending), as
     * opposed to the batch verdict that a record-less profile is
     * empty. Cleared once records arrive or the session is
     * declared dead (finalized).
     */
    bool pending = true;

    /** The stream's end marker was consumed. */
    bool complete = false;

    std::uint64_t records = 0; ///< Records decoded and ingested.
    std::uint64_t events = 0;  ///< Events those records summarize.
    std::uint64_t bytes = 0;   ///< Bytes consumed from the file.
    std::uint64_t chunks = 0;  ///< Whole chunks consumed.

    /** Salvage damage tallies (see TailReader). */
    std::uint64_t chunks_dropped = 0;
    std::uint64_t bytes_skipped = 0;
    std::uint64_t records_dropped = 0;
    std::uint64_t decode_failures = 0;

    /** Damage or decode detail; empty when healthy. */
    std::string error;

    /** Analysis summary; valid once Finalized. */
    std::string algorithm;
    std::uint64_t steps = 0;
    double top3_coverage = 0.0;
    std::vector<PhaseSummary> phases;

    /**
     * The phase algorithm the session is configured to run —
     * known from admission, unlike `algorithm` which reports what
     * actually ran once Finalized.
     */
    std::string detector;

    /**
     * Staleness of the live phase snapshot: aggregated steps the
     * streaming detectors have not consumed yet. Updated every
     * ingest pass; 0 once Finalized (and always 0 when
     * live-phase streaming is off).
     */
    std::uint64_t steps_behind = 0;

    /**
     * The phases/coverage fields are the batch detector's final
     * answer (true once Finalized) rather than a live streaming
     * snapshot (false mid-ingest).
     */
    bool phases_exact = false;

    /**
     * This session was restored from the journal after a restart
     * (process-lifetime fact; never persisted to the journal
     * itself).
     */
    bool recovered = false;
};

/** Fleet-level tallies for one SessionManager. */
struct ServeStats
{
    std::uint64_t polls = 0;
    std::size_t sessions = 0;
    std::size_t discovering = 0;
    std::size_t ingesting = 0;
    std::size_t quiescent = 0;
    std::size_t finalized = 0;
    std::size_t evicted = 0;
    std::size_t shed = 0;
    std::size_t quarantined = 0;
    std::uint64_t records = 0;
    std::uint64_t events = 0;
    std::uint64_t bytes = 0;

    /** Sessions restored from the journal at startup. */
    std::size_t recovered = 0;

    /**
     * Sessions exist and none is still live. A shed session counts
     * as live: it holds admissible work the manager will re-admit
     * once capacity frees, so a draining daemon must not exit on
     * it.
     */
    bool
    drained() const
    {
        return sessions > 0 &&
            discovering + ingesting + quiescent + shed == 0;
    }
};

/** SessionManager configuration. */
struct ServeOptions
{
    /** Directory the recording threads spool streams into. */
    std::string spool_dir;

    /** Only files with this suffix are traces. */
    std::string suffix = ".tpp";

    /** Analyzer configuration for every session. */
    AnalyzerOptions analyzer;

    /**
     * Keep streaming detectors live in every session (sets
     * analyzer.streaming) so the status document answers phase and
     * coverage queries *while* a stream ingests: per-poll snapshot
     * updates at bounded cost, each tagged with its `steps_behind`
     * staleness and exact=false until the batch finalize replaces
     * it. Off, phases appear only after finalize — the pre-
     * streaming behavior.
     */
    bool live_phases = true;

    /**
     * Tail-follow in salvage mode (drop damaged chunks, keep
     * streaming). Off = strict: damage parks the session with an
     * error.
     */
    bool salvage = true;

    /**
     * Workers for the manager-owned pool; 0 resolves via
     * resolveThreadCount(). Ignored when `pool` is lent.
     */
    unsigned threads = 0;

    /** Borrow this caller-owned pool instead of creating one. */
    ThreadPool *pool = nullptr;

    /**
     * A live session with no growth for this long turns Quiescent
     * and is finalized with whatever salvage recovered.
     */
    std::int64_t idle_ttl_ms = 2000;

    /**
     * A Finalized session older than this releases its heavy state
     * (result, step table) and turns Evicted. Negative = never.
     */
    std::int64_t evict_ttl_ms = 10000;

    /** Finalizes run per poll() at most (bounds the memory and
     *  latency spike of many streams completing at once). */
    std::size_t max_finalizes_per_poll = 4;

    /**
     * Injectable monotonic clock (milliseconds); tests drive TTL
     * transitions deterministically through it. Defaults to
     * steady_clock.
     */
    std::function<std::int64_t()> now_ms;

    /**
     * Durable session journal path; empty disables journaling.
     * With a journal, the manager restores every session it
     * recorded on construction (see journal.hh) and commits one
     * snapshot per dirty session at the end of each poll().
     */
    std::string journal_path;

    /** Compact the journal once it outgrows this many bytes. */
    std::uint64_t journal_compact_bytes = 1 << 20;

    /**
     * Admission cap: at most this many live sessions (discovering,
     * ingesting or quiescent) at once; excess spool files are
     * parked in Shed and re-admitted in discovery order as
     * capacity frees. 0 = unlimited.
     */
    std::size_t max_sessions = 0;

    /**
     * Admission cap on the bytes live sessions have consumed; a
     * new session is shed while the fleet holds at least this
     * much. Never sheds mid-session — admitted streams always run
     * to completion. 0 = unlimited.
     */
    std::uint64_t max_inflight_bytes = 0;

    /**
     * Quarantine watchdog: this many *consecutive* ingest errors
     * (I/O failures, ingest exceptions) park the session in
     * Quarantined instead of letting it poison every poll.
     */
    std::uint64_t quarantine_errors = 3;

    /**
     * SLO: the `serve.ingest_chunk_us` p99 (conservative bucket
     * upper bound) must stay at or below this many microseconds;
     * above it the health report turns degraded with an
     * "slo-p99-ingest" issue. 0 disables the check.
     */
    std::int64_t slo_p99_ingest_us = 0;

    /**
     * SLO: no live session may go longer than this many
     * milliseconds without ingest progress; beyond it the health
     * report turns degraded with one "slo-ingest-lag" issue per
     * lagging session. 0 disables the check. (Distinct from
     * idle_ttl_ms, which *finalizes* a quiet stream; the SLO only
     * reports.)
     */
    std::int64_t slo_max_lag_ms = 0;

    /**
     * Flight-recorder dump target: when non-empty, quarantining a
     * session dumps the recorder ring here (atomic temp+rename),
     * so the black box lands next to the incident that needs it.
     * The daemon's signal paths reuse the same file.
     */
    std::string flight_path;
};

/** Aggregate health verdict, worst issue wins. */
enum class HealthState : std::uint8_t {
    Ok,        ///< All SLOs met, nothing shed or quarantined.
    Degraded,  ///< Serving, but shedding or missing an SLO.
    Unhealthy, ///< Sessions quarantined; data is being lost.
};

/** Printable health-state name ("ok", "degraded", "unhealthy"). */
const char *healthStateName(HealthState state);

/** One concrete reason the fleet is not Ok. */
struct HealthIssue
{
    /** "quarantined" | "shed" | "slo-p99-ingest" |
     *  "slo-ingest-lag". */
    std::string kind;

    /** Affected session; empty for fleet-wide issues. */
    std::string session;

    /** Human detail ("p99 3200us over slo 1000us"). */
    std::string detail;
};

/**
 * The `--query health` document: a verdict plus every concrete
 * reason, so an operator (or an alerting rule) never has to infer
 * *why* from raw counters.
 */
struct HealthReport
{
    HealthState state = HealthState::Ok;

    /** Conservative p99 of `serve.ingest_chunk_us` (0 = no data). */
    double p99_ingest_us = 0.0;

    /** Worst live-session ingest lag and who owns it. */
    std::int64_t max_lag_ms = 0;
    std::string max_lag_session;

    std::vector<HealthIssue> issues;
};

class JournalWriter;

/** The daemon core: one session per spooled trace. */
class SessionManager
{
  public:
    explicit SessionManager(const ServeOptions &options);
    ~SessionManager();

    SessionManager(const SessionManager &) = delete;
    SessionManager &operator=(const SessionManager &) = delete;

    /**
     * One pass: discover new spool files, tail-poll every live
     * session concurrently, run capped finalizes, evict expired
     * sessions.
     * @return Sessions that made ingest progress this pass.
     */
    std::size_t poll();

    /** Copies of every session's status, discovery order. */
    std::vector<SessionStatus> sessions() const;

    /** Fleet-level tallies. */
    ServeStats stats() const;

    /**
     * Evaluate fleet health now: quarantined sessions make it
     * unhealthy; shed sessions or a violated SLO
     * (`slo_p99_ingest_us`, `slo_max_lag_ms`) degrade it; each
     * issue is enumerated with its session and detail. Lag is
     * measured on the injectable clock, so tests drive verdicts
     * deterministically.
     */
    HealthReport health() const;

    /**
     * The full status document: {"sessions":[...],
     * "phases":[...], "coverage":[...], "stats":{...},
     * "health":{...}}.
     */
    void writeStatusJson(std::ostream &out,
                         bool pretty = false) const;

    /** The pool session work fans out on (owned or borrowed). */
    ThreadPool &pool() const { return *active_pool; }

    const ServeOptions &options() const { return opts; }

    /**
     * Flush every pending journal snapshot now — the graceful-
     * shutdown path (SIGTERM drain) calls this before the final
     * status publish. A no-op without a journal.
     * @return false when any append/flush failed.
     */
    bool commitJournal();

  private:
    struct Session;

    std::int64_t nowMs() const;
    void scanSpool(std::int64_t now);
    bool ingestOne(Session &session, std::int64_t now);
    void refreshLivePhases(Session &session);
    void finalizeOne(Session &session, std::int64_t now);
    void quarantine(Session &session, const std::string &why);
    void updateLagGauges(std::int64_t now) const;
    void recoverFromJournal(std::int64_t now);
    std::size_t liveCount() const;
    std::uint64_t liveBytes() const;
    bool admissible(std::uint64_t more_sessions) const;
    void journalPass();

    ServeOptions opts;
    std::unique_ptr<ThreadPool> owned_pool;
    ThreadPool *active_pool;
    std::vector<std::unique_ptr<Session>> all;
    std::uint64_t polls = 0;
    std::unique_ptr<JournalWriter> journal;
    std::size_t recovered_count = 0;
};

/**
 * Publish @p manager's status document to @p path via temp file +
 * atomic rename, hardened against publish failure: a failed write
 * or rename never throws, never leaves a stale `<path>.tmp` behind,
 * bumps the `serve.status_publish_errors` counter and reports false
 * so the caller simply retries next tick. Both steps run through
 * the io fail points "serve.status_write" / "serve.status_rename".
 */
bool publishStatus(const SessionManager &manager,
                   const std::string &path,
                   std::string *error = nullptr);

/**
 * Remove a stale `<path>.tmp` left by a crash mid-publish; called
 * once at daemon startup. @return true when a stale temp existed.
 */
bool sweepStalePublish(const std::string &path);

/**
 * Publish the process metrics registry as OpenMetrics text to
 * @p path, same atomic temp+rename discipline (and failure
 * contract) as publishStatus, through the "serve.metrics_write" /
 * "serve.metrics_rename" io fail points. The daemon calls this on
 * every publish tick right after the status document, so scrapers
 * always find the two in step.
 */
bool publishMetrics(const std::string &path,
                    std::string *error = nullptr);

/**
 * Extract one top-level section (e.g. "phases") from a status
 * document into @p out — the `--query` implementation. A
 * string-aware structural scan, not a JSON parser: it finds the
 * key at nesting depth 1 and copies its balanced value verbatim.
 * @return false when the key is absent or the document is
 *     malformed.
 */
bool extractStatusSection(std::string_view status_json,
                          std::string_view key, std::string *out);

} // namespace serve
} // namespace tpupoint

#endif // TPUPOINT_SERVE_SERVE_HH

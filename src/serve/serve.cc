#include "serve/serve.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <mutex>
#include <sstream>

#include "core/interner.hh"
#include "core/io_faults.hh"
#include "core/json.hh"
#include "core/logging.hh"
#include "core/types.hh"
#include "obs/flight_recorder.hh"
#include "obs/logger.hh"
#include "obs/metrics.hh"
#include "obs/pool_metrics.hh"
#include "proto/columnar.hh"
#include "runtime/analysis_pipeline.hh"
#include "serve/journal.hh"
#include "trace/tail_reader.hh"

namespace tpupoint {
namespace serve {

namespace {

/** Per-chunk ingest latency: 8us .. ~67s in x2 buckets. */
obs::HistogramOptions
chunkLatencyBuckets()
{
    obs::HistogramOptions options;
    options.first_bound = 8;
    options.growth = 2;
    options.buckets = 23;
    return options;
}

std::int64_t
steadyNowMs()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now()
                   .time_since_epoch())
        .count();
}

double
elapsedSeconds(std::chrono::steady_clock::time_point since)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - since)
        .count();
}

/** File stem: the session name and its metric label. */
std::string
sessionName(const std::string &filename, const std::string &suffix)
{
    return filename.substr(0, filename.size() - suffix.size());
}

} // namespace

const char *
sessionStateName(SessionState state)
{
    switch (state) {
      case SessionState::Discovering: return "discovering";
      case SessionState::Ingesting: return "ingesting";
      case SessionState::Quiescent: return "quiescent";
      case SessionState::Finalized: return "finalized";
      case SessionState::Evicted: return "evicted";
      case SessionState::Shed: return "shed";
      case SessionState::Quarantined: return "quarantined";
    }
    return "unknown";
}

const char *
healthStateName(HealthState state)
{
    switch (state) {
      case HealthState::Ok: return "ok";
      case HealthState::Degraded: return "degraded";
      case HealthState::Unhealthy: return "unhealthy";
    }
    return "unknown";
}

/**
 * One spooled trace. The compact `status` lives as long as the
 * manager; everything heavy sits behind `live` (while ingesting)
 * and `result` (while Finalized) so eviction can actually return
 * the memory.
 */
struct SessionManager::Session
{
    /** The heavy, evictable ingest state. */
    struct Live
    {
        Live(const std::string &path,
             const TailReaderOptions &tail_options,
             const AnalyzerOptions &analyzer_options)
            : tail(path, tail_options), analysis(analyzer_options)
        {
        }

        TailReader tail;
        AnalysisSession analysis;
        ColumnarRecord scratch;
    };

    SessionStatus status;
    std::unique_ptr<Live> live;
    std::unique_ptr<AnalysisResult> result;
    std::int64_t last_progress_ms = 0;
    std::int64_t finalized_at_ms = 0;
    bool ready_to_finalize = false;

    /** Consecutive ingest failures (the quarantine watchdog). */
    std::uint64_t consecutive_errors = 0;

    /**
     * The status changed since its last journal snapshot. Set by
     * pool tasks (each owns its session exclusively), drained by
     * the control thread after the forEach barrier — never
     * concurrently touched.
     */
    bool journal_dirty = false;
};

SessionManager::SessionManager(const ServeOptions &options)
    : opts(options)
{
    // Live phases ride on the analyzer's streaming mode; set it
    // before any session (including a recovered one) is built.
    if (opts.live_phases)
        opts.analyzer.streaming = true;
    if (opts.pool != nullptr) {
        active_pool = opts.pool;
    } else {
        ThreadPoolOptions pool_opts;
        pool_opts.workers = resolveThreadCount(opts.threads);
        pool_opts.hooks = obs::instrumentedPoolHooks("serve");
        owned_pool = std::make_unique<ThreadPool>(pool_opts);
        active_pool = owned_pool.get();
    }
    if (!opts.journal_path.empty())
        recoverFromJournal(nowMs());
}

SessionManager::~SessionManager() = default;

std::int64_t
SessionManager::nowMs() const
{
    return opts.now_ms ? opts.now_ms() : steadyNowMs();
}

std::size_t
SessionManager::liveCount() const
{
    std::size_t live = 0;
    for (const auto &session : all) {
        const SessionState state = session->status.state;
        if (state == SessionState::Discovering ||
            state == SessionState::Ingesting ||
            state == SessionState::Quiescent)
            ++live;
    }
    return live;
}

std::uint64_t
SessionManager::liveBytes() const
{
    std::uint64_t bytes = 0;
    for (const auto &session : all) {
        const SessionState state = session->status.state;
        if (state == SessionState::Discovering ||
            state == SessionState::Ingesting ||
            state == SessionState::Quiescent)
            bytes += session->status.bytes;
    }
    return bytes;
}

bool
SessionManager::admissible(std::uint64_t more_sessions) const
{
    if (opts.max_sessions > 0 &&
        liveCount() + more_sessions > opts.max_sessions)
        return false;
    if (opts.max_inflight_bytes > 0 &&
        liveBytes() >= opts.max_inflight_bytes)
        return false;
    return true;
}

void
SessionManager::quarantine(Session &session,
                           const std::string &why)
{
    SessionStatus &status = session.status;
    status.state = SessionState::Quarantined;
    status.error = why;
    status.pending = false;
    // Provisional streaming phases die with the live state; a
    // quarantined session must not keep serving an estimate of a
    // stream it lost.
    status.phases.clear();
    status.top3_coverage = 0.0;
    status.steps_behind = 0;
    status.phases_exact = false;
    session.ready_to_finalize = false;
    session.live.reset();
    session.result.reset();
    session.journal_dirty = true;
    obs::MetricsRegistry::global()
        .counter("serve.sessions_quarantined")
        .add(1);
    obs::logWarn("serve", "session quarantined",
                 {{"session", status.name}, {"reason", why}});
    if (opts.flight_path.empty())
        return;
    // Quarantine is the incident the black box exists for: dump
    // the ring next to it. Pool tasks quarantine concurrently and
    // dump() shares one temp path, so serialize the dumps.
    static std::mutex dump_guard;
    std::lock_guard<std::mutex> lock(dump_guard);
    std::string dump_error;
    if (!obs::FlightRecorder::global().dump(
            opts.flight_path, "quarantine: " + status.name,
            &dump_error))
        obs::logWarn("serve", "flight dump failed",
                     {{"path", opts.flight_path},
                      {"error", dump_error}});
}

void
SessionManager::recoverFromJournal(std::int64_t now)
{
    JournalReplay replay;
    std::string why;
    if (!replayJournal(opts.journal_path, &replay, &why)) {
        // The operator pointed --journal at something that is not
        // ours. Refusing to append to (or compact over) a foreign
        // file beats destroying it: run un-journaled and say so.
        obs::logWarn("serve", "journal disabled",
                     {{"path", opts.journal_path},
                      {"error", why}});
        return;
    }
    if (replay.damaged)
        obs::logWarn(
            "serve",
            "journal replay stopped early; sessions past the "
            "damage re-ingest from spool",
            {{"path", opts.journal_path},
             {"detail", replay.detail}});

    auto &registry = obs::MetricsRegistry::global();
    for (SessionStatus &entry :
         foldJournalEntries(replay.entries)) {
        auto session = std::make_unique<Session>();
        entry.recovered = true;
        session->status = entry;
        session->last_progress_ms = now;
        // Derived fields the journal deliberately does not carry
        // (format v1): the configured detector, and exactness for
        // states whose phases are the batch answer.
        session->status.detector =
            phaseAlgorithmName(opts.analyzer.algorithm);
        if (entry.state == SessionState::Finalized ||
            entry.state == SessionState::Evicted) {
            session->status.phases_exact = true;
            session->status.steps_behind = 0;
        }

        const SessionState state = entry.state;
        const bool was_live =
            state == SessionState::Discovering ||
            state == SessionState::Ingesting ||
            state == SessionState::Quiescent;
        if (was_live) {
            // The analysis state (step table, phase builder) is
            // deliberately not journaled — it is large and
            // rebuildable. Replay the spool file up to the
            // committed offset into a fresh session, charging no
            // ingest metrics (those events were charged before the
            // crash), then verify the replay reproduced exactly
            // the journaled tallies.
            TailReaderOptions tail_options;
            tail_options.salvage = opts.salvage;
            session->live = std::make_unique<Session::Live>(
                entry.path, tail_options, opts.analyzer);
            auto &live = *session->live;
            std::uint64_t replayed_records = 0;
            std::uint64_t replayed_events = 0;
            if (entry.bytes > 0)
                live.tail.poll(
                    [&](std::string_view payload) {
                        if (decodeProfileRecordColumnar(
                                payload, live.scratch,
                                StringInterner::global())) {
                            live.analysis.ingest(live.scratch);
                            ++replayed_records;
                            replayed_events +=
                                live.scratch.event_count;
                        }
                    },
                    nullptr, entry.bytes);
            if (live.tail.bytesConsumed() != entry.bytes ||
                replayed_records != entry.records ||
                replayed_events != entry.events) {
                quarantine(
                    *session,
                    "recovery replay diverged from the journal "
                    "(spool file changed since the crash): "
                    "journaled " +
                        std::to_string(entry.bytes) + " bytes / " +
                        std::to_string(entry.records) +
                        " records, replayed " +
                        std::to_string(
                            live.tail.bytesConsumed()) +
                        " bytes / " +
                        std::to_string(replayed_records) +
                        " records");
            } else if (live.tail.complete() ||
                       state == SessionState::Quiescent) {
                session->ready_to_finalize = true;
            }
            // The replay re-fed the streaming detectors the exact
            // settled prefix the crashed process had observed, so
            // the refreshed snapshot (and steps_behind) matches
            // what the journal's writer was publishing.
            if (session->live)
                refreshLivePhases(*session);
        } else if (state == SessionState::Finalized) {
            // The heavy result object is gone; the summary in the
            // status answers every query. Restart the evict TTL.
            session->finalized_at_ms = now;
        }
        // Evicted / Shed / Quarantined restore from the journal
        // alone — no file I/O at all.

        registry.counter("serve.sessions_recovered").add(1);
        ++recovered_count;
        all.push_back(std::move(session));
    }

    journal = std::make_unique<JournalWriter>(opts.journal_path);
    if (!journal->open()) {
        obs::logWarn("serve", "journal open failed; running "
                              "un-journaled",
                     {{"path", opts.journal_path},
                      {"error", journal->error()}});
        journal.reset();
        return;
    }
    if (recovered_count > 0)
        obs::logInfo(
            "serve", "recovered sessions from journal",
            {{"sessions",
              static_cast<std::uint64_t>(recovered_count)},
             {"path", opts.journal_path}});
    // Compact immediately: folds the replayed history to one entry
    // per session and truncates any torn tail the crash left.
    if (!replay.entries.empty() || replay.damaged)
        journal->compact(sessions());
}

void
SessionManager::scanSpool(std::int64_t now)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::directory_iterator it(opts.spool_dir, ec);
    if (ec)
        return; // Spool not there yet: nothing to discover.
    std::vector<std::string> fresh;
    for (const auto &entry : it) {
        if (!entry.is_regular_file(ec) || ec)
            continue;
        const std::string filename =
            entry.path().filename().string();
        if (filename.size() <= opts.suffix.size() ||
            filename.compare(filename.size() - opts.suffix.size(),
                             opts.suffix.size(),
                             opts.suffix) != 0)
            continue;
        const std::string path = entry.path().string();
        const bool known = std::any_of(
            all.begin(), all.end(), [&path](const auto &session) {
                return session->status.path == path;
            });
        if (!known)
            fresh.push_back(path);
    }
    // Directory iteration order is filesystem-defined; sort so
    // discovery order (and every status dump) is deterministic.
    std::sort(fresh.begin(), fresh.end());

    auto &registry = obs::MetricsRegistry::global();
    const auto admit = [&](Session &session) {
        TailReaderOptions tail_options;
        tail_options.salvage = opts.salvage;
        session.live = std::make_unique<Session::Live>(
            session.status.path, tail_options, opts.analyzer);
        session.status.state = SessionState::Discovering;
        session.status.error.clear();
        session.status.pending = true;
        session.status.detector =
            phaseAlgorithmName(opts.analyzer.algorithm);
        session.last_progress_ms = now;
        session.journal_dirty = true;
    };

    // Shed sessions were refused at the load limit, never started;
    // re-admit them in discovery order as capacity frees, before
    // anything newer gets a slot — deterministic FIFO fairness.
    for (const auto &session : all) {
        if (session->status.state != SessionState::Shed)
            continue;
        if (!admissible(1))
            break;
        admit(*session);
        registry.counter("serve.sessions_readmitted").add(1);
        obs::logInfo("serve", "shed session readmitted",
                     {{"session", session->status.name}});
    }

    for (const std::string &path : fresh) {
        auto session = std::make_unique<Session>();
        session->status.path = path;
        session->status.name = sessionName(
            std::filesystem::path(path).filename().string(),
            opts.suffix);
        session->status.detector =
            phaseAlgorithmName(opts.analyzer.algorithm);
        if (admissible(1)) {
            admit(*session);
            obs::logDebug("serve", "session discovered",
                          {{"session", session->status.name},
                           {"path", path}});
        } else {
            // Refuse at the door: an admitted session always runs
            // to completion, so overload only ever sheds work that
            // has not started.
            session->status.state = SessionState::Shed;
            session->status.error = "shed: admission limit";
            session->status.pending = false;
            session->journal_dirty = true;
            registry.counter("serve.sessions_shed").add(1);
            // A spool burst sheds many sessions in one poll; one
            // line per interval carries the count, not the spam.
            static obs::LogSite shed_site(1000);
            obs::Logger::global().logLimited(
                shed_site, LogLevel::Warn, "serve",
                "session shed at admission limit",
                {{"session", session->status.name},
                 {"live",
                  static_cast<std::uint64_t>(liveCount())}});
        }
        all.push_back(std::move(session));
        registry.counter("serve.sessions_discovered").add(1);
    }
}

bool
SessionManager::ingestOne(Session &session, std::int64_t now)
{
    auto &status = session.status;
    auto &registry = obs::MetricsRegistry::global();

    // One ingest error is transient (charged to the watchdog); a
    // run of `quarantine_errors` consecutive ones parks the
    // session so it cannot poison every subsequent poll.
    const auto ingestFailed = [&](const std::string &why) {
        ++session.consecutive_errors;
        status.error = why;
        session.journal_dirty = true;
        registry.counter("serve.ingest_errors").add(1);
        if (opts.quarantine_errors > 0 &&
            session.consecutive_errors >= opts.quarantine_errors)
            quarantine(session, why);
        return false;
    };

    const io::FaultKind fault =
        io::FaultInjector::global().sample("serve.spool_read");
    if (fault != io::FaultKind::None)
        return ingestFailed(std::string("injected ") +
                            io::faultKindName(fault) +
                            " reading spool file");

    const SessionState state_before = status.state;
    const bool ready_before = session.ready_to_finalize;
    try {
        auto &live = *session.live;
        auto &chunk_latency = registry.histogram(
            "serve.ingest_chunk_us", chunkLatencyBuckets());

        const auto poll_start = std::chrono::steady_clock::now();
        auto chunk_mark = poll_start;
        std::uint64_t events_delta = 0;

        const TailPoll pass = live.tail.poll(
            [&](std::string_view payload) {
                if (decodeProfileRecordColumnar(
                        payload, live.scratch,
                        StringInterner::global())) {
                    live.analysis.ingest(live.scratch);
                    ++status.records;
                    status.events += live.scratch.event_count;
                    events_delta += live.scratch.event_count;
                } else {
                    ++status.decode_failures;
                }
            },
            [&](std::size_t) {
                const auto chunk_done =
                    std::chrono::steady_clock::now();
                chunk_latency.observe(static_cast<std::uint64_t>(
                    std::chrono::duration_cast<
                        std::chrono::microseconds>(chunk_done -
                                                   chunk_mark)
                        .count()));
                chunk_mark = chunk_done;
            });

        status.bytes = live.tail.bytesConsumed();
        status.chunks = live.tail.chunksConsumed();
        status.chunks_dropped = live.tail.chunksDropped();
        status.bytes_skipped = live.tail.bytesSkipped();
        status.records_dropped = live.tail.recordsDropped();
        if (!live.tail.error().empty())
            status.error = live.tail.error();
        status.complete = live.tail.complete();
        status.pending = status.records == 0 &&
            !status.complete && !live.tail.damaged();
        session.consecutive_errors = 0;

        const bool progressed = pass.bytes > 0;
        if (progressed) {
            session.last_progress_ms = now;
            if (status.state == SessionState::Discovering ||
                status.state == SessionState::Quiescent)
                status.state = SessionState::Ingesting;
            registry.counter("serve.records_ingested")
                .add(pass.records);
            runtime::chargeIngestMetrics(
                status.name, events_delta, pass.bytes,
                elapsedSeconds(poll_start));
        }

        if (progressed)
            refreshLivePhases(session);

        if (status.complete || live.tail.damaged()) {
            session.ready_to_finalize = true;
        } else if (!progressed && opts.idle_ttl_ms >= 0 &&
                   now - session.last_progress_ms >=
                       opts.idle_ttl_ms) {
            // The writer went quiet past the TTL: declare the
            // stream dead and analyze what salvage recovered.
            status.state = SessionState::Quiescent;
            session.ready_to_finalize = true;
        }
        if (progressed || status.state != state_before ||
            session.ready_to_finalize != ready_before)
            session.journal_dirty = true;
        return progressed;
    } catch (const std::exception &e) {
        return ingestFailed(std::string("ingest failed: ") +
                            e.what());
    }
}

void
SessionManager::refreshLivePhases(Session &session)
{
    if (!opts.analyzer.streaming || session.live == nullptr)
        return;
    const PartialResult partial =
        session.live->analysis.partialResult();
    SessionStatus &status = session.status;
    status.steps = partial.steps_aggregated;
    status.steps_behind = partial.steps_behind;
    status.phases_exact = false;
    if (partial.snapshots.empty())
        return;
    // The primary algorithm's snapshot is what the status document
    // serves, mirroring how finalize's flat fields track the
    // primary detector.
    const StreamingSnapshot &primary = partial.snapshots.front();
    status.top3_coverage = primary.top3_coverage;
    status.phases.clear();
    status.phases.reserve(primary.phases.size());
    for (const StreamingPhase &phase : primary.phases) {
        PhaseSummary summary;
        summary.id = phase.id;
        summary.first_step = phase.first_step;
        summary.last_step = phase.last_step;
        summary.steps = phase.steps;
        summary.duration_ms =
            static_cast<double>(phase.duration) / kMsec;
        summary.noise = phase.noise;
        status.phases.push_back(summary);
    }
}

void
SessionManager::finalizeOne(Session &session, std::int64_t now)
try {
    auto &status = session.status;
    auto result = std::make_unique<AnalysisResult>(
        session.live->analysis.finalize({}, *active_pool));

    status.algorithm = phaseAlgorithmName(result->algorithm);
    status.steps = result->table.size();
    status.top3_coverage = result->top3_coverage;
    status.phases.clear();
    status.phases.reserve(result->phases.size());
    for (const Phase &phase : result->phases) {
        PhaseSummary summary;
        summary.id = phase.id;
        summary.first_step = phase.first_step;
        summary.last_step = phase.last_step;
        summary.steps = phase.size();
        summary.duration_ms =
            static_cast<double>(phase.total_duration) / kMsec;
        summary.noise = phase.is_noise;
        status.phases.push_back(summary);
    }
    if (status.records == 0 && status.error.empty())
        status.error = "stream ended with no records";
    status.pending = false;
    status.state = SessionState::Finalized;
    status.steps_behind = 0;
    status.phases_exact = true;

    session.result = std::move(result);
    session.live.reset(); // Tail buffers + builder released now.
    session.finalized_at_ms = now;
    session.ready_to_finalize = false;
    session.journal_dirty = true;
    obs::MetricsRegistry::global()
        .counter("serve.sessions_finalized")
        .add(1);
    obs::logInfo("serve", "session finalized",
                 {{"session", status.name},
                  {"records", status.records},
                  {"phases", static_cast<std::uint64_t>(
                                 status.phases.size())}});
} catch (const std::exception &e) {
    // A finalize that throws must not take the daemon (or the
    // pool task running it) down: isolate the session.
    quarantine(session, std::string("finalize failed: ") +
                            e.what());
}

std::size_t
SessionManager::poll()
{
    const std::int64_t now = nowMs();
    ++polls;
    scanSpool(now);

    std::vector<Session *> active;
    for (const auto &session : all) {
        const SessionState state = session->status.state;
        if (state == SessionState::Discovering ||
            state == SessionState::Ingesting ||
            state == SessionState::Quiescent)
            if (!session->ready_to_finalize)
                active.push_back(session.get());
    }
    std::atomic<std::size_t> progressed{0};
    active_pool->forEach(
        active.size(),
        [&](std::size_t i) {
            if (ingestOne(*active[i], now))
                progressed.fetch_add(1,
                                     std::memory_order_relaxed);
        },
        "serve.ingest");

    std::vector<Session *> ready;
    for (const auto &session : all)
        if (session->ready_to_finalize)
            ready.push_back(session.get());
    if (opts.max_finalizes_per_poll > 0 &&
        ready.size() > opts.max_finalizes_per_poll)
        ready.resize(opts.max_finalizes_per_poll);
    active_pool->forEach(
        ready.size(),
        [&](std::size_t i) { finalizeOne(*ready[i], now); },
        "serve.finalize");

    for (const auto &session : all) {
        if (session->status.state != SessionState::Finalized ||
            opts.evict_ttl_ms < 0)
            continue;
        if (now - session->finalized_at_ms < opts.evict_ttl_ms)
            continue;
        session->result.reset();
        session->status.state = SessionState::Evicted;
        session->journal_dirty = true;
        obs::MetricsRegistry::global()
            .counter("serve.sessions_evicted")
            .add(1);
    }

    updateLagGauges(now);
    journalPass();

    // One compact snapshot per poll gives the flight recorder a
    // metrics timeline alongside the event log — cheap (one ring
    // slot) and only when the black box is armed.
    obs::FlightRecorder &flight = obs::FlightRecorder::global();
    if (flight.enabled())
        flight.recordSnapshot(
            obs::MetricsRegistry::global().snapshot());
    return progressed.load(std::memory_order_relaxed);
}

void
SessionManager::journalPass()
{
    if (journal == nullptr)
        return;
    commitJournal();
    if (journal->size() > opts.journal_compact_bytes)
        journal->compact(sessions());
}

bool
SessionManager::commitJournal()
{
    if (journal == nullptr)
        return true;
    bool ok = true;
    bool wrote = false;
    for (const auto &session : all) {
        if (!session->journal_dirty)
            continue;
        // A failed append leaves the session dirty: the journal
        // lags reality (safe — recovery re-ingests the gap) and
        // the snapshot is retried next pass.
        if (journal->append(session->status)) {
            session->journal_dirty = false;
            wrote = true;
        } else {
            ok = false;
        }
    }
    if (wrote && !journal->commit())
        ok = false;
    return ok;
}

std::vector<SessionStatus>
SessionManager::sessions() const
{
    std::vector<SessionStatus> out;
    out.reserve(all.size());
    for (const auto &session : all)
        out.push_back(session->status);
    return out;
}

ServeStats
SessionManager::stats() const
{
    ServeStats out;
    out.polls = polls;
    out.sessions = all.size();
    for (const auto &session : all) {
        const SessionStatus &status = session->status;
        switch (status.state) {
          case SessionState::Discovering: ++out.discovering; break;
          case SessionState::Ingesting: ++out.ingesting; break;
          case SessionState::Quiescent: ++out.quiescent; break;
          case SessionState::Finalized: ++out.finalized; break;
          case SessionState::Evicted: ++out.evicted; break;
          case SessionState::Shed: ++out.shed; break;
          case SessionState::Quarantined:
            ++out.quarantined;
            break;
        }
        out.records += status.records;
        out.events += status.events;
        out.bytes += status.bytes;
    }
    out.recovered = recovered_count;
    return out;
}

void
SessionManager::updateLagGauges(std::int64_t now) const
{
    auto &registry = obs::MetricsRegistry::global();
    std::int64_t max_lag = 0;
    for (const auto &session : all) {
        const SessionState state = session->status.state;
        const bool live = state == SessionState::Discovering ||
            state == SessionState::Ingesting ||
            state == SessionState::Quiescent;
        // A non-live session is by definition not lagging; pinning
        // its gauge to zero (instead of leaving the last live
        // value) keeps scrapes from alerting on finished work.
        const std::int64_t lag =
            live ? now - session->last_progress_ms : 0;
        registry
            .gauge("serve.session_lag_ms{session=" +
                   session->status.name + "}")
            .set(lag);
        max_lag = std::max(max_lag, lag);
    }
    // The fleet staleness figure a single alert rule can watch:
    // how far behind its slowest live stream the daemon is.
    registry.gauge("serve.ingest_lag_max_ms").set(max_lag);
}

HealthReport
SessionManager::health() const
{
    const std::int64_t now = nowMs();
    updateLagGauges(now);

    HealthReport report;
    const auto degrade = [&](HealthState at_least) {
        if (report.state < at_least)
            report.state = at_least;
    };

    for (const auto &session : all) {
        const SessionStatus &status = session->status;
        if (status.state == SessionState::Quarantined) {
            degrade(HealthState::Unhealthy);
            report.issues.push_back(
                {"quarantined", status.name, status.error});
            continue;
        }
        if (status.state == SessionState::Shed) {
            degrade(HealthState::Degraded);
            report.issues.push_back(
                {"shed", status.name, status.error});
            continue;
        }
        const bool live =
            status.state == SessionState::Discovering ||
            status.state == SessionState::Ingesting ||
            status.state == SessionState::Quiescent;
        if (!live)
            continue;
        const std::int64_t lag = now - session->last_progress_ms;
        if (lag > report.max_lag_ms) {
            report.max_lag_ms = lag;
            report.max_lag_session = status.name;
        }
        if (opts.slo_max_lag_ms > 0 && lag > opts.slo_max_lag_ms) {
            degrade(HealthState::Degraded);
            report.issues.push_back(
                {"slo-ingest-lag", status.name,
                 "no ingest progress for " + std::to_string(lag) +
                     "ms (slo " +
                     std::to_string(opts.slo_max_lag_ms) + "ms)"});
        }
    }

    const obs::MetricsSnapshot snapshot =
        obs::MetricsRegistry::global().snapshot();
    const auto it =
        snapshot.histograms.find("serve.ingest_chunk_us");
    if (it != snapshot.histograms.end() && it->second.count > 0)
        report.p99_ingest_us =
            obs::histogramQuantile(it->second, 0.99);
    if (opts.slo_p99_ingest_us > 0 &&
        report.p99_ingest_us >
            static_cast<double>(opts.slo_p99_ingest_us)) {
        degrade(HealthState::Degraded);
        report.issues.push_back(
            {"slo-p99-ingest", "",
             "ingest chunk p99 " +
                 std::to_string(static_cast<std::int64_t>(
                     report.p99_ingest_us)) +
                 "us over slo " +
                 std::to_string(opts.slo_p99_ingest_us) + "us"});
    }
    return report;
}

void
SessionManager::writeStatusJson(std::ostream &out,
                                bool pretty) const
{
    JsonWriter w(out, pretty);
    w.beginObject();

    w.key("sessions");
    w.beginArray();
    for (const auto &session : all) {
        const SessionStatus &status = session->status;
        w.beginObject();
        w.field("name", status.name);
        w.field("path", status.path);
        w.field("state", sessionStateName(status.state));
        w.field("pending", status.pending);
        w.field("complete", status.complete);
        w.field("records", status.records);
        w.field("events", status.events);
        w.field("bytes", status.bytes);
        w.field("chunks", status.chunks);
        w.field("chunks_dropped", status.chunks_dropped);
        w.field("bytes_skipped", status.bytes_skipped);
        w.field("records_dropped", status.records_dropped);
        w.field("decode_failures", status.decode_failures);
        if (!status.detector.empty())
            w.field("detector", status.detector);
        w.field("steps_behind", status.steps_behind);
        if (status.recovered)
            w.field("recovered", true);
        if (!status.error.empty())
            w.field("error", status.error);
        w.endObject();
    }
    w.endArray();

    // Phase/coverage sections serve final answers *and* live
    // streaming snapshots: a live session appears as soon as its
    // incremental detector has phases, tagged exact=false with its
    // staleness, and is replaced in place by the exact batch entry
    // at finalize. `--query phases` therefore refuses neither
    // mid-ingest nor post-finalize.
    const auto phase_worthy = [](const SessionStatus &status) {
        if (status.state == SessionState::Finalized ||
            status.state == SessionState::Evicted)
            return true;
        const bool live =
            status.state == SessionState::Discovering ||
            status.state == SessionState::Ingesting ||
            status.state == SessionState::Quiescent;
        return live && !status.phases.empty();
    };

    w.key("phases");
    w.beginArray();
    for (const auto &session : all) {
        const SessionStatus &status = session->status;
        if (!phase_worthy(status))
            continue;
        w.beginObject();
        w.field("name", status.name);
        w.field("algorithm", status.algorithm.empty()
                    ? status.detector
                    : status.algorithm);
        w.field("exact", status.phases_exact);
        w.field("steps_behind", status.steps_behind);
        w.key("phases");
        w.beginArray();
        for (const PhaseSummary &phase : status.phases) {
            w.beginObject();
            w.field("id", phase.id);
            w.field("first_step", phase.first_step);
            w.field("last_step", phase.last_step);
            w.field("steps", phase.steps);
            w.field("duration_ms", phase.duration_ms);
            w.field("noise", phase.noise);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endArray();

    w.key("coverage");
    w.beginArray();
    for (const auto &session : all) {
        const SessionStatus &status = session->status;
        if (!phase_worthy(status))
            continue;
        w.beginObject();
        w.field("name", status.name);
        w.field("algorithm", status.algorithm.empty()
                    ? status.detector
                    : status.algorithm);
        w.field("exact", status.phases_exact);
        w.field("steps_behind", status.steps_behind);
        w.field("steps", status.steps);
        w.field("phase_count",
                static_cast<std::uint64_t>(
                    status.phases.size()));
        w.field("top3_coverage", status.top3_coverage);
        w.endObject();
    }
    w.endArray();

    const ServeStats tallies = stats();
    w.key("stats");
    w.beginObject();
    w.field("polls", tallies.polls);
    w.field("sessions",
            static_cast<std::uint64_t>(tallies.sessions));
    w.field("discovering",
            static_cast<std::uint64_t>(tallies.discovering));
    w.field("ingesting",
            static_cast<std::uint64_t>(tallies.ingesting));
    w.field("quiescent",
            static_cast<std::uint64_t>(tallies.quiescent));
    w.field("finalized",
            static_cast<std::uint64_t>(tallies.finalized));
    w.field("evicted",
            static_cast<std::uint64_t>(tallies.evicted));
    w.field("shed", static_cast<std::uint64_t>(tallies.shed));
    w.field("quarantined",
            static_cast<std::uint64_t>(tallies.quarantined));
    w.field("recovered",
            static_cast<std::uint64_t>(tallies.recovered));
    w.field("records", tallies.records);
    w.field("events", tallies.events);
    w.field("bytes", tallies.bytes);
    w.endObject();

    const HealthReport verdict = health();
    w.key("health");
    w.beginObject();
    w.field("state", healthStateName(verdict.state));
    w.field("p99_ingest_us", verdict.p99_ingest_us);
    w.field("max_lag_ms", verdict.max_lag_ms);
    if (!verdict.max_lag_session.empty())
        w.field("max_lag_session", verdict.max_lag_session);
    w.key("issues");
    w.beginArray();
    for (const HealthIssue &issue : verdict.issues) {
        w.beginObject();
        w.field("kind", issue.kind);
        if (!issue.session.empty())
            w.field("session", issue.session);
        w.field("detail", issue.detail);
        w.endObject();
    }
    w.endArray();
    w.endObject();

    w.endObject();
}

bool
extractStatusSection(std::string_view status_json,
                     std::string_view key, std::string *out)
{
    std::size_t i = 0;
    const std::size_t n = status_json.size();
    const auto skipWs = [&] {
        while (i < n &&
               (status_json[i] == ' ' ||
                status_json[i] == '\t' ||
                status_json[i] == '\n' ||
                status_json[i] == '\r'))
            ++i;
    };
    // Skip a string literal; i sits on the opening quote.
    const auto skipString = [&]() -> bool {
        ++i;
        while (i < n) {
            if (status_json[i] == '\\')
                i += 2;
            else if (status_json[i] == '"') {
                ++i;
                return true;
            } else
                ++i;
        }
        return false;
    };
    // Skip one complete value; i sits on its first byte.
    const std::function<bool()> skipValue = [&]() -> bool {
        skipWs();
        if (i >= n)
            return false;
        const char c = status_json[i];
        if (c == '"')
            return skipString();
        if (c == '{' || c == '[') {
            // Balanced scan; container-kind mismatches are the
            // validator's job, not this scanner's.
            std::size_t depth = 0;
            while (i < n) {
                const char d = status_json[i];
                if (d == '"') {
                    if (!skipString())
                        return false;
                    continue;
                }
                if (d == '{' || d == '[')
                    ++depth;
                else if (d == '}' || d == ']') {
                    --depth;
                    if (depth == 0) {
                        ++i;
                        return true;
                    }
                }
                ++i;
            }
            return false;
        }
        // Primitive: run to the next structural byte.
        while (i < n && status_json[i] != ',' &&
               status_json[i] != '}' && status_json[i] != ']')
            ++i;
        return true;
    };

    skipWs();
    if (i >= n || status_json[i] != '{')
        return false;
    ++i;
    for (;;) {
        skipWs();
        if (i >= n)
            return false;
        if (status_json[i] == '}')
            return false; // Key absent.
        if (status_json[i] != '"')
            return false;
        const std::size_t key_begin = i + 1;
        if (!skipString())
            return false;
        const std::string_view found = status_json.substr(
            key_begin, i - 1 - key_begin);
        skipWs();
        if (i >= n || status_json[i] != ':')
            return false;
        ++i;
        skipWs();
        if (found == key) {
            const std::size_t value_begin = i;
            if (!skipValue())
                return false;
            out->assign(status_json.substr(
                value_begin, i - value_begin));
            return true;
        }
        if (!skipValue())
            return false;
        skipWs();
        if (i < n && status_json[i] == ',')
            ++i;
    }
}

bool
publishStatus(const SessionManager &manager,
              const std::string &path, std::string *error)
{
    std::ostringstream json;
    manager.writeStatusJson(json, /*pretty=*/true);
    json << "\n";

    const std::string tmp = path + ".tmp";
    std::string why;
    bool ok = io::writeFileWithFaults("serve.status_write", tmp,
                                      json.str(), &why);
    if (ok &&
        !io::renameWithFaults("serve.status_rename", tmp, path,
                              &why))
        ok = false;
    if (!ok) {
        // Failure is a retry-next-tick event, never a crash, and
        // never leaves a half-written temp to confuse readers.
        std::error_code ec;
        std::filesystem::remove(tmp, ec);
        obs::MetricsRegistry::global()
            .counter("serve.status_publish_errors")
            .add(1);
        if (error != nullptr)
            *error = why;
        return false;
    }
    return true;
}

bool
sweepStalePublish(const std::string &path)
{
    std::error_code ec;
    return std::filesystem::remove(path + ".tmp", ec) && !ec;
}

bool
publishMetrics(const std::string &path, std::string *error)
{
    std::ostringstream text;
    obs::MetricsRegistry::global().writeOpenMetrics(text);

    const std::string tmp = path + ".tmp";
    std::string why;
    bool ok = io::writeFileWithFaults("serve.metrics_write", tmp,
                                      text.str(), &why);
    if (ok &&
        !io::renameWithFaults("serve.metrics_rename", tmp, path,
                              &why))
        ok = false;
    if (!ok) {
        std::error_code ec;
        std::filesystem::remove(tmp, ec);
        obs::MetricsRegistry::global()
            .counter("serve.metrics_publish_errors")
            .add(1);
        if (error != nullptr)
            *error = why;
        return false;
    }
    return true;
}

} // namespace serve
} // namespace tpupoint

/**
 * @file
 * The serve daemon's durable session journal. A crash or restart
 * used to cost the daemon everything it knew: every live stream
 * was re-ingested from offset 0 (double-charging metrics and
 * redoing hours of analysis) and every finalize outcome was
 * recomputed from scratch. The journal makes that knowledge
 * durable: an append-only file of per-session snapshots — the
 * committed ingest offset, the lifecycle state, salvage tallies,
 * and the finalize outcome (phase summaries included) — committed
 * once per poll, so SessionManager::recoverFromJournal() can
 * restore the fleet after a kill -9 without losing or
 * double-counting a single event.
 *
 * Wire format: the record-stream chunk framing from trace/wire.hh,
 * one entry per chunk, guarded by the same slice-by-8 CRC-32:
 *
 *   journal := header entry*
 *   header  := "TPPJ" u32(version)
 *   entry   := u32(CHUNK_MARKER) u32(count = 1)
 *              u32(payload_size) u32(crc32 payload) payload
 *   payload := encoded SessionStatus (see journal.cc)
 *
 * Recovery invariants:
 *  - An entry is only appended *after* its state is true in
 *    memory, and the journal is flushed before the status document
 *    publishes — a committed offset never runs ahead of what was
 *    actually ingested, so recovery can trust it as a lower bound.
 *  - Replay tolerates a torn final entry (the crash landed
 *    mid-append): everything before it is intact by CRC, the torn
 *    tail is discarded, and the affected session simply re-ingests
 *    a little more from its spool file.
 *  - A CRC-corrupt entry mid-file ends replay at the last good
 *    entry; later entries are ignored (their sessions fall back to
 *    earlier committed state — never forward to invented state).
 *  - Entries for the same session fold last-wins, so an append-only
 *    history of N polls collapses to one status per session.
 *
 * Compaction: when the file outgrows a threshold, the writer
 * rewrites it as header + one entry per session via temp file +
 * atomic rename (fail-pointed at "serve.journal_checkpoint" /
 * "serve.journal_rename"), and appending continues on the compact
 * file. A torn checkpoint is just a torn journal: replay handles
 * it.
 */

#ifndef TPUPOINT_SERVE_JOURNAL_HH
#define TPUPOINT_SERVE_JOURNAL_HH

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "serve/serve.hh"

namespace tpupoint {
namespace serve {

/** Journal container magic: the literal bytes "TPPJ". */
constexpr char kJournalMagic[4] = {'T', 'P', 'P', 'J'};

/** Journal container version. */
constexpr std::uint32_t kJournalVersion = 1;

/** Encode one session snapshot as a journal entry payload. */
std::string encodeJournalEntry(const SessionStatus &status);

/**
 * Decode one journal entry payload.
 * @return false on malformed bytes; @p status is unspecified then.
 */
bool decodeJournalEntry(std::string_view payload,
                        SessionStatus *status);

/** Everything one replay pass recovered. */
struct JournalReplay
{
    /** Entries in append order (duplicates preserved). */
    std::vector<SessionStatus> entries;

    /**
     * Replay stopped early: a torn final entry (crash mid-append)
     * or a CRC/framing-corrupt entry mid-file. Entries up to the
     * damage are valid; `detail` says what was hit.
     */
    bool damaged = false;
    std::string detail;

    /** Bytes of intact journal consumed. */
    std::uint64_t bytes_replayed = 0;
};

/**
 * Replay the journal at @p path. A missing or empty file is a
 * clean, empty replay (a daemon's first start), not an error; a
 * file with a foreign magic is an error (the operator pointed
 * --journal at something else).
 * @return false only on the foreign-magic/unreadable-header case,
 *     with @p error set.
 */
bool replayJournal(const std::string &path, JournalReplay *out,
                   std::string *error = nullptr);

/**
 * Fold replayed entries last-wins by session name, preserving
 * first-appearance order — the shape recovery actually wants.
 */
std::vector<SessionStatus> foldJournalEntries(
    const std::vector<SessionStatus> &entries);

/**
 * The append side. Thread-safe: append/commit/compact may be
 * called concurrently (the serve control loop owns the cadence,
 * but nothing breaks if a test hammers it from several threads).
 * All write paths run through the io fail points
 * "serve.journal_append", "serve.journal_checkpoint" and
 * "serve.journal_rename", so ENOSPC/EIO/torn-rename behaviour is
 * deterministic under test.
 */
class JournalWriter
{
  public:
    explicit JournalWriter(std::string path);
    ~JournalWriter();

    JournalWriter(const JournalWriter &) = delete;
    JournalWriter &operator=(const JournalWriter &) = delete;

    /**
     * Open for appending, writing the header when the file is new
     * or empty. @return false (error() set) when the file cannot
     * be opened.
     */
    bool open();

    /**
     * Append one session snapshot. Buffered until commit().
     * @return false when the entry could not be written (the
     *     journal then lags reality, which recovery tolerates —
     *     at worst a session re-ingests more of its spool file).
     */
    bool append(const SessionStatus &status);

    /** Flush appended entries to the OS. */
    bool commit();

    /**
     * Atomically rewrite the journal as header + one entry per
     * status in @p snapshot (temp file + rename), then continue
     * appending to the compact file. On failure the old journal
     * keeps appending — compaction is an optimization, never a
     * correctness step.
     */
    bool compact(const std::vector<SessionStatus> &snapshot);

    /** Bytes in the journal file (header included). */
    std::uint64_t size() const;

    /** Entries appended over this writer's lifetime. */
    std::uint64_t entriesAppended() const;

    /** Append/commit/compact failures observed. */
    std::uint64_t errors() const;

    /** Detail of the most recent failure; empty when healthy. */
    std::string error() const;

    const std::string &path() const { return file_path; }

  private:
    bool writeRaw(const char *bytes, std::size_t size);

    std::string file_path;
    mutable std::mutex mu;
    std::FILE *file = nullptr;
    std::uint64_t file_bytes = 0;
    std::uint64_t appended = 0;
    std::uint64_t error_count = 0;
    std::string detail;
};

} // namespace serve
} // namespace tpupoint

#endif // TPUPOINT_SERVE_JOURNAL_HH

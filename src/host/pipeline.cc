#include "host/pipeline.hh"

#include <algorithm>

#include "core/logging.hh"
#include "core/strings.hh"
#include "host/host_ops.hh"

namespace tpupoint {

std::string
PipelineConfig::toString() const
{
    std::string out;
    out += "reads=" + std::to_string(num_parallel_reads);
    out += " calls=" + std::to_string(num_parallel_calls);
    out += " prefetch=" + std::to_string(prefetch_depth);
    out += " shuffle=" + std::to_string(shuffle_buffer);
    out += " fused=";
    out += map_and_batch_fused ? '1' : '0';
    return out;
}

PipelineConfig
PipelineConfig::naive()
{
    PipelineConfig cfg;
    cfg.num_parallel_reads = 1;
    cfg.num_parallel_calls = 1;
    cfg.prefetch_depth = 1;
    cfg.shuffle_buffer = 256;
    cfg.map_and_batch_fused = false;
    return cfg;
}

InputPipeline::InputPipeline(Simulator &simulator,
                             const HostSpec &host_spec,
                             StorageBucket &bucket,
                             const DatasetSpec &dataset,
                             std::uint64_t batch_size,
                             std::uint64_t device_batch_bytes,
                             const PipelineConfig &config, Rng rng,
                             TraceSink *trace_sink)
    : sim(simulator), host(host_spec), storage(bucket),
      data(dataset), batch_examples(batch_size),
      device_bytes(device_batch_bytes), cfg(config),
      noise(std::move(rng)), sink(trace_sink),
      raw_queue(simulator, 2), processed_queue(simulator, 2),
      prefetch(simulator, std::max<std::size_t>(
          config.prefetch_depth, 1))
{
    if (batch_examples == 0)
        fatal("InputPipeline: batch size must be positive");
}

void
InputPipeline::emit(const char *type, SimTime start,
                    SimTime duration, StepId step)
{
    if (!sink)
        return;
    TraceEvent event;
    event.type = type;
    event.start = start;
    event.duration = duration;
    event.step = step;
    event.device = EventDevice::Host;
    sink->record(event);
}

double
InputPipeline::effectiveParallelism() const
{
    const int threads = std::max(host.threads(), 1);
    const int p = std::clamp(cfg.num_parallel_calls, 1, threads);
    constexpr double serial_fraction = 0.03;
    return 1.0 / (serial_fraction +
                  (1.0 - serial_fraction) / static_cast<double>(p));
}

std::uint64_t
InputPipeline::storedBatchBytes() const
{
    return batch_examples * data.exampleBytes();
}

std::uint64_t
InputPipeline::decodedBatchBytes() const
{
    return batch_examples * data.decodedExampleBytes();
}

void
InputPipeline::start(StepId first_step, std::uint64_t count)
{
    if (started)
        panic("InputPipeline::start called twice");
    started = true;
    next_read_step = first_step;
    end_step = first_step + count;
    sim.schedule(0, [this]() { readLoop(); });
    sim.schedule(0, [this]() { processLoop(); });
    sim.schedule(0, [this]() { linearizeLoop(); });
}

void
InputPipeline::setConfig(const PipelineConfig &new_config)
{
    cfg = new_config;
    prefetch.setCapacity(
        std::max<std::size_t>(cfg.prefetch_depth, 1));
}

void
InputPipeline::readLoop()
{
    if (next_read_step >= end_step)
        return; // dataset exhausted for this session

    if (!shuffle_filled) {
        // One-time shuffle-buffer fill before the first batch.
        shuffle_filled = true;
        const std::uint64_t fill_bytes =
            cfg.shuffle_buffer * data.exampleBytes();
        const SimTime start = sim.now();
        storage.read(fill_bytes, cfg.num_parallel_reads,
                     [this, start]() {
                         emit(hostop::kRecv, start,
                              sim.now() - start, kNoStep);
                         readLoop();
                     },
                     kNoStep);
        return;
    }

    const StepId step = next_read_step++;
    const std::uint64_t stored = storedBatchBytes();
    const SimTime start = sim.now();
    storage.read(stored, cfg.num_parallel_reads,
                 [this, step, stored, start]() {
        const SimTime elapsed = sim.now() - start;
        emit(hostop::kRecv, start, elapsed, step);
        stats.read_busy += elapsed;
        HostBatch batch;
        batch.step = step;
        batch.bytes = stored;
        batch.ready_at = sim.now();
        raw_queue.push(batch, [this]() { readLoop(); });
    }, step);
}

void
InputPipeline::processLoop()
{
    raw_queue.pop([this](HostBatch batch) {
        const double par = effectiveParallelism();
        const double fused_penalty =
            cfg.map_and_batch_fused ? 1.0 : 1.25;
        const double jitter =
            noise.logNormal(0.0, data.cost_sigma);

        const double stored =
            static_cast<double>(batch.bytes);
        const double decoded = stored * data.decode_expansion;
        const double examples =
            static_cast<double>(batch_examples);
        const SimTime decode_time = static_cast<SimTime>(
            (stored * data.decode_ns_per_byte +
             examples * data.decode_ns_per_example) / par *
            fused_penalty * jitter);
        const SimTime prep_time = static_cast<SimTime>(
            (decoded * data.preprocess_ns_per_byte +
             examples * data.preprocess_ns_per_example) / par *
            fused_penalty * jitter);
        const SimTime total = decode_time + prep_time;
        const SimTime start = sim.now();

        sim.schedule(total, [this, batch, start, decode_time,
                             prep_time]() mutable {
            // Break the stage into the operator events a real host
            // trace shows for this dataset class.
            SimTime cursor = start;
            auto sub_event = [&](const char *type, double frac,
                                 SimTime base) {
                const SimTime d =
                    static_cast<SimTime>(frac *
                        static_cast<double>(base));
                emit(type, cursor, d, batch.step);
                cursor += d;
            };
            switch (data.kind) {
              case DatasetKind::JpegImages:
                sub_event(hostop::kDecodeAndCropJpeg, 1.0,
                          decode_time);
                sub_event(hostop::kResizeBicubic, 0.55, prep_time);
                sub_event(hostop::kRandomFlip, 0.15, prep_time);
                sub_event(hostop::kCast, 0.15, prep_time);
                sub_event(hostop::kSub, 0.15, prep_time);
                break;
              case DatasetKind::RawImages:
                sub_event(hostop::kCast, 1.0, decode_time);
                sub_event(hostop::kSub, 0.5, prep_time);
                sub_event(hostop::kMinimum, 0.25, prep_time);
                sub_event(hostop::kMaximum, 0.25, prep_time);
                break;
              case DatasetKind::TokenizedText:
                sub_event(hostop::kParseExample, 1.0, decode_time);
                sub_event(hostop::kBuildPaddedOutput, 0.55,
                          prep_time);
                sub_event(hostop::kMaximum, 0.15, prep_time);
                sub_event(hostop::kMinimum, 0.10, prep_time);
                sub_event(hostop::kSub, 0.10, prep_time);
                sub_event(hostop::kCast, 0.10, prep_time);
                break;
            }
            stats.process_busy += decode_time + prep_time;
            HostBatch processed = batch;
            processed.bytes = decodedBatchBytes();
            processed.ready_at = sim.now();
            processed_queue.push(processed,
                                 [this]() { processLoop(); });
        });
    });
}

void
InputPipeline::linearizeLoop()
{
    processed_queue.pop([this](HostBatch batch) {
        const double fused_penalty =
            cfg.map_and_batch_fused ? 1.0 : 1.4;
        const SimTime copy_time = static_cast<SimTime>(
            static_cast<double>(device_bytes) /
            host.memcpy_bandwidth * 1e9 * fused_penalty);
        const SimTime start = sim.now();
        sim.schedule(copy_time, [this, batch, start,
                                 copy_time]() mutable {
            emit(hostop::kLinearizeX32, start, copy_time,
                 batch.step);
            stats.linearize_busy += copy_time;
            HostBatch final_batch = batch;
            final_batch.bytes = device_bytes;
            final_batch.ready_at = sim.now();
            prefetch.push(final_batch, [this]() {
                ++stats.batches_produced;
                linearizeLoop();
            });
        });
    });
}

} // namespace tpupoint

/**
 * @file
 * Interned host-side operator labels. These are the operator names
 * TPUPoint observes in host traces on the real platform (Table II of
 * the paper): the infeed/outfeed boundary, TensorFlow session ops,
 * gRPC transport, dataset preprocessing and TPU system management.
 */

#ifndef TPUPOINT_HOST_HOST_OPS_HH
#define TPUPOINT_HOST_HOST_OPS_HH

namespace tpupoint {
namespace hostop {

// Host <-> TPU data exchange (the paper's top host operators).
inline constexpr const char *kOutfeedDequeueTuple =
    "OutfeedDequeueTuple";
inline constexpr const char *kTransferBufferToInfeedLocked =
    "TransferBufferToInfeedLocked";
inline constexpr const char *kInfeedEnqueueTuple =
    "InfeedEnqueueTuple";
inline constexpr const char *kLinearizeX32 = "LinearizeX32";

// TensorFlow session / dispatch.
inline constexpr const char *kRunGraph = "RunGraph";
inline constexpr const char *kSend = "Send";
inline constexpr const char *kRecv = "Recv";
inline constexpr const char *kStartProgram = "StartProgram";
inline constexpr const char *kLSRAv2 = "LSRAv2";

// TPU system lifecycle.
inline constexpr const char *kInitializeHostForDistributedTpu =
    "InitializeHostForDistributedTpu";
inline constexpr const char *kDisconnectHostFromDistributedTPUSystem =
    "DisconnectHostFromDistributedTPUSystem";
inline constexpr const char *kConfigureDistributedTPU =
    "ConfigureDistributedTPU";

// Checkpointing.
inline constexpr const char *kRestoreV2 = "RestoreV2";
inline constexpr const char *kSaveV2 = "SaveV2";

// Device interruption: the session lost its TPU (preemptible
// eviction or maintenance restart) and aborted at a safe boundary.
inline constexpr const char *kDevicePreempted = "DevicePreempted";

// Cloud-storage retry: one failed transfer attempt plus its
// backoff. Emitted by the storage model under fault injection so
// the profiler can attribute slowdown to transient faults.
inline constexpr const char *kStorageRetry = "StorageRetry";

// Input-pipeline preprocessing (image workloads).
inline constexpr const char *kDecodeAndCropJpeg = "DecodeAndCropJpeg";
inline constexpr const char *kResizeBicubic = "ResizeBicubic";
inline constexpr const char *kRandomFlip = "RandomFlipLeftRight";

// Input-pipeline preprocessing (text workloads).
inline constexpr const char *kBuildPaddedOutput = "BuildPaddedOutput";
inline constexpr const char *kParseExample = "ParseExample";

// Host-side eval metric computation (TPUEstimator computes eval
// metrics on the host from outfed tensors).
inline constexpr const char *kArgMax = "ArgMax";
inline constexpr const char *kEqual = "Equal";
inline constexpr const char *kMean = "Mean";
inline constexpr const char *kConcatV2 = "ConcatV2";
inline constexpr const char *kSqueeze = "Squeeze";

// Generic element-wise host math seen in input pipelines.
inline constexpr const char *kMaximum = "Maximum";
inline constexpr const char *kMinimum = "Minimum";
inline constexpr const char *kSub = "Sub";
inline constexpr const char *kCast = "Cast";

} // namespace hostop
} // namespace tpupoint

#endif // TPUPOINT_HOST_HOST_OPS_HH

/**
 * @file
 * Dataset descriptors: what the host input pipeline must do per
 * example. The workload catalog (`workloads/datasets`) instantiates
 * these for the nine datasets of Table I.
 */

#ifndef TPUPOINT_HOST_DATASET_HH
#define TPUPOINT_HOST_DATASET_HH

#include <cstdint>
#include <string>

#include "core/types.hh"

namespace tpupoint {

/** Storage format / preprocessing class of a dataset. */
enum class DatasetKind
{
    JpegImages,    ///< JPEG decode + crop + resize (COCO, ImageNet).
    RawImages,     ///< Small raw images (CIFAR-10, MNIST).
    TokenizedText, ///< Token-id records + padding (SQuAD, MRPC, ...).
};

/**
 * Static description of one dataset as the input pipeline sees it.
 */
struct DatasetSpec
{
    std::string name;
    DatasetKind kind = DatasetKind::TokenizedText;
    std::uint64_t total_bytes = 0;   ///< On-disk size (Table I).
    std::uint64_t num_examples = 0;  ///< Records in the dataset.

    /**
     * Host CPU cost to decode one stored byte on one thread
     * (ns/byte). JPEG decode is far more expensive per byte than
     * parsing token records.
     */
    double decode_ns_per_byte = 1.0;

    /**
     * Fixed host CPU cost per example in the decode stage
     * (ns/example): tokenization and feature construction cost
     * roughly per record, not per byte.
     */
    double decode_ns_per_example = 0.0;

    /**
     * Host CPU cost of post-decode preprocessing per *decoded* byte
     * (resize/crop/augment for images, padding for text).
     */
    double preprocess_ns_per_byte = 0.5;

    /** Fixed per-example preprocessing cost (ns/example). */
    double preprocess_ns_per_example = 0.0;

    /**
     * Expansion from stored to decoded size (JPEG ~10x; raw/text
     * ~1x). Decoded bytes flow through preprocessing and batching.
     */
    double decode_expansion = 1.0;

    /**
     * Relative per-example variability of host processing cost
     * (lognormal sigma). Object-detection inputs (COCO) vary much
     * more than fixed-length text records.
     */
    double cost_sigma = 0.05;

    /** Average stored bytes of one example. */
    std::uint64_t
    exampleBytes() const
    {
        return num_examples ? total_bytes / num_examples : 0;
    }

    /** Average decoded bytes of one example. */
    std::uint64_t
    decodedExampleBytes() const
    {
        return static_cast<std::uint64_t>(
            static_cast<double>(exampleBytes()) * decode_expansion);
    }
};

} // namespace tpupoint

#endif // TPUPOINT_HOST_DATASET_HH

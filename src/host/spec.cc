#include "host/spec.hh"

namespace tpupoint {

HostSpec
HostSpec::standard()
{
    return HostSpec{};
}

} // namespace tpupoint

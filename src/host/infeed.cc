#include "host/infeed.hh"

#include "core/logging.hh"
#include "host/host_ops.hh"

namespace tpupoint {

namespace {

SimTime
transferTime(std::uint64_t bytes, double bandwidth)
{
    return static_cast<SimTime>(
        static_cast<double>(bytes) / bandwidth * 1e9 + 0.5);
}

} // namespace

InfeedDriver::InfeedDriver(Simulator &simulator,
                           BoundedQueue<HostBatch> &prefetch_buffer,
                           InfeedQueue &device_queue,
                           double pcie_bandwidth,
                           TraceSink *trace_sink)
    : sim(simulator), prefetch(prefetch_buffer),
      device(device_queue), pcie_bw(pcie_bandwidth),
      sink(trace_sink)
{
}

void
InfeedDriver::emit(const char *type, SimTime start, SimTime duration,
                   StepId step)
{
    if (!sink)
        return;
    TraceEvent event;
    event.type = type;
    event.start = start;
    event.duration = duration;
    event.step = step;
    event.device = EventDevice::Host;
    sink->record(event);
}

void
InfeedDriver::start()
{
    if (started)
        panic("InfeedDriver::start called twice");
    started = true;
    sim.schedule(0, [this]() { forwardLoop(); });
}

void
InfeedDriver::forwardLoop()
{
    prefetch.pop([this](HostBatch batch) {
        // Hold the PCIe link while serializing the batch across.
        const SimTime transfer = transferTime(batch.bytes, pcie_bw);
        const SimTime start = sim.now();
        sim.schedule(transfer, [this, batch, start,
                                transfer]() mutable {
            emit(hostop::kTransferBufferToInfeedLocked, start,
                 transfer, batch.step);
            link_busy += transfer;

            // Registering the tuple with the device queue is cheap.
            const SimTime enqueue_start = sim.now();
            DeviceBatch device_batch;
            device_batch.step = batch.step;
            device_batch.bytes = batch.bytes;
            device_batch.host_ready = batch.ready_at;
            device.push(device_batch, [this, batch,
                                       enqueue_start]() mutable {
                emit(hostop::kInfeedEnqueueTuple, enqueue_start,
                     sim.now() - enqueue_start + 5 * kUsec,
                     batch.step);
                ++batches;
                forwardLoop();
            });
        });
    });
}

OutfeedDrain::OutfeedDrain(Simulator &simulator,
                           OutfeedQueue &device_queue,
                           double pcie_bandwidth,
                           TraceSink *trace_sink)
    : sim(simulator), device(device_queue), pcie_bw(pcie_bandwidth),
      sink(trace_sink)
{
}

void
OutfeedDrain::start(StepCallback on_step)
{
    if (started)
        panic("OutfeedDrain::start called twice");
    started = true;
    callback = std::move(on_step);
    sim.schedule(0, [this]() { drainLoop(); });
}

void
OutfeedDrain::drainLoop()
{
    const SimTime wait_start = sim.now();
    device.pop([this, wait_start](StepResult result) {
        // The dequeue op spans the blocking wait plus the readback.
        const SimTime transfer =
            transferTime(result.bytes, pcie_bw) + 20 * kUsec;
        sim.schedule(transfer, [this, result,
                                wait_start]() mutable {
            if (sink) {
                TraceEvent event;
                event.type = hostop::kOutfeedDequeueTuple;
                event.start = wait_start;
                event.duration = sim.now() - wait_start;
                event.step = result.step;
                event.device = EventDevice::Host;
                sink->record(event);
            }
            ++results;
            if (callback)
                callback(result);
            drainLoop();
        });
    });
}

} // namespace tpupoint

/**
 * @file
 * The tf.data-style host input pipeline: storage read -> decode ->
 * preprocess -> batch/linearize -> prefetch buffer. Its parameters
 * (parallel reads, parallel calls, prefetch depth, ...) are exactly
 * the "adjustable parameters" TPUPoint-Optimizer tunes (Section
 * VII-A: buffer sizes, thread counts, operation order).
 */

#ifndef TPUPOINT_HOST_PIPELINE_HH
#define TPUPOINT_HOST_PIPELINE_HH

#include <cstdint>
#include <functional>
#include <string>

#include "core/rng.hh"
#include "core/types.hh"
#include "host/dataset.hh"
#include "host/spec.hh"
#include "host/storage.hh"
#include "proto/event.hh"
#include "sim/bounded_queue.hh"
#include "sim/simulator.hh"

namespace tpupoint {

/**
 * User-adjustable input-pipeline parameters — the optimizer's search
 * space.
 */
struct PipelineConfig
{
    /** Concurrent storage streams feeding the record reader. */
    int num_parallel_reads = 8;

    /** Worker threads for decode/preprocess (tf.data map). */
    int num_parallel_calls = 10;

    /** Batches buffered ahead of the infeed (tf.data prefetch). */
    std::size_t prefetch_depth = 2;

    /** Shuffle-buffer size in examples (startup fill cost). */
    std::size_t shuffle_buffer = 1024;

    /** Fused map_and_batch (operation reorder; cuts copy cost). */
    bool map_and_batch_fused = true;

    bool operator==(const PipelineConfig &) const = default;

    /** "reads=8 calls=16 prefetch=2 shuffle=1024 fused=1". */
    std::string toString() const;

    /** The deliberately poor configuration used for naive runs. */
    static PipelineConfig naive();
};

/** One host-prepared batch parked in the prefetch buffer. */
struct HostBatch
{
    StepId step = kNoStep;
    std::uint64_t bytes = 0;  ///< Device-format (infeed) bytes.
    SimTime ready_at = 0;
};

/**
 * Event-driven input pipeline. Three internally-queued stages
 * (read, process, batch/linearize) run concurrently; the output
 * lands in a prefetch buffer of configurable depth. Stage costs are
 * derived from the dataset descriptor and the host spec, with
 * deterministic per-batch lognormal variability.
 */
class InputPipeline
{
  public:
    /** Stage-level accounting for bottleneck diagnosis. */
    struct Counters
    {
        std::uint64_t batches_produced = 0;
        SimTime read_busy = 0;
        SimTime process_busy = 0;
        SimTime linearize_busy = 0;
    };

    /**
     * @param batch_size Examples per batch (Table I defaults).
     * @param device_batch_bytes Bytes of one device-format batch
     *     (the model schedule's infeed bytes).
     */
    InputPipeline(Simulator &simulator, const HostSpec &host_spec,
                  StorageBucket &bucket, const DatasetSpec &dataset,
                  std::uint64_t batch_size,
                  std::uint64_t device_batch_bytes,
                  const PipelineConfig &config, Rng rng,
                  TraceSink *sink);

    /**
     * Produce batches for steps [first_step, first_step + count).
     * Asynchronous; batches appear in output() as they are ready.
     */
    void start(StepId first_step, std::uint64_t count);

    /** The prefetch buffer the infeed thread drains. */
    BoundedQueue<HostBatch> &output() { return prefetch; }

    /** Live-retune the pipeline (TPUPoint-Optimizer hook). Takes
     * effect from the next batch in each stage. */
    void setConfig(const PipelineConfig &new_config);

    /** Current configuration. */
    const PipelineConfig &config() const { return cfg; }

    /** Stage accounting. */
    const Counters &counters() const { return stats; }

    /** Host-side stored bytes of one batch. */
    std::uint64_t storedBatchBytes() const;

    /** Host-side decoded bytes of one batch. */
    std::uint64_t decodedBatchBytes() const;

  private:
    void readLoop();
    void processLoop();
    void linearizeLoop();

    /** Parallel speedup of the map stage (Amdahl-limited). */
    double effectiveParallelism() const;

    void emit(const char *type, SimTime start, SimTime duration,
              StepId step);

    Simulator &sim;
    HostSpec host;
    StorageBucket &storage;
    DatasetSpec data;
    std::uint64_t batch_examples;
    std::uint64_t device_bytes;
    PipelineConfig cfg;
    Rng noise;
    TraceSink *sink;

    BoundedQueue<HostBatch> raw_queue;       ///< read -> process
    BoundedQueue<HostBatch> processed_queue; ///< process -> batch
    BoundedQueue<HostBatch> prefetch;        ///< final buffer

    StepId next_read_step = 0;
    StepId end_step = 0;
    bool started = false;
    bool shuffle_filled = false;
    Counters stats;
};

} // namespace tpupoint

#endif // TPUPOINT_HOST_PIPELINE_HH

/**
 * @file
 * Cloud storage-bucket model. Cloud TPU training streams datasets
 * and writes checkpoints through Google Cloud Storage; this models
 * per-stream bandwidth, request latency and a bounded number of
 * concurrent streams.
 */

#ifndef TPUPOINT_HOST_STORAGE_HH
#define TPUPOINT_HOST_STORAGE_HH

#include <cstdint>
#include <functional>
#include <memory>

#include "core/types.hh"
#include "sim/resource.hh"
#include "sim/simulator.hh"

namespace tpupoint {

/** Storage service parameters. */
struct StorageSpec
{
    double stream_bandwidth = 160e6; ///< Bytes/s per stream.
    SimTime request_latency = 6 * kMsec;
    int max_streams = 64;            ///< Concurrent connections.
};

/**
 * A persistent object-store bucket. Reads and writes acquire one of
 * a bounded pool of streams; each transfer costs latency plus
 * size/bandwidth.
 */
class StorageBucket
{
  public:
    StorageBucket(Simulator &simulator, const StorageSpec &spec);

    /**
     * Read @p bytes using up to @p parallel_streams concurrent
     * streams; @p done fires when the last stream completes.
     */
    void read(std::uint64_t bytes, int parallel_streams,
              std::function<void()> done);

    /** Write @p bytes (checkpoints) on one stream. */
    void write(std::uint64_t bytes, std::function<void()> done);

    /** Total bytes served. */
    std::uint64_t bytesRead() const { return bytes_read; }

    /** Total bytes written. */
    std::uint64_t bytesWritten() const { return bytes_written; }

  private:
    SimTime transferTime(std::uint64_t bytes) const;

    Simulator &sim;
    StorageSpec config;
    Resource streams;
    std::uint64_t bytes_read = 0;
    std::uint64_t bytes_written = 0;
};

} // namespace tpupoint

#endif // TPUPOINT_HOST_STORAGE_HH

/**
 * @file
 * Cloud storage-bucket model. Cloud TPU training streams datasets
 * and writes checkpoints through Google Cloud Storage; this models
 * per-stream bandwidth, request latency and a bounded number of
 * concurrent streams.
 *
 * A FaultPlan can be injected to model the transient behaviour of a
 * real bucket (request errors, tail-latency spikes, mid-transfer
 * stream resets). Failed attempts are retried transparently under a
 * RetryPolicy — capped exponential backoff with deterministic
 * jitter — and all retry time is charged to the simulation, so
 * faults surface exactly where TPUPoint looks: longer Recv/SaveV2
 * durations, TPU infeed stalls, and StorageRetry trace events the
 * profiler folds into the phase tables.
 */

#ifndef TPUPOINT_HOST_STORAGE_HH
#define TPUPOINT_HOST_STORAGE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/types.hh"
#include "proto/event.hh"
#include "sim/fault.hh"
#include "sim/resource.hh"
#include "sim/simulator.hh"

namespace tpupoint {

/** Storage service parameters. */
struct StorageSpec
{
    double stream_bandwidth = 160e6; ///< Bytes/s per stream.
    SimTime request_latency = 6 * kMsec;
    int max_streams = 64;            ///< Concurrent connections.
};

/**
 * How the bucket retries a faulted transfer attempt. Backoff grows
 * geometrically from @p initial_backoff, is capped at
 * @p max_backoff, and is jittered by up to +/- @p jitter of itself
 * (drawn deterministically from the fault plan's stream).
 */
struct RetryPolicy
{
    /** Attempts per transfer, the first included. Exhausting the
     * budget is a hard failure (fatal): the training job would have
     * crashed on the storage exception. */
    int max_attempts = 6;

    SimTime initial_backoff = 10 * kMsec;
    double backoff_multiplier = 2.0;
    SimTime max_backoff = 2 * kSec;

    /** Jitter fraction in [0, 1]: backoff *= 1 +/- jitter. */
    double jitter = 0.25;

    /**
     * Cap on one transfer's total time across attempts and
     * backoffs, checked whenever an attempt fails; 0 disables. A
     * transfer that would retry past the cap fails hard instead of
     * wedging the run.
     */
    SimTime op_timeout = 60 * kSec;
};

/**
 * A persistent object-store bucket. Reads and writes acquire one of
 * a bounded pool of streams; each transfer costs latency plus
 * size/bandwidth. With a fault plan injected, each per-stream
 * attempt samples the plan and may error, spike or reset; failures
 * release the stream, back off per the retry policy, and reacquire.
 */
class StorageBucket
{
  public:
    StorageBucket(Simulator &simulator, const StorageSpec &spec);

    /**
     * Inject transient faults. @p plan must outlive the bucket; a
     * null plan (or a quiet one) restores steady-state behaviour.
     */
    void injectFaults(FaultPlan *plan,
                      const RetryPolicy &policy = {});

    /** Emit StorageRetry events here (nullptr disables). */
    void setTraceSink(TraceSink *trace_sink) { sink = trace_sink; }

    /**
     * Read @p bytes using up to @p parallel_streams concurrent
     * streams; @p done fires when the last stream completes. The
     * shares are as equal as possible with the last stream carrying
     * the remainder, so the shares always sum to exactly @p bytes.
     * @p step attributes retry events to a training step.
     */
    void read(std::uint64_t bytes, int parallel_streams,
              std::function<void()> done, StepId step = kNoStep);

    /**
     * Write @p bytes (checkpoints) on one stream. A zero-byte
     * write still pays the request latency: an empty PUT is still
     * a storage round trip, and callers rely on @p done firing
     * strictly later than the call.
     */
    void write(std::uint64_t bytes, std::function<void()> done,
               StepId step = kNoStep);

    /**
     * The per-stream byte shares read() uses: as equal as possible,
     * remainder on the last stream. Exposed so tests can pin
     * sum(shares) == bytes.
     */
    static std::vector<std::uint64_t>
    splitShares(std::uint64_t bytes, int streams);

    /** Total bytes served. */
    std::uint64_t bytesRead() const { return bytes_read; }

    /** Total bytes written. */
    std::uint64_t bytesWritten() const { return bytes_written; }

    /** Failed attempts that were retried. */
    std::uint64_t retriesPerformed() const { return retries; }

    /** Time lost to failed attempts plus backoff. */
    SimTime retryTime() const { return retry_time; }

    /** The injected plan, or nullptr. */
    FaultPlan *faultPlan() const { return faults; }

  private:
    SimTime transferTime(std::uint64_t bytes) const;

    /**
     * One per-stream transfer: sample the fault plan, hold a
     * stream for the attempt, and either complete or back off and
     * try again.
     * @param attempt 1-based attempt number.
     * @param op_start When the transfer (attempt 1) began.
     */
    void transfer(std::uint64_t bytes, int attempt,
                  SimTime op_start, StepId step,
                  std::function<void()> done);

    /** Jittered, capped exponential backoff after @p attempt. */
    SimTime backoffDelay(int attempt);

    void emitRetry(SimTime start, SimTime duration, StepId step);

    Simulator &sim;
    StorageSpec config;
    Resource streams;
    FaultPlan *faults = nullptr;
    RetryPolicy retry_policy;
    TraceSink *sink = nullptr;
    std::uint64_t bytes_read = 0;
    std::uint64_t bytes_written = 0;
    std::uint64_t retries = 0;
    SimTime retry_time = 0;
};

} // namespace tpupoint

#endif // TPUPOINT_HOST_STORAGE_HH

/**
 * @file
 * Model checkpointing. TensorFlow estimators periodically write the
 * model variables to cloud storage (SaveV2) and restore them at
 * startup (RestoreV2). TPUPoint-Analyzer associates each detected
 * phase with the nearest checkpoint (Section IV-C) so applications
 * can fast-forward to a phase instead of replaying from step zero.
 */

#ifndef TPUPOINT_HOST_CHECKPOINT_HH
#define TPUPOINT_HOST_CHECKPOINT_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "core/types.hh"
#include "host/storage.hh"
#include "proto/event.hh"
#include "sim/simulator.hh"

namespace tpupoint {

/** Metadata of one saved checkpoint. */
struct CheckpointInfo
{
    StepId step = 0;        ///< Global step at save time.
    SimTime saved_at = 0;   ///< Completion timestamp.
    std::uint64_t bytes = 0;
};

/**
 * Saves and restores model state through a storage bucket, keeping
 * the checkpoint registry the analyzer queries.
 */
class CheckpointManager
{
  public:
    /**
     * @param model_bytes Serialized size of the model variables.
     */
    CheckpointManager(Simulator &simulator, StorageBucket &bucket,
                      std::uint64_t model_bytes,
                      TraceSink *trace_sink);

    /** Write a checkpoint at @p step; @p done fires on completion. */
    void save(StepId step, std::function<void()> done);

    /**
     * Restore model variables (emits RestoreV2). When @p from_step
     * is nonzero this models restarting at a saved checkpoint.
     */
    void restore(StepId from_step, std::function<void()> done);

    /** All checkpoints saved so far, ascending by step. */
    const std::vector<CheckpointInfo> &checkpoints() const
    {
        return saved;
    }

    /**
     * The checkpoint closest to @p step (smallest |step delta|), or
     * nullptr when none exist. Two equidistant checkpoints
     * tie-break toward the *earlier* step: restart orchestration
     * resumes from the returned checkpoint, and resuming earlier
     * replays work while resuming later would silently skip it.
     */
    const CheckpointInfo *nearest(StepId step) const;

  private:
    Simulator &sim;
    StorageBucket &storage;
    std::uint64_t model_size;
    TraceSink *sink;
    std::vector<CheckpointInfo> saved;
};

} // namespace tpupoint

#endif // TPUPOINT_HOST_CHECKPOINT_HH

#include "host/checkpoint.hh"

#include <cstdlib>

#include "host/host_ops.hh"

namespace tpupoint {

CheckpointManager::CheckpointManager(Simulator &simulator,
                                     StorageBucket &bucket,
                                     std::uint64_t model_bytes,
                                     TraceSink *trace_sink)
    : sim(simulator), storage(bucket), model_size(model_bytes),
      sink(trace_sink)
{
}

void
CheckpointManager::save(StepId step, std::function<void()> done)
{
    const SimTime start = sim.now();
    storage.write(model_size, [this, step, start,
                               done = std::move(done)]() mutable {
        if (sink) {
            TraceEvent event;
            event.type = hostop::kSaveV2;
            event.start = start;
            event.duration = sim.now() - start;
            event.step = step;
            event.device = EventDevice::Host;
            sink->record(event);
        }
        CheckpointInfo info;
        info.step = step;
        info.saved_at = sim.now();
        info.bytes = model_size;
        saved.push_back(info);
        if (done)
            done();
    }, step);
}

void
CheckpointManager::restore(StepId from_step,
                           std::function<void()> done)
{
    const SimTime start = sim.now();
    storage.read(model_size, 8, [this, from_step, start,
                                 done = std::move(done)]() mutable {
        if (sink) {
            TraceEvent event;
            event.type = hostop::kRestoreV2;
            event.start = start;
            event.duration = sim.now() - start;
            event.step = from_step;
            event.device = EventDevice::Host;
            sink->record(event);
        }
        if (done)
            done();
    }, from_step);
}

const CheckpointInfo *
CheckpointManager::nearest(StepId step) const
{
    const CheckpointInfo *best = nullptr;
    std::uint64_t best_delta = 0;
    for (const auto &info : saved) {
        const std::uint64_t delta = info.step > step
            ? info.step - step : step - info.step;
        // Equidistant checkpoints tie-break toward the earlier
        // step: resuming there never skips work.
        if (!best || delta < best_delta ||
            (delta == best_delta && info.step < best->step)) {
            best = &info;
            best_delta = delta;
        }
    }
    return best;
}

} // namespace tpupoint

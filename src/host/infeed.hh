/**
 * @file
 * The host infeed thread: drains the input pipeline's prefetch
 * buffer and pushes batches across PCIe into the device's infeed
 * queue. Its transfer op — TransferBufferToInfeedLocked — is one of
 * the two most critical host operators the paper identifies.
 */

#ifndef TPUPOINT_HOST_INFEED_HH
#define TPUPOINT_HOST_INFEED_HH

#include <cstdint>

#include "host/pipeline.hh"
#include "proto/event.hh"
#include "sim/simulator.hh"
#include "tpu/queues.hh"

namespace tpupoint {

/**
 * Moves prepared batches host -> device. One batch at a time: pop
 * from the prefetch buffer, hold the PCIe link for the transfer,
 * enqueue into the bounded on-device infeed buffer (blocking when
 * the device is behind).
 */
class InfeedDriver
{
  public:
    /**
     * @param pcie_bandwidth Host-link bytes/s (device spec).
     * @param device_queue On-device infeed buffer.
     */
    InfeedDriver(Simulator &simulator,
                 BoundedQueue<HostBatch> &prefetch_buffer,
                 InfeedQueue &device_queue, double pcie_bandwidth,
                 TraceSink *trace_sink);

    /** Begin the forwarding loop (runs until producers stop). */
    void start();

    /** Batches transferred so far. */
    std::uint64_t transferred() const { return batches; }

    /** Total time the link was busy. */
    SimTime linkBusy() const { return link_busy; }

  private:
    void forwardLoop();

    void emit(const char *type, SimTime start, SimTime duration,
              StepId step);

    Simulator &sim;
    BoundedQueue<HostBatch> &prefetch;
    InfeedQueue &device;
    double pcie_bw;
    TraceSink *sink;
    std::uint64_t batches = 0;
    SimTime link_busy = 0;
    bool started = false;
};

/**
 * The host outfeed thread: blocks in OutfeedDequeueTuple until the
 * device publishes a step result, then hands it to the session.
 * The blocking wait is charged to OutfeedDequeueTuple — which is
 * why that operator tops the paper's host-op table.
 */
class OutfeedDrain
{
  public:
    using StepCallback = std::function<void(StepResult)>;

    OutfeedDrain(Simulator &simulator, OutfeedQueue &device_queue,
                 double pcie_bandwidth, TraceSink *trace_sink);

    /** Begin draining; @p on_step fires per completed step. */
    void start(StepCallback on_step);

    /** Steps drained so far. */
    std::uint64_t drained() const { return results; }

  private:
    void drainLoop();

    Simulator &sim;
    OutfeedQueue &device;
    double pcie_bw;
    TraceSink *sink;
    StepCallback callback;
    std::uint64_t results = 0;
    bool started = false;
};

} // namespace tpupoint

#endif // TPUPOINT_HOST_INFEED_HH

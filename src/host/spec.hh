/**
 * @file
 * The Compute Engine host model. The paper's experiments ran on a
 * 16-core 2-way-SMT Intel Skylake instance with 104 GB of memory
 * (Section V); the numbers here describe that machine.
 */

#ifndef TPUPOINT_HOST_SPEC_HH
#define TPUPOINT_HOST_SPEC_HH

#include <cstdint>

#include "core/types.hh"

namespace tpupoint {

/** Host-machine capability description. */
struct HostSpec
{
    int physical_cores = 16;  ///< Skylake cores.
    int smt_ways = 2;         ///< 2-way SMT.
    double memcpy_bandwidth = 12e9; ///< Host memcpy bytes/s.
    double core_throughput = 3.2e9; ///< Per-thread ops/s scalar.
    std::uint64_t memory_bytes = 104ULL * 1000 * kMiB;

    /** Schedulable hardware threads. */
    int threads() const { return physical_cores * smt_ways; }

    /** The n1-standard-32-class host used in the paper. */
    static HostSpec standard();
};

} // namespace tpupoint

#endif // TPUPOINT_HOST_SPEC_HH

#include "host/storage.hh"

#include <algorithm>

#include "core/logging.hh"

namespace tpupoint {

StorageBucket::StorageBucket(Simulator &simulator,
                             const StorageSpec &spec)
    : sim(simulator), config(spec),
      streams(simulator,
              static_cast<std::size_t>(std::max(spec.max_streams, 1)))
{
}

SimTime
StorageBucket::transferTime(std::uint64_t bytes) const
{
    const double seconds =
        static_cast<double>(bytes) / config.stream_bandwidth;
    return config.request_latency +
        static_cast<SimTime>(seconds * 1e9 + 0.5);
}

void
StorageBucket::read(std::uint64_t bytes, int parallel_streams,
                    std::function<void()> done)
{
    if (parallel_streams < 1)
        fatal("StorageBucket::read: need at least one stream");
    const int actual = std::min(parallel_streams,
                                config.max_streams);
    bytes_read += bytes;
    const std::uint64_t per_stream =
        (bytes + static_cast<std::uint64_t>(actual) - 1) /
        static_cast<std::uint64_t>(actual);
    const SimTime per_stream_time = transferTime(per_stream);

    // All streams carry an equal share; completion when the last
    // stream finishes. Streams contend for the bounded pool.
    auto remaining = std::make_shared<int>(actual);
    auto completion = std::make_shared<std::function<void()>>(
        std::move(done));
    for (int i = 0; i < actual; ++i) {
        streams.use(per_stream_time, [remaining, completion]() {
            if (--(*remaining) == 0 && *completion)
                (*completion)();
        });
    }
}

void
StorageBucket::write(std::uint64_t bytes, std::function<void()> done)
{
    bytes_written += bytes;
    streams.use(transferTime(bytes), std::move(done));
}

} // namespace tpupoint

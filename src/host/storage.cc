#include "host/storage.hh"

#include <algorithm>

#include "core/logging.hh"
#include "host/host_ops.hh"
#include "obs/metrics.hh"

namespace tpupoint {

StorageBucket::StorageBucket(Simulator &simulator,
                             const StorageSpec &spec)
    : sim(simulator), config(spec),
      streams(simulator,
              static_cast<std::size_t>(std::max(spec.max_streams, 1)))
{
}

void
StorageBucket::injectFaults(FaultPlan *plan,
                            const RetryPolicy &policy)
{
    if (policy.max_attempts < 1)
        fatal("StorageBucket: retry policy needs >= 1 attempt");
    if (policy.jitter < 0 || policy.jitter > 1)
        fatal("StorageBucket: retry jitter must lie in [0, 1]");
    if (policy.backoff_multiplier < 1)
        fatal("StorageBucket: backoff multiplier must be >= 1");
    faults = plan;
    retry_policy = policy;
}

SimTime
StorageBucket::transferTime(std::uint64_t bytes) const
{
    const double seconds =
        static_cast<double>(bytes) / config.stream_bandwidth;
    return config.request_latency +
        static_cast<SimTime>(seconds * 1e9 + 0.5);
}

std::vector<std::uint64_t>
StorageBucket::splitShares(std::uint64_t bytes, int streams)
{
    if (streams < 1)
        fatal("StorageBucket::splitShares: need >= 1 stream");
    const auto count = static_cast<std::uint64_t>(streams);
    const std::uint64_t base = bytes / count;
    std::vector<std::uint64_t> shares(
        static_cast<std::size_t>(streams), base);
    // The last stream carries the remainder so the shares sum to
    // exactly `bytes` (no rounded-up over-charge).
    shares.back() += bytes - base * count;
    return shares;
}

SimTime
StorageBucket::backoffDelay(int attempt)
{
    double delay =
        static_cast<double>(retry_policy.initial_backoff);
    for (int i = 1; i < attempt; ++i)
        delay *= retry_policy.backoff_multiplier;
    delay = std::min(delay,
                     static_cast<double>(retry_policy.max_backoff));
    if (faults && retry_policy.jitter > 0) {
        // Deterministic jitter from the plan's own stream: one
        // seed fixes the whole backoff schedule.
        const double swing =
            retry_policy.jitter * (2.0 * faults->jitter() - 1.0);
        delay *= 1.0 + swing;
    }
    return static_cast<SimTime>(delay);
}

void
StorageBucket::emitRetry(SimTime start, SimTime duration,
                         StepId step)
{
    if (!sink)
        return;
    TraceEvent event;
    event.type = hostop::kStorageRetry;
    event.start = start;
    event.duration = duration;
    event.step = step;
    event.device = EventDevice::Host;
    sink->record(event);
}

void
StorageBucket::transfer(std::uint64_t bytes, int attempt,
                        SimTime op_start, StepId step,
                        std::function<void()> done)
{
    FaultDecision fault;
    if (faults)
        fault = faults->sample(sim.now());

    const SimTime clean = transferTime(bytes);
    SimTime held = clean;
    switch (fault.kind) {
      case FaultKind::None:
        break;
      case FaultKind::LatencySpike:
        held = clean + fault.extra_latency;
        break;
      case FaultKind::TransientError:
        // The service answered the request with a retryable error:
        // only the round trip was paid.
        held = config.request_latency;
        break;
      case FaultKind::StreamReset:
        // The connection died partway through the payload.
        held = config.request_latency + static_cast<SimTime>(
            fault.completed_fraction *
            static_cast<double>(clean - config.request_latency));
        break;
    }

    streams.use(held, [this, bytes, attempt, op_start, step, fault,
                       held, done = std::move(done)]() mutable {
        if (!fault.failed()) {
            if (done)
                done();
            return;
        }
        const SimTime attempt_start = sim.now() - held;
        if (attempt >= retry_policy.max_attempts) {
            fatal("StorageBucket: transfer of ", bytes,
                  " bytes failed (", faultKindName(fault.kind),
                  ") after ", attempt,
                  " attempts; retry budget exhausted");
        }
        const SimTime backoff = backoffDelay(attempt);
        if (retry_policy.op_timeout > 0 &&
            sim.now() + backoff - op_start >
                retry_policy.op_timeout) {
            fatal("StorageBucket: transfer of ", bytes,
                  " bytes exceeded its ",
                  toSeconds(retry_policy.op_timeout),
                  " s timeout after ", attempt, " attempts");
        }
        ++retries;
        retry_time += held + backoff;
        obs::MetricsRegistry::global()
            .counter("storage.retries")
            .add(1);
        // The retry event spans the failed attempt plus the
        // backoff — the time the fault actually cost this stream.
        emitRetry(attempt_start, held + backoff, step);
        sim.schedule(backoff, [this, bytes, attempt, op_start,
                               step,
                               done = std::move(done)]() mutable {
            transfer(bytes, attempt + 1, op_start, step,
                     std::move(done));
        });
    });
}

void
StorageBucket::read(std::uint64_t bytes, int parallel_streams,
                    std::function<void()> done, StepId step)
{
    if (parallel_streams < 1)
        fatal("StorageBucket::read: need at least one stream");
    const int actual = std::min(parallel_streams,
                                config.max_streams);
    bytes_read += bytes;
    const std::vector<std::uint64_t> shares =
        splitShares(bytes, actual);

    // Completion when the last stream finishes. Streams contend
    // for the bounded pool and retry independently.
    auto remaining = std::make_shared<int>(actual);
    auto completion = std::make_shared<std::function<void()>>(
        std::move(done));
    for (const std::uint64_t share : shares) {
        transfer(share, 1, sim.now(), step,
                 [remaining, completion]() {
                     if (--(*remaining) == 0 && *completion)
                         (*completion)();
                 });
    }
}

void
StorageBucket::write(std::uint64_t bytes,
                     std::function<void()> done, StepId step)
{
    bytes_written += bytes;
    transfer(bytes, 1, sim.now(), step, std::move(done));
}

} // namespace tpupoint

/**
 * @file
 * Columnar profile records: the analyzer-side twin of ProfileRecord.
 * Where ProfileRecord keeps each step's operator statistics in
 * per-step `std::map<std::string, OpStats>` (convenient for the
 * producer, poison for ingest bandwidth), ColumnarRecord stores one
 * struct-of-arrays block per record — contiguous per-step columns
 * plus a CSR-style (offsets + flat entries) layout for the per-step
 * operator lists, with operator names replaced by dense
 * StringInterner ids.
 *
 * The decode path is built for reuse: `decodeProfileRecordColumnar`
 * writes into a caller-owned record whose `clear()` retains vector
 * capacity, and it reads op names as `string_view`s borrowed from
 * the chunk buffer (ByteReader::getBytes) straight into the
 * interner — so after the vocabulary stabilizes, steady-state
 * decoding performs no heap allocation at all.
 */

#ifndef TPUPOINT_PROTO_COLUMNAR_HH
#define TPUPOINT_PROTO_COLUMNAR_HH

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "core/interner.hh"
#include "core/types.hh"

namespace tpupoint {

/** One operator's accumulated stats, name replaced by its id. */
struct ColumnarOpStats
{
    std::uint32_t op = 0;        ///< StringInterner id.
    std::uint64_t count = 0;     ///< Invocations.
    SimTime total_duration = 0;  ///< Sum of elapsed times.
};

/** A borrowed view of one step's id-sorted operator entries. */
using OpStatsSpan = std::span<const ColumnarOpStats>;

/**
 * One profile response in columnar form. Scalar fields mirror
 * ProfileRecord; steps are parallel arrays indexed 0..stepCount(),
 * and each step's host/TPU operator entries live in flat arrays
 * addressed by offset columns (entries id-sorted within a step).
 */
struct ColumnarRecord
{
    std::uint64_t sequence = 0;
    SimTime window_begin = 0;
    SimTime window_end = 0;
    std::uint64_t event_count = 0;
    bool truncated = false;
    std::uint64_t events_dropped = 0;
    double tpu_idle_fraction = 0.0;
    double mxu_utilization = 0.0;
    std::uint64_t retries = 0;
    SimTime retry_time = 0;
    std::uint32_t attempt = 0;
    bool attempt_boundary = false;
    StepId preempted_at_step = 0;
    StepId resume_step = 0;

    /** Per-step columns (parallel arrays). */
    std::vector<StepId> step;
    std::vector<SimTime> begin;
    std::vector<SimTime> end;
    std::vector<SimTime> tpu_busy;
    std::vector<SimTime> tpu_idle;
    std::vector<SimTime> mxu_active;

    /** CSR: step i's entries are ops[offsets[i] .. offsets[i+1]). */
    std::vector<std::uint32_t> host_offsets; ///< stepCount()+1.
    std::vector<std::uint32_t> tpu_offsets;  ///< stepCount()+1.
    std::vector<ColumnarOpStats> host_ops;
    std::vector<ColumnarOpStats> tpu_ops;

    std::size_t stepCount() const { return step.size(); }

    OpStatsSpan
    hostOps(std::size_t i) const
    {
        return OpStatsSpan(host_ops.data() + host_offsets[i],
                           host_offsets[i + 1] - host_offsets[i]);
    }

    OpStatsSpan
    tpuOps(std::size_t i) const
    {
        return OpStatsSpan(tpu_ops.data() + tpu_offsets[i],
                           tpu_offsets[i + 1] - tpu_offsets[i]);
    }

    /** Wall-clock span of step @p i. */
    SimTime
    stepSpan(std::size_t i) const
    {
        return end[i] > begin[i] ? end[i] - begin[i] : 0;
    }

    /**
     * Reset to an empty record, retaining every vector's capacity
     * so a reused record stops allocating once it has seen the
     * largest record of the stream.
     */
    void clear();
};

/**
 * Decode one record's wire payload (the same format
 * decodeProfileRecord reads) into columnar form, interning operator
 * names into @p interner as they stream past. @p record is cleared
 * first; capacity is reused.
 * @return false when the payload is malformed or has slack bytes.
 */
bool decodeProfileRecordColumnar(std::string_view payload,
                                 ColumnarRecord &record,
                                 StringInterner &interner);

} // namespace tpupoint

#endif // TPUPOINT_PROTO_COLUMNAR_HH

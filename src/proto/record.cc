#include "proto/record.hh"

#include <algorithm>

#include <string_view>

#include "core/logging.hh"
#include "graph/op.hh"

namespace tpupoint {

void
StepStats::add(const TraceEvent &event)
{
    begin = std::min(begin, event.start);
    end = std::max(end, event.end());
    OpStatsMap &ops =
        event.device == EventDevice::Host ? host_ops : tpu_ops;
    ops[event.type].add(event.duration);
    if (event.device == EventDevice::Tpu) {
        tpu_busy += event.duration;
        mxu_active += event.mxu_active;
        if (event.type ==
            std::string_view(opKindName(OpKind::Infeed)) ||
            event.type ==
            std::string_view(opKindName(OpKind::Outfeed))) {
            tpu_idle += event.duration;
            tpu_busy -= event.duration;
        }
    }
}

void
StepStats::merge(const StepStats &other)
{
    if (step != other.step)
        panic("StepStats::merge: step mismatch");
    begin = std::min(begin, other.begin);
    end = std::max(end, other.end);
    for (const auto &[name, stats] : other.host_ops)
        host_ops[name].merge(stats);
    for (const auto &[name, stats] : other.tpu_ops)
        tpu_ops[name].merge(stats);
    tpu_busy += other.tpu_busy;
    tpu_idle += other.tpu_idle;
    mxu_active += other.mxu_active;
    replayed |= other.replayed;
}

std::vector<std::string>
StepStats::opSet() const
{
    std::vector<std::string> out;
    out.reserve(host_ops.size() + tpu_ops.size());
    for (const auto &[name, stats] : host_ops)
        out.push_back("host:" + name);
    for (const auto &[name, stats] : tpu_ops)
        out.push_back("tpu:" + name);
    return out; // sorted: maps iterate in key order, prefixes kept
}

std::uint64_t
ProfileRecord::totalOpCount() const
{
    std::uint64_t total = 0;
    for (const auto &s : steps) {
        for (const auto &[name, stats] : s.host_ops)
            total += stats.count;
        for (const auto &[name, stats] : s.tpu_ops)
            total += stats.count;
    }
    return total;
}

} // namespace tpupoint

/**
 * @file
 * Profile-record serialization. TPUPoint-Profiler's recording thread
 * streams records into cloud storage; this module defines the
 * compact binary wire format (the stand-in for the Protobuf
 * messages the real toolchain uses) plus a JSON form for
 * interoperability and debugging.
 *
 * The record encoding lives here; container framing (chunking,
 * versioning, checksums, truncation detection) is delegated to the
 * trace transport layer (`trace/record_stream`). ProfileWriter and
 * ProfileReader are the typed convenience wrappers every producer
 * and consumer goes through.
 */

#ifndef TPUPOINT_PROTO_SERIALIZE_HH
#define TPUPOINT_PROTO_SERIALIZE_HH

#include <istream>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "proto/columnar.hh"
#include "proto/record.hh"
#include "trace/record_stream.hh"

namespace tpupoint {

/** Encode one record's wire payload (no container framing). */
std::string encodeProfileRecord(const ProfileRecord &record);

/**
 * Decode one record from its wire payload.
 * @return false when the payload is malformed or has slack bytes.
 */
bool decodeProfileRecord(std::string_view payload,
                         ProfileRecord &record);

/**
 * Streaming binary writer. Records can be appended one at a time —
 * the recording thread persists each profile response as it
 * arrives. finish() (or destruction) seals the stream; a profile
 * without its end marker reads back as truncated.
 */
class ProfileWriter
{
  public:
    /** Writes the container header immediately. */
    explicit ProfileWriter(std::ostream &out);

    /** Append one record. */
    void write(const ProfileRecord &record);

    /** Flush buffered chunks and write the end marker. */
    void finish() { framing.finish(); }

    /** Records written so far. */
    std::uint64_t written() const { return framing.records(); }

    /** Bytes pushed to the underlying stream so far. */
    std::uint64_t bytesWritten() const
    {
        return framing.bytesWritten();
    }

  private:
    RecordStreamWriter framing;
};

/**
 * Streaming binary reader for files produced by ProfileWriter.
 * Incremental with bounded memory: one chunk is resident at a
 * time, however large the profile.
 *
 * In salvage mode damage never throws: corrupt chunks and payloads
 * that fail to decode are dropped (and counted), a missing end
 * marker just ends the stream, and every record the CRCs vouch for
 * is still produced.
 */
class ProfileReader
{
  public:
    /**
     * Validates the header; throws via fatal() on mismatch unless
     * @p salvage is set, in which case the reader scans forward to
     * the first intact chunk instead.
     */
    explicit ProfileReader(std::istream &in, bool salvage = false);

    /**
     * Read the next record. Truncated or corrupt streams throw
     * via fatal() with the transport layer's diagnosis (salvage
     * mode drops the damage and reads on instead).
     * @return false at end of stream.
     */
    bool read(ProfileRecord &record);

    /**
     * Columnar fast path: read the next record straight into a
     * reusable ColumnarRecord, interning op names into
     * @p interner (the process-global one by default). With one
     * record reused across calls, the steady-state loop — chunk
     * buffer, record columns, interner — does no heap allocation.
     * @return false at end of stream.
     */
    bool read(ColumnarRecord &record,
              StringInterner &interner = StringInterner::global());

    /** Read every remaining record. */
    std::vector<ProfileRecord> readAll();

    /** Bytes consumed from the underlying stream so far. */
    std::uint64_t bytesRead() const { return framing.bytesRead(); }

    /** Reusable-chunk-buffer capacity growths (see
     * RecordStreamReader::bufferGrowths()). */
    std::uint64_t bufferGrowths() const
    {
        return framing.bufferGrowths();
    }

    /** Records produced so far. */
    std::uint64_t recordsRead() const { return framing.records(); }

    /** True when constructed in salvage mode. */
    bool salvaging() const { return framing.salvaging(); }

    /** Salvage: chunks dropped to structural damage. */
    std::uint64_t chunksDropped() const
    {
        return framing.chunksDropped();
    }

    /** Salvage: records whose payloads failed to decode. */
    std::uint64_t recordsDropped() const
    {
        return framing.recordsDropped() + undecodable;
    }

    /** Salvage: bytes skipped while resynchronizing. */
    std::uint64_t bytesSkipped() const
    {
        return framing.bytesSkipped();
    }

    /** Salvage: the stream ended without a (valid) end marker. */
    bool truncatedTail() const { return framing.truncatedTail(); }

    /** Salvage: any damage was encountered at all. */
    bool
    sawDamage() const
    {
        return framing.sawDamage() || undecodable > 0;
    }

  private:
    RecordStreamReader framing;
    std::uint64_t undecodable = 0;
};

/** Serialize one record as a JSON object into @p out. */
void profileRecordToJson(const ProfileRecord &record,
                         std::ostream &out, bool pretty = false);

} // namespace tpupoint

#endif // TPUPOINT_PROTO_SERIALIZE_HH

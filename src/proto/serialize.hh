/**
 * @file
 * Profile-record serialization. TPUPoint-Profiler's recording thread
 * streams records into cloud storage; this module defines the
 * compact binary wire format (the stand-in for the Protobuf
 * messages the real toolchain uses) plus a JSON form for
 * interoperability and debugging.
 */

#ifndef TPUPOINT_PROTO_SERIALIZE_HH
#define TPUPOINT_PROTO_SERIALIZE_HH

#include <istream>
#include <ostream>
#include <vector>

#include "proto/record.hh"

namespace tpupoint {

/**
 * Streaming binary writer. Records can be appended one at a time —
 * the recording thread persists each profile response as it
 * arrives.
 */
class ProfileWriter
{
  public:
    /** Writes the file header immediately. */
    explicit ProfileWriter(std::ostream &out);

    /** Append one record. */
    void write(const ProfileRecord &record);

    /** Records written so far. */
    std::uint64_t written() const { return count; }

  private:
    std::ostream &stream;
    std::uint64_t count = 0;
};

/**
 * Streaming binary reader for files produced by ProfileWriter.
 */
class ProfileReader
{
  public:
    /** Validates the header; throws via fatal() on mismatch. */
    explicit ProfileReader(std::istream &in);

    /**
     * Read the next record.
     * @return false at end of stream.
     */
    bool read(ProfileRecord &record);

    /** Read every remaining record. */
    std::vector<ProfileRecord> readAll();

  private:
    std::istream &stream;
};

/** Serialize one record as a JSON object into @p out. */
void profileRecordToJson(const ProfileRecord &record,
                         std::ostream &out, bool pretty = false);

} // namespace tpupoint

#endif // TPUPOINT_PROTO_SERIALIZE_HH

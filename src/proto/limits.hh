/**
 * @file
 * Protocol limits of the Cloud TPU profile transport, as described
 * in Section III-A of the paper: each profile response can include a
 * maximum of 1,000,000 events lasting for a maximum duration of
 * 60,000 ms of elapsed time.
 */

#ifndef TPUPOINT_PROTO_LIMITS_HH
#define TPUPOINT_PROTO_LIMITS_HH

#include <cstdint>

#include "core/types.hh"

namespace tpupoint {

/** Maximum events a single profile response may carry. */
inline constexpr std::uint64_t kMaxEventsPerProfile = 1000000;

/** Maximum elapsed time a single profile response may cover. */
inline constexpr SimTime kMaxProfileDuration = 60000 * kMsec;

} // namespace tpupoint

#endif // TPUPOINT_PROTO_LIMITS_HH

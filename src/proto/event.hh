/**
 * @file
 * The raw trace-event stream produced by the platform model. This is
 * the analogue of the event stream a Cloud TPU profile RPC delivers:
 * every host and device operator execution becomes one TraceEvent.
 */

#ifndef TPUPOINT_PROTO_EVENT_HH
#define TPUPOINT_PROTO_EVENT_HH

#include <cstdint>

#include "core/types.hh"

namespace tpupoint {

/** Which side of the PCIe boundary an event occurred on. */
enum class EventDevice : std::uint8_t { Host, Tpu };

/**
 * One operator execution. `type` is an interned operator-type label
 * ("MatMul", "fusion", "TransferBufferToInfeedLocked", ...) — the
 * granularity at which TPUPoint aggregates (Table II). Events carry
 * the TensorFlow global step so the analyzer can group them.
 */
struct TraceEvent
{
    const char *type = nullptr; ///< Interned op-type label.
    SimTime start = 0;          ///< Start timestamp.
    SimTime duration = 0;       ///< Elapsed simulated time.
    StepId step = kNoStep;      ///< Global step, kNoStep if outside.
    EventDevice device = EventDevice::Host;
    bool mxu = false;           ///< Ran on the matrix units.

    /** Equivalent full-MXU activity time contributed by this op
     * (flops / board peak); the profiler's MXU-utilization metric
     * integrates this. */
    SimTime mxu_active = 0;

    /** End timestamp. */
    SimTime end() const { return start + duration; }
};

/**
 * Consumer of the event stream. The profiler's collector implements
 * this; tests use an in-memory implementation.
 */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** Deliver one event. Called in non-decreasing start order per
     * producer, but producers interleave. */
    virtual void record(const TraceEvent &event) = 0;
};

/** A sink that drops everything (profiling disabled). */
class NullTraceSink : public TraceSink
{
  public:
    void record(const TraceEvent &) override {}
};

/**
 * Fan-in point between the platform model and the profiler. Every
 * producer records into the hub; the profiler attaches and detaches
 * without the producers noticing. With nothing attached, events are
 * counted and dropped (profiling off costs almost nothing).
 */
class TraceHub : public TraceSink
{
  public:
    void
    record(const TraceEvent &event) override
    {
        ++count;
        if (target)
            target->record(event);
    }

    /** Attach (or detach with nullptr) the downstream sink. */
    void attach(TraceSink *sink) { target = sink; }

    /** Currently attached sink, or nullptr. */
    TraceSink *attached() const { return target; }

    /** Events that passed through, attached or not. */
    std::uint64_t totalEvents() const { return count; }

  private:
    TraceSink *target = nullptr;
    std::uint64_t count = 0;
};

} // namespace tpupoint

#endif // TPUPOINT_PROTO_EVENT_HH

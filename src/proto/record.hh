/**
 * @file
 * Statistical profile records. TPUPoint-Profiler does not retain raw
 * events; each profile window is summarized into per-step operator
 * statistics plus device meta-data (TPU idle time, MXU utilization),
 * exactly the information Section III-A describes.
 */

#ifndef TPUPOINT_PROTO_RECORD_HH
#define TPUPOINT_PROTO_RECORD_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/types.hh"
#include "proto/event.hh"

namespace tpupoint {

/** Accumulated statistics for one operator type within one step. */
struct OpStats
{
    std::uint64_t count = 0;     ///< Invocations.
    SimTime total_duration = 0;  ///< Sum of elapsed times.

    void
    add(SimTime duration)
    {
        ++count;
        total_duration += duration;
    }

    void
    merge(const OpStats &other)
    {
        count += other.count;
        total_duration += other.total_duration;
    }
};

/** Map from operator-type label to its accumulated statistics. */
using OpStatsMap = std::map<std::string, OpStats>;

/**
 * Per-step summary: all operator statistics grouped by the TPU step
 * number, split by device side, plus step timing.
 */
struct StepStats
{
    StepId step = kNoStep;
    SimTime begin = kTimeForever; ///< Earliest event start seen.
    SimTime end = 0;              ///< Latest event end seen.
    OpStatsMap host_ops;
    OpStatsMap tpu_ops;
    SimTime tpu_busy = 0;  ///< TPU time attributed to ops.
    SimTime tpu_idle = 0;  ///< TPU time stalled on infeed/outfeed.
    SimTime mxu_active = 0; ///< Equivalent full-MXU-activity time.

    /**
     * True when this step repeats work a preempted attempt already
     * ran (the checkpoint -> preemption gap). Derived during
     * analysis from attempt-boundary records, never serialized;
     * merging preserves it so a step replayed anywhere stays
     * marked.
     */
    bool replayed = false;

    /** Fold one event into the summary. */
    void add(const TraceEvent &event);

    /** Merge a step summary for the same step id. */
    void merge(const StepStats &other);

    /** Wall-clock span covered by this step's events. */
    SimTime span() const { return end > begin ? end - begin : 0; }

    /** Set of distinct op labels (host + TPU), used by OLS Eq. 1. */
    std::vector<std::string> opSet() const;
};

/**
 * One profile response: a bounded window of execution summarized
 * into per-step statistics. `truncated` marks windows that hit the
 * 1M-event or 60 s transport cap.
 */
struct ProfileRecord
{
    std::uint64_t sequence = 0;   ///< Profile number in the session.
    SimTime window_begin = 0;
    SimTime window_end = 0;
    std::uint64_t event_count = 0;
    bool truncated = false;

    /**
     * Events the collector rejected after the window hit a
     * transport cap (1M events / 60 s). Quantifies what
     * `truncated` only flags: how much of the window is missing
     * (container v5; 0 on older profiles).
     */
    std::uint64_t events_dropped = 0;

    /** Device meta-data sampled with the response. */
    double tpu_idle_fraction = 0.0;  ///< Idle / elapsed in window.
    double mxu_utilization = 0.0;    ///< MXU-active / elapsed.

    /** Storage retry events (transient faults) in the window. */
    std::uint64_t retries = 0;

    /** Time lost to failed attempts + backoff in the window. */
    SimTime retry_time = 0;

    /**
     * Attempt of a resilient run this window belongs to (container
     * v4; 0 on v3 profiles and single-attempt runs).
     */
    std::uint32_t attempt = 0;

    /**
     * True for an attempt-boundary marker record: a stepless record
     * announcing that the previous attempt was preempted at
     * `preempted_at_step` and this attempt resumes from
     * `resume_step` (the restored checkpoint). Steps in
     * (resume_step, preempted_at_step] are replays.
     */
    bool attempt_boundary = false;

    /** Boundary only: last step the preempted attempt completed. */
    StepId preempted_at_step = 0;

    /** Boundary only: checkpoint step the new attempt resumes at. */
    StepId resume_step = 0;

    /** Per-step summaries, ascending by step. */
    std::vector<StepStats> steps;

    /** Total events in all steps (recomputed; for validation). */
    std::uint64_t totalOpCount() const;

    /** Window duration. */
    SimTime span() const { return window_end - window_begin; }
};

} // namespace tpupoint

#endif // TPUPOINT_PROTO_RECORD_HH

#include "proto/serialize.hh"

#include "core/json.hh"
#include "core/logging.hh"
#include "trace/bytes.hh"

namespace tpupoint {

namespace {

void
putOpStatsMap(ByteWriter &out, const OpStatsMap &ops)
{
    out.putU32(static_cast<std::uint32_t>(ops.size()));
    for (const auto &[name, stats] : ops) {
        out.putString(name);
        out.putU64(stats.count);
        out.putI64(stats.total_duration);
    }
}

bool
getOpStatsMap(ByteReader &in, OpStatsMap &ops)
{
    std::uint32_t count;
    if (!in.getU32(count))
        return false;
    ops.clear();
    for (std::uint32_t i = 0; i < count; ++i) {
        std::string name;
        OpStats stats;
        if (!in.getString(name) || !in.getU64(stats.count) ||
            !in.getI64(stats.total_duration))
            return false;
        ops.emplace(std::move(name), stats);
    }
    return true;
}

void
jsonOpStatsMap(JsonWriter &w, const OpStatsMap &ops)
{
    w.beginObject();
    for (const auto &[name, stats] : ops) {
        w.key(name);
        w.beginObject();
        w.field("count", stats.count);
        w.field("total_duration_ns", stats.total_duration);
        w.endObject();
    }
    w.endObject();
}

} // namespace

std::string
encodeProfileRecord(const ProfileRecord &record)
{
    ByteWriter out;
    out.putU64(record.sequence);
    out.putI64(record.window_begin);
    out.putI64(record.window_end);
    out.putU64(record.event_count);
    out.putU32(record.truncated ? 1 : 0);
    out.putF64(record.tpu_idle_fraction);
    out.putF64(record.mxu_utilization);
    out.putU64(record.retries);
    out.putI64(record.retry_time);
    out.putU32(static_cast<std::uint32_t>(record.steps.size()));
    for (const auto &s : record.steps) {
        out.putU64(s.step);
        out.putI64(s.begin);
        out.putI64(s.end);
        out.putI64(s.tpu_busy);
        out.putI64(s.tpu_idle);
        out.putI64(s.mxu_active);
        putOpStatsMap(out, s.host_ops);
        putOpStatsMap(out, s.tpu_ops);
    }
    // Container v4: the attempt-continuity tail. Appended after the
    // steps so v3 payloads decode as records that simply end here.
    out.putU32(record.attempt);
    out.putU32(record.attempt_boundary ? 1 : 0);
    out.putU64(record.preempted_at_step);
    out.putU64(record.resume_step);
    // Container v5: the transport-cap drop count; v4 payloads end
    // above and decode with events_dropped = 0.
    out.putU64(record.events_dropped);
    return std::move(out).str();
}

bool
decodeProfileRecord(std::string_view payload,
                    ProfileRecord &record)
{
    record = ProfileRecord();
    ByteReader in(payload);
    std::uint32_t truncated = 0;
    std::uint32_t num_steps = 0;
    if (!in.getU64(record.sequence) ||
        !in.getI64(record.window_begin) ||
        !in.getI64(record.window_end) ||
        !in.getU64(record.event_count) ||
        !in.getU32(truncated) ||
        !in.getF64(record.tpu_idle_fraction) ||
        !in.getF64(record.mxu_utilization) ||
        !in.getU64(record.retries) ||
        !in.getI64(record.retry_time) ||
        !in.getU32(num_steps))
        return false;
    record.truncated = truncated != 0;
    // Each step needs at least 56 payload bytes (six 8-byte
    // fields plus two empty op maps); reject counts the remaining
    // payload cannot possibly hold before resizing.
    if (num_steps > in.remaining() / 56)
        return false;
    record.steps.resize(num_steps);
    for (auto &s : record.steps) {
        if (!in.getU64(s.step) || !in.getI64(s.begin) ||
            !in.getI64(s.end) || !in.getI64(s.tpu_busy) ||
            !in.getI64(s.tpu_idle) || !in.getI64(s.mxu_active) ||
            !getOpStatsMap(in, s.host_ops) ||
            !getOpStatsMap(in, s.tpu_ops))
            return false;
    }
    // A v3 payload ends here; a v4 payload carries the
    // attempt-continuity tail.
    if (in.atEnd())
        return true;
    std::uint32_t boundary = 0;
    if (!in.getU32(record.attempt) || !in.getU32(boundary) ||
        !in.getU64(record.preempted_at_step) ||
        !in.getU64(record.resume_step))
        return false;
    record.attempt_boundary = boundary != 0;
    // A v4 payload ends here; v5 adds the drop count.
    if (in.atEnd())
        return true;
    if (!in.getU64(record.events_dropped))
        return false;
    return in.atEnd();
}

ProfileWriter::ProfileWriter(std::ostream &out) : framing(out)
{
}

void
ProfileWriter::write(const ProfileRecord &record)
{
    framing.append(encodeProfileRecord(record));
}

ProfileReader::ProfileReader(std::istream &in, bool salvage)
    : framing(in, salvage)
{
    if (!salvage && framing.status() != StreamStatus::Ok)
        fatal("ProfileReader: ", framing.error());
}

bool
ProfileReader::read(ProfileRecord &record)
{
    std::string_view payload;
    for (;;) {
        switch (framing.next(payload)) {
          case StreamStatus::Ok:
            if (!decodeProfileRecord(payload, record)) {
                if (framing.salvaging()) {
                    // The chunk CRC passed but this payload does
                    // not decode (written damaged, or a version
                    // skew): drop the record, keep the stream.
                    ++undecodable;
                    continue;
                }
                fatal("ProfileReader: malformed record payload");
            }
            return true;
          case StreamStatus::End:
            return false;
          case StreamStatus::Truncated:
          case StreamStatus::Corrupt:
            fatal("ProfileReader: ", framing.error());
        }
        panic("ProfileReader: unreachable stream status");
    }
}

bool
ProfileReader::read(ColumnarRecord &record,
                    StringInterner &interner)
{
    std::string_view payload;
    for (;;) {
        switch (framing.next(payload)) {
          case StreamStatus::Ok:
            if (!decodeProfileRecordColumnar(payload, record,
                                             interner)) {
                if (framing.salvaging()) {
                    ++undecodable;
                    continue;
                }
                fatal("ProfileReader: malformed record payload");
            }
            return true;
          case StreamStatus::End:
            return false;
          case StreamStatus::Truncated:
          case StreamStatus::Corrupt:
            fatal("ProfileReader: ", framing.error());
        }
        panic("ProfileReader: unreachable stream status");
    }
}

std::vector<ProfileRecord>
ProfileReader::readAll()
{
    std::vector<ProfileRecord> records;
    ProfileRecord record;
    while (read(record))
        records.push_back(std::move(record));
    return records;
}

void
profileRecordToJson(const ProfileRecord &record, std::ostream &out,
                    bool pretty)
{
    JsonWriter w(out, pretty);
    w.beginObject();
    w.field("sequence", record.sequence);
    w.field("window_begin_ns", record.window_begin);
    w.field("window_end_ns", record.window_end);
    w.field("event_count", record.event_count);
    w.field("truncated", record.truncated);
    w.field("events_dropped", record.events_dropped);
    w.field("tpu_idle_fraction", record.tpu_idle_fraction);
    w.field("mxu_utilization", record.mxu_utilization);
    w.field("retries", record.retries);
    w.field("retry_time_ns", record.retry_time);
    w.field("attempt",
            static_cast<std::uint64_t>(record.attempt));
    w.field("attempt_boundary", record.attempt_boundary);
    w.field("preempted_at_step", record.preempted_at_step);
    w.field("resume_step", record.resume_step);
    w.key("steps");
    w.beginArray();
    for (const auto &s : record.steps) {
        w.beginObject();
        w.field("step", s.step);
        w.field("begin_ns", s.begin);
        w.field("end_ns", s.end);
        w.field("tpu_busy_ns", s.tpu_busy);
        w.field("tpu_idle_ns", s.tpu_idle);
        w.field("mxu_active_ns", s.mxu_active);
        w.key("host_ops");
        jsonOpStatsMap(w, s.host_ops);
        w.key("tpu_ops");
        jsonOpStatsMap(w, s.tpu_ops);
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

} // namespace tpupoint

#include "proto/serialize.hh"

#include <cstring>

#include "core/json.hh"
#include "core/logging.hh"

namespace tpupoint {

namespace {

constexpr char kMagic[4] = {'T', 'P', 'P', 'F'};
constexpr std::uint32_t kVersion = 1;

void
putU32(std::ostream &out, std::uint32_t v)
{
    unsigned char buf[4];
    for (int i = 0; i < 4; ++i)
        buf[i] = static_cast<unsigned char>(v >> (8 * i));
    out.write(reinterpret_cast<const char *>(buf), 4);
}

void
putU64(std::ostream &out, std::uint64_t v)
{
    unsigned char buf[8];
    for (int i = 0; i < 8; ++i)
        buf[i] = static_cast<unsigned char>(v >> (8 * i));
    out.write(reinterpret_cast<const char *>(buf), 8);
}

void
putI64(std::ostream &out, std::int64_t v)
{
    putU64(out, static_cast<std::uint64_t>(v));
}

void
putF64(std::ostream &out, double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    putU64(out, bits);
}

void
putString(std::ostream &out, const std::string &s)
{
    putU32(out, static_cast<std::uint32_t>(s.size()));
    out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool
getU32(std::istream &in, std::uint32_t &v)
{
    unsigned char buf[4];
    if (!in.read(reinterpret_cast<char *>(buf), 4))
        return false;
    v = 0;
    for (int i = 3; i >= 0; --i)
        v = (v << 8) | buf[i];
    return true;
}

bool
getU64(std::istream &in, std::uint64_t &v)
{
    unsigned char buf[8];
    if (!in.read(reinterpret_cast<char *>(buf), 8))
        return false;
    v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | buf[i];
    return true;
}

bool
getI64(std::istream &in, std::int64_t &v)
{
    std::uint64_t u;
    if (!getU64(in, u))
        return false;
    v = static_cast<std::int64_t>(u);
    return true;
}

bool
getF64(std::istream &in, double &v)
{
    std::uint64_t bits;
    if (!getU64(in, bits))
        return false;
    std::memcpy(&v, &bits, sizeof(v));
    return true;
}

bool
getString(std::istream &in, std::string &s)
{
    std::uint32_t len;
    if (!getU32(in, len))
        return false;
    s.resize(len);
    return static_cast<bool>(
        in.read(s.data(), static_cast<std::streamsize>(len)));
}

void
putOpStatsMap(std::ostream &out, const OpStatsMap &ops)
{
    putU32(out, static_cast<std::uint32_t>(ops.size()));
    for (const auto &[name, stats] : ops) {
        putString(out, name);
        putU64(out, stats.count);
        putI64(out, stats.total_duration);
    }
}

bool
getOpStatsMap(std::istream &in, OpStatsMap &ops)
{
    std::uint32_t count;
    if (!getU32(in, count))
        return false;
    ops.clear();
    for (std::uint32_t i = 0; i < count; ++i) {
        std::string name;
        OpStats stats;
        if (!getString(in, name) || !getU64(in, stats.count) ||
            !getI64(in, stats.total_duration))
            return false;
        ops.emplace(std::move(name), stats);
    }
    return true;
}

void
jsonOpStatsMap(JsonWriter &w, const OpStatsMap &ops)
{
    w.beginObject();
    for (const auto &[name, stats] : ops) {
        w.key(name);
        w.beginObject();
        w.field("count", stats.count);
        w.field("total_duration_ns", stats.total_duration);
        w.endObject();
    }
    w.endObject();
}

} // namespace

ProfileWriter::ProfileWriter(std::ostream &out) : stream(out)
{
    stream.write(kMagic, sizeof(kMagic));
    putU32(stream, kVersion);
}

void
ProfileWriter::write(const ProfileRecord &record)
{
    putU64(stream, record.sequence);
    putI64(stream, record.window_begin);
    putI64(stream, record.window_end);
    putU64(stream, record.event_count);
    putU32(stream, record.truncated ? 1 : 0);
    putF64(stream, record.tpu_idle_fraction);
    putF64(stream, record.mxu_utilization);
    putU32(stream, static_cast<std::uint32_t>(record.steps.size()));
    for (const auto &s : record.steps) {
        putU64(stream, s.step);
        putI64(stream, s.begin);
        putI64(stream, s.end);
        putI64(stream, s.tpu_busy);
        putI64(stream, s.tpu_idle);
        putI64(stream, s.mxu_active);
        putOpStatsMap(stream, s.host_ops);
        putOpStatsMap(stream, s.tpu_ops);
    }
    ++count;
    if (!stream)
        fatal("ProfileWriter: stream write failed");
}

ProfileReader::ProfileReader(std::istream &in) : stream(in)
{
    char magic[4];
    std::uint32_t version;
    if (!stream.read(magic, sizeof(magic)) ||
        std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        fatal("ProfileReader: bad magic (not a TPUPoint profile)");
    if (!getU32(stream, version) || version != kVersion)
        fatal("ProfileReader: unsupported profile version");
}

bool
ProfileReader::read(ProfileRecord &record)
{
    record = ProfileRecord();
    if (!getU64(stream, record.sequence))
        return false; // clean EOF
    std::uint32_t truncated = 0;
    std::uint32_t num_steps = 0;
    if (!getI64(stream, record.window_begin) ||
        !getI64(stream, record.window_end) ||
        !getU64(stream, record.event_count) ||
        !getU32(stream, truncated) ||
        !getF64(stream, record.tpu_idle_fraction) ||
        !getF64(stream, record.mxu_utilization) ||
        !getU32(stream, num_steps))
        fatal("ProfileReader: truncated record header");
    record.truncated = truncated != 0;
    record.steps.resize(num_steps);
    for (auto &s : record.steps) {
        if (!getU64(stream, s.step) || !getI64(stream, s.begin) ||
            !getI64(stream, s.end) || !getI64(stream, s.tpu_busy) ||
            !getI64(stream, s.tpu_idle) ||
            !getI64(stream, s.mxu_active) ||
            !getOpStatsMap(stream, s.host_ops) ||
            !getOpStatsMap(stream, s.tpu_ops))
            fatal("ProfileReader: truncated step record");
    }
    return true;
}

std::vector<ProfileRecord>
ProfileReader::readAll()
{
    std::vector<ProfileRecord> records;
    ProfileRecord record;
    while (read(record))
        records.push_back(std::move(record));
    return records;
}

void
profileRecordToJson(const ProfileRecord &record, std::ostream &out,
                    bool pretty)
{
    JsonWriter w(out, pretty);
    w.beginObject();
    w.field("sequence", record.sequence);
    w.field("window_begin_ns", record.window_begin);
    w.field("window_end_ns", record.window_end);
    w.field("event_count", record.event_count);
    w.field("truncated", record.truncated);
    w.field("tpu_idle_fraction", record.tpu_idle_fraction);
    w.field("mxu_utilization", record.mxu_utilization);
    w.key("steps");
    w.beginArray();
    for (const auto &s : record.steps) {
        w.beginObject();
        w.field("step", s.step);
        w.field("begin_ns", s.begin);
        w.field("end_ns", s.end);
        w.field("tpu_busy_ns", s.tpu_busy);
        w.field("tpu_idle_ns", s.tpu_idle);
        w.field("mxu_active_ns", s.mxu_active);
        w.key("host_ops");
        jsonOpStatsMap(w, s.host_ops);
        w.key("tpu_ops");
        jsonOpStatsMap(w, s.tpu_ops);
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

} // namespace tpupoint

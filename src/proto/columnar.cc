#include "proto/columnar.hh"

#include <algorithm>

#include "trace/bytes.hh"

namespace tpupoint {

void
ColumnarRecord::clear()
{
    sequence = 0;
    window_begin = 0;
    window_end = 0;
    event_count = 0;
    truncated = false;
    events_dropped = 0;
    tpu_idle_fraction = 0.0;
    mxu_utilization = 0.0;
    retries = 0;
    retry_time = 0;
    attempt = 0;
    attempt_boundary = false;
    preempted_at_step = 0;
    resume_step = 0;
    step.clear();
    begin.clear();
    end.clear();
    tpu_busy.clear();
    tpu_idle.clear();
    mxu_active.clear();
    host_offsets.clear();
    tpu_offsets.clear();
    host_ops.clear();
    tpu_ops.clear();
}

namespace {

/**
 * Decode one wire op-stats map into @p ops, interning names from
 * views borrowed off the payload (no string copies). Appended
 * entries are id-sorted afterwards so consumers can merge them
 * linearly.
 */
bool
getOpStatsColumnar(ByteReader &in,
                   std::vector<ColumnarOpStats> &ops,
                   StringInterner &interner)
{
    std::uint32_t count;
    if (!in.getU32(count))
        return false;
    const std::size_t first = ops.size();
    for (std::uint32_t i = 0; i < count; ++i) {
        std::uint32_t length;
        std::string_view name;
        ColumnarOpStats entry;
        if (!in.getU32(length) || !in.getBytes(length, name) ||
            !in.getU64(entry.count) ||
            !in.getI64(entry.total_duration))
            return false;
        entry.op = interner.intern(name);
        ops.push_back(entry);
    }
    std::sort(ops.begin() + static_cast<std::ptrdiff_t>(first),
              ops.end(),
              [](const ColumnarOpStats &a,
                 const ColumnarOpStats &b) { return a.op < b.op; });
    return true;
}

} // namespace

bool
decodeProfileRecordColumnar(std::string_view payload,
                            ColumnarRecord &record,
                            StringInterner &interner)
{
    record.clear();
    ByteReader in(payload);
    std::uint32_t truncated = 0;
    std::uint32_t num_steps = 0;
    if (!in.getU64(record.sequence) ||
        !in.getI64(record.window_begin) ||
        !in.getI64(record.window_end) ||
        !in.getU64(record.event_count) ||
        !in.getU32(truncated) ||
        !in.getF64(record.tpu_idle_fraction) ||
        !in.getF64(record.mxu_utilization) ||
        !in.getU64(record.retries) ||
        !in.getI64(record.retry_time) ||
        !in.getU32(num_steps))
        return false;
    record.truncated = truncated != 0;
    // Same plausibility bound as the row decoder: each step needs
    // at least 56 payload bytes.
    if (num_steps > in.remaining() / 56)
        return false;
    record.host_offsets.push_back(0);
    record.tpu_offsets.push_back(0);
    for (std::uint32_t i = 0; i < num_steps; ++i) {
        std::uint64_t step_id;
        SimTime begin, end, busy, idle, mxu;
        if (!in.getU64(step_id) || !in.getI64(begin) ||
            !in.getI64(end) || !in.getI64(busy) ||
            !in.getI64(idle) || !in.getI64(mxu) ||
            !getOpStatsColumnar(in, record.host_ops, interner))
            return false;
        record.host_offsets.push_back(
            static_cast<std::uint32_t>(record.host_ops.size()));
        if (!getOpStatsColumnar(in, record.tpu_ops, interner))
            return false;
        record.tpu_offsets.push_back(
            static_cast<std::uint32_t>(record.tpu_ops.size()));
        record.step.push_back(step_id);
        record.begin.push_back(begin);
        record.end.push_back(end);
        record.tpu_busy.push_back(busy);
        record.tpu_idle.push_back(idle);
        record.mxu_active.push_back(mxu);
    }
    // Version tails, mirroring decodeProfileRecord: v3 ends after
    // the steps, v4 adds attempt continuity, v5 the drop count.
    if (in.atEnd())
        return true;
    std::uint32_t boundary = 0;
    if (!in.getU32(record.attempt) || !in.getU32(boundary) ||
        !in.getU64(record.preempted_at_step) ||
        !in.getU64(record.resume_step))
        return false;
    record.attempt_boundary = boundary != 0;
    if (in.atEnd())
        return true;
    if (!in.getU64(record.events_dropped))
        return false;
    return in.atEnd();
}

} // namespace tpupoint

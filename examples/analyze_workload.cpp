/**
 * @file
 * Full TPUPoint-Analyzer session: profile a chosen workload, run a
 * chosen phase-detection algorithm and write the analyzer's output
 * files — the chrome://tracing JSON of Figure 3, the companion CSV,
 * the machine-readable analysis JSON and the raw binary profile.
 *
 * Usage:
 *   analyze_workload [workload] [algorithm]
 *     workload:  bert-squad | bert-mrpc | dcgan | qanet |
 *                retinanet | resnet         (default: dcgan)
 *     algorithm: ols | kmeans | dbscan      (default: ols)
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "analyzer/visualization.hh"
#include "profiler/profiler.hh"
#include "proto/serialize.hh"
#include "runtime/session.hh"
#include "workloads/catalog.hh"

using namespace tpupoint;

namespace {

WorkloadId
parseWorkload(const char *name)
{
    const std::string w = name;
    if (w == "bert-squad")
        return WorkloadId::BertSquad;
    if (w == "bert-mrpc")
        return WorkloadId::BertMrpc;
    if (w == "qanet")
        return WorkloadId::QanetSquad;
    if (w == "retinanet")
        return WorkloadId::RetinanetCoco;
    if (w == "resnet")
        return WorkloadId::ResnetImagenet;
    return WorkloadId::DcganCifar10;
}

PhaseAlgorithm
parseAlgorithm(const char *name)
{
    const std::string a = name;
    if (a == "kmeans")
        return PhaseAlgorithm::KMeans;
    if (a == "dbscan")
        return PhaseAlgorithm::Dbscan;
    return PhaseAlgorithm::OnlineLinearScan;
}

} // namespace

int
main(int argc, char **argv)
{
    const WorkloadId id =
        parseWorkload(argc > 1 ? argv[1] : "dcgan");
    const PhaseAlgorithm algorithm =
        parseAlgorithm(argc > 2 ? argv[2] : "ols");

    WorkloadOptions options;
    options.step_scale = 0.03;
    options.max_train_steps = 800;
    const RuntimeWorkload workload = makeWorkload(id, options);

    std::printf("profiling %s with the %s detector...\n",
                workload.name.c_str(),
                phaseAlgorithmName(algorithm));

    Simulator sim;
    SessionConfig config;
    TrainingSession session(sim, config, workload);
    TpuPointProfiler profiler(sim, session);
    profiler.start(true);
    session.start(nullptr);
    sim.run();
    profiler.stop();

    AnalyzerOptions analyzer_options;
    analyzer_options.algorithm = algorithm;
    const AnalysisResult analysis =
        TpuPointAnalyzer(analyzer_options)
            .analyze(profiler.records(),
                     session.checkpoints().checkpoints());

    std::printf("steps: %zu   phases: %zu   top-3 coverage: "
                "%.1f%%\n",
                analysis.table.size(), analysis.phases.size(),
                100 * analysis.top3_coverage);
    if (algorithm == PhaseAlgorithm::KMeans) {
        std::printf("k-means elbow: k = %d (SSD curve over "
                    "k=1..15)\n",
                    analysis.kmeans.elbow_k);
    }
    if (algorithm == PhaseAlgorithm::Dbscan) {
        std::printf("DBSCAN elbow: min_samples = %zu, clusters = "
                    "%d, noise = %.1f%%\n",
                    analysis.dbscan.elbow_min_samples,
                    analysis.dbscan.best.clusters,
                    100 * analysis.dbscan.best.noise_ratio);
    }
    for (const auto &assoc : analysis.checkpoints) {
        std::printf("phase %d fast-forwards from checkpoint at "
                    "step %llu (distance %llu steps)\n",
                    assoc.phase_id,
                    static_cast<unsigned long long>(
                        assoc.checkpoint_step),
                    static_cast<unsigned long long>(
                        assoc.distance));
    }

    // Write the analyzer's output files.
    const std::string base = "tpupoint_analysis";
    {
        std::ofstream out(base + ".trace.json");
        writeChromeTrace(analysis, profiler.records(), out);
    }
    {
        std::ofstream out(base + ".phases.csv");
        writePhaseCsv(analysis, out);
    }
    {
        std::ofstream out(base + ".summary.json");
        writeAnalysisJson(analysis, out);
    }
    {
        std::ofstream out(base + ".profile.bin",
                          std::ios::binary);
        profiler.writeRecords(out);
    }
    std::printf("\nwrote %s.trace.json (open in "
                "chrome://tracing), %s.phases.csv,\n"
                "%s.summary.json and %s.profile.bin\n",
                base.c_str(), base.c_str(), base.c_str(),
                base.c_str());
    return 0;
}

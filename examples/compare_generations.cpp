/**
 * @file
 * TPUv2 vs TPUv3 across the workload catalog: the Observation 5
 * experiment. Doubling the matrix units without feeding them
 * faster raises idle time and halves MXU utilization — run it and
 * watch it happen.
 */

#include <cstdio>

#include "core/strings.hh"
#include "runtime/session.hh"
#include "workloads/catalog.hh"

using namespace tpupoint;

namespace {

SessionResult
run(const RuntimeWorkload &workload, TpuGeneration generation)
{
    Simulator sim;
    SessionConfig config;
    config.device = TpuDeviceSpec::forGeneration(generation);
    TrainingSession session(sim, config, workload);
    session.start(nullptr);
    sim.run();
    return session.result();
}

} // namespace

int
main()
{
    std::printf("%-16s %11s %11s %10s %10s %9s\n", "workload",
                "v2 wall", "v3 wall", "v2 idle", "v3 idle",
                "mxu v2/v3");
    double idle2 = 0, idle3 = 0, mxu2 = 0, mxu3 = 0;
    int count = 0;
    for (const WorkloadId id : allWorkloads()) {
        WorkloadOptions options;
        options.step_scale = 0.02;
        options.max_train_steps = 500;
        const RuntimeWorkload workload =
            makeWorkload(id, options);
        const SessionResult v2 = run(workload,
                                     TpuGeneration::V2);
        const SessionResult v3 = run(workload,
                                     TpuGeneration::V3);
        std::printf("%-16s %11s %11s %9.1f%% %9.1f%% %4.0f/%-4.0f\n",
                    workloadName(id),
                    formatDuration(v2.wall_time).c_str(),
                    formatDuration(v3.wall_time).c_str(),
                    100 * v2.tpu_idle_fraction,
                    100 * v3.tpu_idle_fraction,
                    100 * v2.mxu_utilization,
                    100 * v3.mxu_utilization);
        idle2 += v2.tpu_idle_fraction;
        idle3 += v3.tpu_idle_fraction;
        mxu2 += v2.mxu_utilization;
        mxu3 += v3.mxu_utilization;
        ++count;
    }
    std::printf("\naverages: idle %.1f%% -> %.1f%%, MXU "
                "utilization %.1f%% -> %.1f%%\n",
                100 * idle2 / count, 100 * idle3 / count,
                100 * mxu2 / count, 100 * mxu3 / count);
    std::printf("(the paper reports 38.9%% -> 43.5%% idle and "
                "22.7%% -> 11.3%% MXU)\n");
    return 0;
}

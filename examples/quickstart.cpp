/**
 * @file
 * Quickstart: profile one training run and summarize its phases.
 *
 * This mirrors the paper's Figure 2 programming interface:
 *
 *   estimator = tf.contrib.tpu.TPUEstimator(...)   -> TrainingSession
 *   tpprofiler = TPUPoint(...)                     -> TpuPointProfiler
 *   tpprofiler.Start(analyzer=True)                -> profiler.start(true)
 *   estimator.train(...)                           -> session.start + sim.run
 *   tpprofiler.Stop()                              -> profiler.stop()
 *
 * then runs TPUPoint-Analyzer over the collected records.
 */

#include <cstdio>

#include "analyzer/analyzer.hh"
#include "core/strings.hh"
#include "profiler/profiler.hh"
#include "runtime/session.hh"
#include "workloads/catalog.hh"

using namespace tpupoint;

int
main()
{
    // 1. Pick a workload from the Table I catalog, scaled down so
    //    the example finishes in a moment.
    WorkloadOptions options;
    options.step_scale = 0.05;
    const RuntimeWorkload workload =
        makeWorkload(WorkloadId::DcganCifar10, options);
    std::printf("workload: %s (batch %llu, %llu train steps)\n",
                workload.name.c_str(),
                static_cast<unsigned long long>(
                    workload.batch_size),
                static_cast<unsigned long long>(
                    workload.schedule.train_steps));

    // 2. Create the platform: a TPUv2-8 instance and the session.
    Simulator sim;
    SessionConfig config;
    config.device = TpuDeviceSpec::v2();
    TrainingSession session(sim, config, workload);

    // 3. Attach TPUPoint-Profiler with the analyzer flag set, run
    //    the "training job", and stop the profiler.
    TpuPointProfiler profiler(sim, session);
    profiler.start(/*analyzer=*/true);
    session.start(nullptr);
    sim.run();
    profiler.stop();

    const SessionResult &result = session.result();
    std::printf("\nrun finished: wall %s, idle %.1f%%, "
                "MXU utilization %.1f%%\n",
                formatDuration(result.wall_time).c_str(),
                100 * result.tpu_idle_fraction,
                100 * result.mxu_utilization);
    std::printf("profiler: %zu records, %llu bytes streamed to "
                "cloud storage\n",
                profiler.records().size(),
                static_cast<unsigned long long>(
                    profiler.bytesRecorded()));

    // 4. Post-execution analysis with OLS at the 70% threshold.
    AnalyzerOptions analyzer_options;
    analyzer_options.algorithm =
        PhaseAlgorithm::OnlineLinearScan;
    const AnalysisResult analysis =
        TpuPointAnalyzer(analyzer_options)
            .analyze(profiler.records(),
                     session.checkpoints().checkpoints());

    std::printf("\nphases found: %zu (top-3 cover %.1f%% of "
                "execution)\n",
                analysis.phases.size(),
                100 * analysis.top3_coverage);
    for (const auto &phase : analysis.phases) {
        std::printf("  phase %d: steps %llu..%llu (%zu steps, "
                    "%s)\n",
                    phase.id,
                    static_cast<unsigned long long>(
                        phase.first_step),
                    static_cast<unsigned long long>(
                        phase.last_step),
                    phase.size(),
                    formatDuration(phase.total_duration).c_str());
    }

    // 5. The most time-consuming operators of the longest phase —
    //    the Table II view.
    const Phase *longest = analysis.longest();
    if (longest) {
        std::printf("\nlongest phase, top TPU operators:\n");
        for (const auto &op : topOps(longest->tpu_ops, 5)) {
            std::printf("  %-24s %6.1f%%  (%llu calls)\n",
                        op.name.c_str(), 100 * op.share,
                        static_cast<unsigned long long>(
                            op.count));
        }
        std::printf("longest phase, top host operators:\n");
        for (const auto &op : topOps(longest->host_ops, 5)) {
            std::printf("  %-24s %6.1f%%  (%llu calls)\n",
                        op.name.c_str(), 100 * op.share,
                        static_cast<unsigned long long>(
                            op.count));
        }
    }
    return 0;
}

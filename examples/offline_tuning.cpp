/**
 * @file
 * Offline, checkpoint-based tuning: the other way to use
 * TPUPoint-Optimizer's instrumentation (Section VII-A/B). Instead
 * of tuning inside a live run, evaluate candidate configurations
 * by replaying a short training window from a checkpoint — "online
 * tuning without the need for complete program execution" — then
 * project the steady-state speedup.
 */

#include <cstdio>

#include "core/strings.hh"
#include "optimizer/trial.hh"
#include "workloads/catalog.hh"

using namespace tpupoint;

int
main()
{
    WorkloadOptions options;
    options.step_scale = 0.02;
    options.max_train_steps = 600;
    const RuntimeWorkload workload =
        makeWorkload(WorkloadId::RetinanetCoco, options);

    std::printf("workload: %s (%llu steps at this scale)\n",
                workload.name.c_str(),
                static_cast<unsigned long long>(
                    workload.schedule.train_steps));

    // Trials replay 50 steps from the checkpoint at step 200.
    TrialRunner runner(workload, SessionConfig{}, 200, 50);
    const PipelineConfig naive = PipelineConfig::naive();
    std::printf("searching from: %s\n\n",
                naive.toString().c_str());

    const TrialSearchResult search = searchFromCheckpoint(
        runner, naive, allTunableParams(), workload.dataset,
        HostSpec::standard());

    for (const auto &line : search.log)
        std::printf("  %s\n", line.c_str());

    std::printf("\ntrials run: %llu (each %llu steps; no full "
                "training run needed)\n",
                static_cast<unsigned long long>(search.trials),
                50ULL);
    std::printf("baseline:   %.3f ms/step\n",
                1e3 * search.baseline_seconds_per_step);
    std::printf("tuned:      %.3f ms/step (%s)\n",
                1e3 * search.best_seconds_per_step,
                search.best_config.toString().c_str());
    std::printf("projected steady-state speedup: %.2fx\n",
                search.projectedSpeedup());
    return 0;
}

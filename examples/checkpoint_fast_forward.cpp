/**
 * @file
 * Phase-directed fast-forwarding (Section IV-C): profile a run,
 * let TPUPoint-Analyzer associate every phase with its nearest
 * model checkpoint, then restart the application at a targeted
 * phase "without starting from step zero" and measure the time
 * saved.
 */

#include <cstdio>

#include "analyzer/analyzer.hh"
#include "core/strings.hh"
#include "profiler/profiler.hh"
#include "runtime/session.hh"
#include "workloads/catalog.hh"

using namespace tpupoint;

int
main()
{
    WorkloadOptions options;
    options.step_scale = 0.05;
    const RuntimeWorkload workload =
        makeWorkload(WorkloadId::DcganCifar10, options);

    // Profile the full run once.
    Simulator sim;
    TrainingSession session(sim, SessionConfig{}, workload);
    TpuPointProfiler profiler(sim, session);
    profiler.start(true);
    session.start(nullptr);
    sim.run();
    profiler.stop();
    const SimTime full_wall = session.result().wall_time;
    std::printf("full run: %s, %zu checkpoints saved\n",
                formatDuration(full_wall).c_str(),
                session.checkpoints().checkpoints().size());

    // Analyze and print the phase/checkpoint association.
    const AnalysisResult analysis = TpuPointAnalyzer().analyze(
        profiler.records(), session.checkpoints().checkpoints());
    std::printf("\nphase -> nearest checkpoint:\n");
    for (const auto &assoc : analysis.checkpoints) {
        std::printf("  phase %d -> step %llu (distance %llu)\n",
                    assoc.phase_id,
                    static_cast<unsigned long long>(
                        assoc.checkpoint_step),
                    static_cast<unsigned long long>(
                        assoc.distance));
    }

    // Target the last (longest-running) phase and replay only it.
    const Phase *target = nullptr;
    for (const auto &phase : analysis.phases)
        if (!target || phase.first_step > target->first_step)
            target = &phase;
    if (!target || analysis.checkpoints.empty()) {
        std::printf("nothing to fast-forward\n");
        return 0;
    }
    StepId restart_step = 0;
    for (const auto &assoc : analysis.checkpoints)
        if (assoc.phase_id == target->id)
            restart_step = assoc.checkpoint_step;

    std::printf("\nfast-forwarding to phase %d via the checkpoint "
                "at step %llu...\n",
                target->id,
                static_cast<unsigned long long>(restart_step));

    Simulator ff_sim;
    SessionConfig restart;
    restart.start_step = restart_step;
    TrainingSession resumed(ff_sim, restart, workload);
    resumed.start(nullptr);
    ff_sim.run();

    const SimTime ff_wall = resumed.result().wall_time;
    std::printf("replay-from-checkpoint: %s (%.1f%% of the full "
                "run)\n",
                formatDuration(ff_wall).c_str(),
                100.0 * static_cast<double>(ff_wall) /
                    static_cast<double>(full_wall));
    std::printf("steps re-executed: %llu of %llu\n",
                static_cast<unsigned long long>(
                    resumed.result().steps_completed),
                static_cast<unsigned long long>(
                    workload.schedule.train_steps));
    return 0;
}

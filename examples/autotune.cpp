/**
 * @file
 * TPUPoint-Optimizer in action: take a naively written input
 * pipeline (single-threaded reads and preprocessing, no prefetch,
 * unfused map/batch) for RetinaNet-COCO and let the optimizer tune
 * it online — program analysis, critical-phase detection, and
 * hill-climbing over the adjustable parameters, with the full
 * decision log printed (Section VII).
 */

#include <cstdio>

#include "core/strings.hh"
#include "optimizer/optimizer.hh"
#include "workloads/catalog.hh"

using namespace tpupoint;

int
main()
{
    WorkloadOptions options;
    options.step_scale = 0.03;
    options.max_train_steps = 700;
    const RuntimeWorkload workload =
        makeWorkload(WorkloadId::RetinanetCoco, options);

    SessionConfig config;
    config.device = TpuDeviceSpec::v2();
    config.pipeline = PipelineConfig::naive();

    std::printf("workload: %s on %s\n", workload.name.c_str(),
                config.device.name.c_str());
    std::printf("naive pipeline: %s\n\n",
                config.pipeline.toString().c_str());

    const OptimizationOutcome outcome =
        runOptimizationExperiment(workload, config);

    std::printf("program analysis found %zu adjustable "
                "parameters\n",
                outcome.tuner_report.log.empty() ? 0u
                    : allTunableParams().size());
    std::printf("\ntuning log:\n");
    for (const auto &line : outcome.tuner_report.log)
        std::printf("  %s\n", line.c_str());

    std::printf("\n%-22s %14s %14s\n", "", "naive", "optimized");
    std::printf("%-22s %14s %14s\n", "wall time",
                formatDuration(outcome.baseline.wall_time).c_str(),
                formatDuration(
                    outcome.optimized.wall_time).c_str());
    std::printf("%-22s %13.1f%% %13.1f%%\n", "TPU idle",
                100 * outcome.baseline.tpu_idle_fraction,
                100 * outcome.optimized.tpu_idle_fraction);
    std::printf("%-22s %13.1f%% %13.1f%%\n", "MXU utilization",
                100 * outcome.baseline.mxu_utilization,
                100 * outcome.optimized.mxu_utilization);
    std::printf("%-22s %14s %14s\n", "config",
                outcome.initial_config.toString().c_str(),
                outcome.tuned_config.toString().c_str());
    std::printf("\nspeedup (including optimizer post-processing): "
                "%.2fx\n",
                outcome.speedup());
    std::printf("output quality unchanged: %s\n",
                outcome.output_quality_ok ? "yes" : "NO");
    return 0;
}

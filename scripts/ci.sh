#!/usr/bin/env bash
# Tier-1 gate: configure, build and run the full test suite, first
# plain and then once per sanitizer (TPUPOINT_SANITIZE=address,
# =thread and =undefined by default; the TSan pass guards the
# ThreadPool-backed analysis and sweep paths). Usage:
#   scripts/ci.sh [extra cmake args...]
# TPUPOINT_CI_SANITIZERS overrides the sanitizer list, e.g.
#   TPUPOINT_CI_SANITIZERS=address scripts/ci.sh   # ASan only
#   TPUPOINT_CI_SANITIZERS=thread scripts/ci.sh    # TSan only
#   TPUPOINT_CI_SANITIZERS= scripts/ci.sh          # plain only
set -euo pipefail

cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)

# Per-test timeout (seconds): a wedged simulation must fail the
# gate, not hang it. Override with TPUPOINT_CTEST_TIMEOUT.
test_timeout=${TPUPOINT_CTEST_TIMEOUT:-120}

run_suite() {
    local build_dir=$1
    shift
    echo "== configuring ${build_dir} ($*)"
    cmake -B "${build_dir}" -S . "$@"
    echo "== building ${build_dir}"
    cmake --build "${build_dir}" -j "${jobs}"
    echo "== testing ${build_dir}"
    ctest --test-dir "${build_dir}" --output-on-failure \
        -j "${jobs}" --timeout "${test_timeout}"
    echo "== smoke: profile -> export (${build_dir})"
    smoke_suite "${build_dir}"
}

# End-to-end smoke over the real binaries: profile a small run with
# telemetry dumps, then export it to trace-event JSON. --check makes
# tpupoint-export re-read and validate its own output, so an invalid
# trace file fails the gate.
smoke_suite() {
    local build_dir=$1
    local work
    work=$(mktemp -d)
    "${build_dir}/tools/tpupoint-profile" \
        --workload dcgan-mnist --scale 0.02 --steps 60 \
        --out "${work}/smoke.tpp" \
        --trace-out "${work}/smoke.spans.json" \
        --metrics-out "${work}/smoke.metrics.json"
    "${build_dir}/tools/tpupoint-export" "${work}/smoke.tpp" \
        -o "${work}/smoke.trace.json" --check
    local artifact
    for artifact in smoke.trace.json smoke.spans.json \
        smoke.metrics.json; do
        test -s "${work}/${artifact}" || {
            echo "smoke: missing ${artifact}" >&2
            return 1
        }
    done
    # Salvage path: truncate a multi-chunk profile mid-stream and
    # analyze what survives. Runs in every suite, so the ASan
    # build walks the damaged-chunk recovery and resynchronization
    # code under instrumentation. (More steps than the export
    # smoke: the salvage profile must span several chunks so a
    # 2/3 cut still leaves intact ones.)
    echo "== smoke: salvage analysis of a truncated profile"
    "${build_dir}/tools/tpupoint-profile" \
        --workload dcgan-mnist --scale 0.02 --steps 600 \
        --out "${work}/salvage.tpp"
    local size
    size=$(wc -c < "${work}/salvage.tpp")
    head -c $((size * 2 / 3)) "${work}/salvage.tpp" \
        > "${work}/damaged.tpp"
    "${build_dir}/tools/tpupoint-analyze" "${work}/damaged.tpp" \
        --salvage --out "${work}/damaged"
    test -s "${work}/damaged.summary.json" || {
        echo "smoke: salvage produced no summary" >&2
        return 1
    }
    # Serve path: the daemon tail-follows a spool holding one
    # complete and one truncated stream, answers a phases query
    # while ingest is live, and exits cleanly once drained. Runs
    # in every suite, so the sanitizer builds walk the concurrent
    # session manager under instrumentation.
    echo "== smoke: serve daemon over a live spool"
    mkdir "${work}/spool"
    cp "${work}/smoke.tpp" "${work}/spool/whole.tpp"
    cp "${work}/damaged.tpp" "${work}/spool/torn.tpp"
    "${build_dir}/tools/tpupoint-serve" \
        --spool "${work}/spool" \
        --status-out "${work}/serve.status.json" \
        --poll-ms 20 --idle-ttl-ms 300 --drain &
    local serve_pid=$!
    # Query while the daemon is still ingesting: wait for the
    # first status publish, then read the phases section back.
    # (tpupoint-validate-json reads files, not stdin.)
    local tries=0
    until [ -s "${work}/serve.status.json" ]; do
        tries=$((tries + 1))
        if [ "${tries}" -gt 100 ]; then
            echo "smoke: serve never published a status" >&2
            kill "${serve_pid}" 2>/dev/null || true
            return 1
        fi
        sleep 0.05
    done
    "${build_dir}/tools/tpupoint-serve" \
        --query phases --status "${work}/serve.status.json" \
        > "${work}/serve.phases.json"
    "${build_dir}/tools/tpupoint-validate-json" \
        "${work}/serve.phases.json"
    wait "${serve_pid}" || {
        echo "smoke: serve daemon exited nonzero" >&2
        return 1
    }
    # After the drain both sessions must be final, the torn one
    # salvaged rather than failed.
    "${build_dir}/tools/tpupoint-serve" \
        --query sessions --status "${work}/serve.status.json" \
        > "${work}/serve.sessions.json"
    "${build_dir}/tools/tpupoint-validate-json" \
        "${work}/serve.sessions.json"
    grep -q '"torn"' "${work}/serve.sessions.json" || {
        echo "smoke: serve lost the truncated session" >&2
        return 1
    }
    rm -rf "${work}"
}

# Analyzer throughput bench (plain build only: sanitizers would
# only measure their own overhead). The --json report must parse
# through the toolchain's own JSON validator.
bench_smoke() {
    local build_dir=$1
    local work
    work=$(mktemp -d)
    echo "== bench: analyzer throughput (${build_dir})"
    "${build_dir}/bench/bench_analyzer_throughput" \
        --json "${work}/throughput.json"
    "${build_dir}/tools/tpupoint-validate-json" \
        "${work}/throughput.json"
    rm -rf "${work}"
}

sanitizers=${TPUPOINT_CI_SANITIZERS-"address thread undefined"}

run_suite build "$@"
bench_smoke build
for sanitizer in ${sanitizers}; do
    run_suite "build-${sanitizer}" \
        -DTPUPOINT_SANITIZE="${sanitizer}" "$@"
done

echo "== ci passed"

#!/usr/bin/env bash
# Tier-1 gate: configure, build and run the full test suite, first
# plain and then once per sanitizer (TPUPOINT_SANITIZE=address and
# =undefined by default). Usage:
#   scripts/ci.sh [extra cmake args...]
# TPUPOINT_CI_SANITIZERS overrides the sanitizer list, e.g.
#   TPUPOINT_CI_SANITIZERS=address scripts/ci.sh   # ASan only
#   TPUPOINT_CI_SANITIZERS= scripts/ci.sh          # plain only
set -euo pipefail

cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)

# Per-test timeout (seconds): a wedged simulation must fail the
# gate, not hang it. Override with TPUPOINT_CTEST_TIMEOUT.
test_timeout=${TPUPOINT_CTEST_TIMEOUT:-120}

run_suite() {
    local build_dir=$1
    shift
    echo "== configuring ${build_dir} ($*)"
    cmake -B "${build_dir}" -S . "$@"
    echo "== building ${build_dir}"
    cmake --build "${build_dir}" -j "${jobs}"
    echo "== testing ${build_dir}"
    ctest --test-dir "${build_dir}" --output-on-failure \
        -j "${jobs}" --timeout "${test_timeout}"
}

sanitizers=${TPUPOINT_CI_SANITIZERS-"address undefined"}

run_suite build "$@"
for sanitizer in ${sanitizers}; do
    run_suite "build-${sanitizer}" \
        -DTPUPOINT_SANITIZE="${sanitizer}" "$@"
done

echo "== ci passed"

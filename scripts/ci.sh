#!/usr/bin/env bash
# Tier-1 gate: configure, build and run the full test suite, first
# plain and then once per sanitizer (TPUPOINT_SANITIZE=address,
# =thread and =undefined by default; the TSan pass guards the
# ThreadPool-backed analysis and sweep paths). Usage:
#   scripts/ci.sh [extra cmake args...]
# TPUPOINT_CI_SANITIZERS overrides the sanitizer list, e.g.
#   TPUPOINT_CI_SANITIZERS=address scripts/ci.sh   # ASan only
#   TPUPOINT_CI_SANITIZERS=thread scripts/ci.sh    # TSan only
#   TPUPOINT_CI_SANITIZERS= scripts/ci.sh          # plain only
set -euo pipefail

cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)

# Per-test timeout (seconds): a wedged simulation must fail the
# gate, not hang it. Override with TPUPOINT_CTEST_TIMEOUT.
test_timeout=${TPUPOINT_CTEST_TIMEOUT:-120}

run_suite() {
    local build_dir=$1
    shift
    echo "== configuring ${build_dir} ($*)"
    cmake -B "${build_dir}" -S . "$@"
    echo "== building ${build_dir}"
    cmake --build "${build_dir}" -j "${jobs}"
    echo "== testing ${build_dir}"
    ctest --test-dir "${build_dir}" --output-on-failure \
        -j "${jobs}" --timeout "${test_timeout}"
    echo "== smoke: profile -> export (${build_dir})"
    smoke_suite "${build_dir}"
}

# End-to-end smoke over the real binaries: profile a small run with
# telemetry dumps, then export it to trace-event JSON. --check makes
# tpupoint-export re-read and validate its own output, so an invalid
# trace file fails the gate.
smoke_suite() {
    local build_dir=$1
    local work
    work=$(mktemp -d)
    "${build_dir}/tools/tpupoint-profile" \
        --workload dcgan-mnist --scale 0.02 --steps 60 \
        --out "${work}/smoke.tpp" \
        --trace-out "${work}/smoke.spans.json" \
        --metrics-out "${work}/smoke.metrics.json"
    "${build_dir}/tools/tpupoint-export" "${work}/smoke.tpp" \
        -o "${work}/smoke.trace.json" --check
    local artifact
    for artifact in smoke.trace.json smoke.spans.json \
        smoke.metrics.json; do
        test -s "${work}/${artifact}" || {
            echo "smoke: missing ${artifact}" >&2
            return 1
        }
    done
    # Salvage path: truncate a multi-chunk profile mid-stream and
    # analyze what survives. Runs in every suite, so the ASan
    # build walks the damaged-chunk recovery and resynchronization
    # code under instrumentation. (More steps than the export
    # smoke: the salvage profile must span several chunks so a
    # 2/3 cut still leaves intact ones.)
    echo "== smoke: salvage analysis of a truncated profile"
    "${build_dir}/tools/tpupoint-profile" \
        --workload dcgan-mnist --scale 0.02 --steps 600 \
        --out "${work}/salvage.tpp"
    local size
    size=$(wc -c < "${work}/salvage.tpp")
    head -c $((size * 2 / 3)) "${work}/salvage.tpp" \
        > "${work}/damaged.tpp"
    "${build_dir}/tools/tpupoint-analyze" "${work}/damaged.tpp" \
        --salvage --out "${work}/damaged"
    test -s "${work}/damaged.summary.json" || {
        echo "smoke: salvage produced no summary" >&2
        return 1
    }
    # Serve path: the daemon tail-follows a spool holding one
    # complete and one truncated stream, answers a phases query
    # while ingest is live, and exits cleanly once drained. Runs
    # in every suite, so the sanitizer builds walk the concurrent
    # session manager under instrumentation.
    echo "== smoke: serve daemon over a live spool"
    mkdir "${work}/spool"
    cp "${work}/smoke.tpp" "${work}/spool/whole.tpp"
    cp "${work}/damaged.tpp" "${work}/spool/torn.tpp"
    "${build_dir}/tools/tpupoint-serve" \
        --spool "${work}/spool" \
        --status-out "${work}/serve.status.json" \
        --poll-ms 20 --idle-ttl-ms 300 --drain &
    local serve_pid=$!
    # Query while the daemon is still ingesting: wait for the
    # first status publish, then read the phases section back.
    # (tpupoint-validate-json reads files, not stdin.)
    local tries=0
    until [ -s "${work}/serve.status.json" ]; do
        tries=$((tries + 1))
        if [ "${tries}" -gt 100 ]; then
            echo "smoke: serve never published a status" >&2
            kill "${serve_pid}" 2>/dev/null || true
            return 1
        fi
        sleep 0.05
    done
    "${build_dir}/tools/tpupoint-serve" \
        --query phases --status "${work}/serve.status.json" \
        > "${work}/serve.phases.json"
    "${build_dir}/tools/tpupoint-validate-json" \
        "${work}/serve.phases.json"
    wait "${serve_pid}" || {
        echo "smoke: serve daemon exited nonzero" >&2
        return 1
    }
    # After the drain both sessions must be final, the torn one
    # salvaged rather than failed.
    "${build_dir}/tools/tpupoint-serve" \
        --query sessions --status "${work}/serve.status.json" \
        > "${work}/serve.sessions.json"
    "${build_dir}/tools/tpupoint-validate-json" \
        "${work}/serve.sessions.json"
    grep -q '"torn"' "${work}/serve.sessions.json" || {
        echo "smoke: serve lost the truncated session" >&2
        return 1
    }
    # Live-phase path: the stream grows underneath the daemon. A
    # phases query answered mid-ingest must carry a provisional
    # streaming snapshot tagged with nonzero steps_behind
    # staleness; once the end marker lands, the same query must
    # settle to the exact batch answer at steps_behind 0.
    echo "== smoke: live phases on a growing stream"
    mkdir "${work}/live.spool"
    head -c $((size / 2)) "${work}/salvage.tpp" \
        > "${work}/live.spool/grow.tpp"
    "${build_dir}/tools/tpupoint-serve" \
        --spool "${work}/live.spool" \
        --status-out "${work}/live.status.json" \
        --poll-ms 20 --idle-ttl-ms 60000 &
    local live_pid=$!
    # Wait for the mid-ingest snapshot: a phases entry for the
    # still-growing session, visibly behind the stream head.
    tries=0
    until "${build_dir}/tools/tpupoint-serve" \
            --query phases --status "${work}/live.status.json" \
            > "${work}/live.phases.mid.json" 2>/dev/null &&
        grep -q '"grow"' "${work}/live.phases.mid.json" &&
        grep -Eq '"steps_behind": *[1-9]' \
            "${work}/live.phases.mid.json"; do
        tries=$((tries + 1))
        if [ "${tries}" -gt 200 ]; then
            echo "smoke: no live phase snapshot mid-ingest" >&2
            kill "${live_pid}" 2>/dev/null || true
            return 1
        fi
        sleep 0.05
    done
    "${build_dir}/tools/tpupoint-validate-json" \
        "${work}/live.phases.mid.json"
    grep -Eq '"exact": *false' "${work}/live.phases.mid.json" || {
        echo "smoke: mid-ingest snapshot claimed exactness" >&2
        kill "${live_pid}" 2>/dev/null || true
        return 1
    }
    # The rest of the stream (end marker included) arrives; the
    # staleness must drain to zero and the answer become exact.
    tail -c +$((size / 2 + 1)) "${work}/salvage.tpp" \
        >> "${work}/live.spool/grow.tpp"
    tries=0
    until "${build_dir}/tools/tpupoint-serve" \
            --query phases --status "${work}/live.status.json" \
            > "${work}/live.phases.final.json" 2>/dev/null &&
        grep -Eq '"exact": *true' \
            "${work}/live.phases.final.json"; do
        tries=$((tries + 1))
        if [ "${tries}" -gt 200 ]; then
            echo "smoke: live phases never settled" >&2
            kill "${live_pid}" 2>/dev/null || true
            return 1
        fi
        sleep 0.05
    done
    "${build_dir}/tools/tpupoint-validate-json" \
        "${work}/live.phases.final.json"
    grep -Eq '"steps_behind": *0' \
        "${work}/live.phases.final.json" || {
        echo "smoke: finalized session still behind" >&2
        kill "${live_pid}" 2>/dev/null || true
        return 1
    }
    kill "${live_pid}"
    wait "${live_pid}" || {
        echo "smoke: live-phase serve exited nonzero" >&2
        return 1
    }
    # Chaos path: kill -9 a journaled daemon mid-ingest, restart it
    # over the same journal, and require the recovered coverage to
    # be byte-identical to an uninterrupted baseline run. Runs in
    # every suite, so the sanitizer builds walk journal replay and
    # restart recovery under instrumentation.
    echo "== smoke: crash recovery matches the uninterrupted run"
    mkdir "${work}/baseline.spool" "${work}/chaos.spool"
    cp "${work}/salvage.tpp" "${work}/baseline.spool/run.tpp"
    "${build_dir}/tools/tpupoint-serve" \
        --spool "${work}/baseline.spool" \
        --status-out "${work}/baseline.status.json" \
        --poll-ms 20 --idle-ttl-ms 300 --drain
    "${build_dir}/tools/tpupoint-serve" \
        --query coverage --status "${work}/baseline.status.json" \
        > "${work}/baseline.coverage.json"
    # Same session name, half the stream: the daemon journals its
    # committed offset on the first poll, then dies mid-session.
    head -c $((size / 2)) "${work}/salvage.tpp" \
        > "${work}/chaos.spool/run.tpp"
    "${build_dir}/tools/tpupoint-serve" \
        --spool "${work}/chaos.spool" \
        --status-out "${work}/chaos.status.json" \
        --journal "${work}/chaos.journal" \
        --poll-ms 20 --idle-ttl-ms 60000 &
    local chaos_pid=$!
    tries=0
    until [ -s "${work}/chaos.status.json" ]; do
        tries=$((tries + 1))
        if [ "${tries}" -gt 200 ]; then
            echo "smoke: chaos serve never published" >&2
            kill -9 "${chaos_pid}" 2>/dev/null || true
            return 1
        fi
        sleep 0.05
    done
    kill -9 "${chaos_pid}"
    wait "${chaos_pid}" 2>/dev/null || true
    # The rest of the stream arrives while the daemon is dead; the
    # restart replays to the journaled offset and resumes from it.
    tail -c +$((size / 2 + 1)) "${work}/salvage.tpp" \
        >> "${work}/chaos.spool/run.tpp"
    "${build_dir}/tools/tpupoint-serve" \
        --spool "${work}/chaos.spool" \
        --status-out "${work}/chaos.status.json" \
        --journal "${work}/chaos.journal" \
        --poll-ms 20 --idle-ttl-ms 300 --drain
    "${build_dir}/tools/tpupoint-serve" \
        --query coverage --status "${work}/chaos.status.json" \
        > "${work}/chaos.coverage.json"
    cmp "${work}/baseline.coverage.json" \
        "${work}/chaos.coverage.json" || {
        echo "smoke: recovered coverage diverged from baseline" >&2
        return 1
    }
    # Overload path: one admission slot for two sessions — the
    # second is shed at the door, re-admitted once the first
    # finishes, and the drain still ends with both finalized.
    echo "== smoke: overload shedding re-admits and finishes"
    mkdir "${work}/shed.spool"
    cp "${work}/smoke.tpp" "${work}/shed.spool/one.tpp"
    cp "${work}/smoke.tpp" "${work}/shed.spool/two.tpp"
    "${build_dir}/tools/tpupoint-serve" \
        --spool "${work}/shed.spool" \
        --status-out "${work}/shed.status.json" \
        --max-sessions 1 --poll-ms 20 --idle-ttl-ms 300 --drain \
        > "${work}/shed.out"
    grep -q "2 sessions (2 finalized" "${work}/shed.out" || {
        echo "smoke: shed run lost a session" >&2
        cat "${work}/shed.out" >&2
        return 1
    }
    # Observability path: scrape the health verdict and the
    # OpenMetrics exposition from a live daemon, then demand a
    # parseable flight dump from SIGUSR2 and a clean SIGTERM
    # shutdown. Runs in every suite, so the sanitizer builds walk
    # the lock-free flight ring and the signal-dump path under
    # instrumentation.
    echo "== smoke: observability (health, metrics, flight dump)"
    mkdir "${work}/obs.spool"
    cp "${work}/smoke.tpp" "${work}/obs.spool/run.tpp"
    TPUPOINT_LOG_FORMAT=jsonl \
    "${build_dir}/tools/tpupoint-serve" \
        --spool "${work}/obs.spool" \
        --status-out "${work}/obs.status.json" \
        --flight-out "${work}/obs.flight.json" \
        --slo-p99-ingest-us 60000000 --slo-max-lag-ms 600000 \
        --poll-ms 20 --idle-ttl-ms 60000 &
    local obs_pid=$!
    tries=0
    until [ -s "${work}/obs.status.json" ]; do
        tries=$((tries + 1))
        if [ "${tries}" -gt 200 ]; then
            echo "smoke: observability serve never published" >&2
            kill "${obs_pid}" 2>/dev/null || true
            return 1
        fi
        sleep 0.05
    done
    "${build_dir}/tools/tpupoint-serve" \
        --query health --status "${work}/obs.status.json" \
        > "${work}/obs.health.json"
    "${build_dir}/tools/tpupoint-validate-json" \
        "${work}/obs.health.json"
    grep -q '"state"' "${work}/obs.health.json" || {
        echo "smoke: health query carried no verdict" >&2
        kill "${obs_pid}" 2>/dev/null || true
        return 1
    }
    "${build_dir}/tools/tpupoint-serve" \
        --query metrics --status "${work}/obs.status.json" \
        > "${work}/obs.metrics.txt"
    grep -q '^# EOF' "${work}/obs.metrics.txt" &&
        grep -q 'serve_sessions_discovered_total' \
            "${work}/obs.metrics.txt" || {
        echo "smoke: metrics scrape missing or torn" >&2
        kill "${obs_pid}" 2>/dev/null || true
        return 1
    }
    # On-demand black box: SIGUSR2 writes the ring through the
    # async-signal-safe path; the document must still parse.
    kill -USR2 "${obs_pid}"
    tries=0
    until [ -s "${work}/obs.flight.json" ]; do
        tries=$((tries + 1))
        if [ "${tries}" -gt 100 ]; then
            echo "smoke: SIGUSR2 produced no flight dump" >&2
            kill "${obs_pid}" 2>/dev/null || true
            return 1
        fi
        sleep 0.05
    done
    "${build_dir}/tools/tpupoint-validate-json" \
        "${work}/obs.flight.json"
    grep -q '"reason":"signal"' "${work}/obs.flight.json" || {
        echo "smoke: flight dump lost its reason" >&2
        kill "${obs_pid}" 2>/dev/null || true
        return 1
    }
    # Signaled shutdown rewrites the dump, attributed, and exits 0.
    kill "${obs_pid}"
    wait "${obs_pid}" || {
        echo "smoke: observability serve exited nonzero" >&2
        return 1
    }
    "${build_dir}/tools/tpupoint-validate-json" \
        "${work}/obs.flight.json"
    grep -q 'shutdown' "${work}/obs.flight.json" || {
        echo "smoke: shutdown left no flight dump" >&2
        return 1
    }
    rm -rf "${work}"
}

# Analyzer throughput bench (plain build only: sanitizers would
# only measure their own overhead). The --json report must parse
# through the toolchain's own JSON validator.
bench_smoke() {
    local build_dir=$1
    local work
    work=$(mktemp -d)
    echo "== bench: analyzer throughput (${build_dir})"
    "${build_dir}/bench/bench_analyzer_throughput" \
        --json "${work}/throughput.json"
    "${build_dir}/tools/tpupoint-validate-json" \
        "${work}/throughput.json"
    echo "== bench: streaming detection vs batch finalize"
    "${build_dir}/bench/bench_streaming_detect" \
        --json "${work}/streaming.json"
    "${build_dir}/tools/tpupoint-validate-json" \
        "${work}/streaming.json"
    for figure in per_step_cost_ratio_10x all_ols_exact; do
        grep -q "\"${figure}\"" "${work}/streaming.json" || {
            echo "bench: bench_streaming_detect lost the" \
                "${figure} figure" >&2
            return 1
        }
    done
    echo "== bench: serve ingest, restart recovery, shedding"
    "${build_dir}/bench/bench_serve" --json "${work}/serve.json"
    "${build_dir}/tools/tpupoint-validate-json" \
        "${work}/serve.json"
    for figure in recovery_ms shed_rate log_event_flight_on_ns; do
        grep -q "\"${figure}\"" "${work}/serve.json" || {
            echo "bench: bench_serve lost the ${figure} figure" >&2
            return 1
        }
    done
    rm -rf "${work}"
}

sanitizers=${TPUPOINT_CI_SANITIZERS-"address thread undefined"}

run_suite build "$@"
bench_smoke build
for sanitizer in ${sanitizers}; do
    run_suite "build-${sanitizer}" \
        -DTPUPOINT_SANITIZE="${sanitizer}" "$@"
done

echo "== ci passed"

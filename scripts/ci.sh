#!/usr/bin/env bash
# Tier-1 gate: configure, build and run the full test suite, first
# plain and then instrumented with AddressSanitizer
# (TPUPOINT_SANITIZE=address). Usage:
#   scripts/ci.sh [extra cmake args...]
set -euo pipefail

cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)

# Per-test timeout (seconds): a wedged simulation must fail the
# gate, not hang it. Override with TPUPOINT_CTEST_TIMEOUT.
test_timeout=${TPUPOINT_CTEST_TIMEOUT:-120}

run_suite() {
    local build_dir=$1
    shift
    echo "== configuring ${build_dir} ($*)"
    cmake -B "${build_dir}" -S . "$@"
    echo "== building ${build_dir}"
    cmake --build "${build_dir}" -j "${jobs}"
    echo "== testing ${build_dir}"
    ctest --test-dir "${build_dir}" --output-on-failure \
        -j "${jobs}" --timeout "${test_timeout}"
}

run_suite build "$@"
run_suite build-asan -DTPUPOINT_SANITIZE=address "$@"

echo "== ci passed"
